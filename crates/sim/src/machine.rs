//! The simulator: executes abstract device programs on a modeled chip.

use serde::{Deserialize, Serialize};
use t10_device::iface::{DeviceError, DeviceInterface};
use t10_device::program::{
    BufferDecl, BufferId, ExchangeSummary, Program, ShiftKind, ShiftOp, VertexTask,
};
use t10_device::{truth, ChipSpec};
use t10_ir::Tensor;
use t10_trace::{Trace, Value, CHIP_TID, PID_RECOVERY, PID_SIM};

use crate::buffer::FuncBuffer;
use crate::fault::{FaultPlan, LinkFault};
use crate::memory::MemoryTracker;
use crate::report::RunReport;
use crate::timeline::{FaultEvent, FaultEventKind, FaultTimeline};
use crate::{sim_err, Result};

/// Level of detail at which programs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulatorMode {
    /// Materialize f32 buffers and execute every vertex and shift; used by
    /// correctness tests on small shapes.
    Functional,
    /// Price supersteps on the timing model only; used by benchmarks.
    Timing,
}

/// A consistent snapshot of the machine at a BSP barrier: the distributed
/// sub-tensor state (functional mode), the memory tracker, the report so
/// far, and the superstep to resume from. Taken by
/// [`Simulator::checkpoint`], re-installed by [`Simulator::restore`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Program-local superstep index the snapshot was taken at (execution
    /// resumes from this step).
    step: usize,
    report: RunReport,
    bufs: Vec<Option<FuncBuffer>>,
    mem: MemoryTracker,
    bytes: u64,
}

impl Checkpoint {
    /// The program-local superstep the checkpoint resumes from.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Live scratchpad bytes snapshotted (summed over cores).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// One entry in the simulator's append-only run-state log: the externally
/// observable checkpoint/restore/fault history a chaos oracle audits.
///
/// Unlike [`RunReport`] accumulators, the log is **never rolled back** by
/// [`Simulator::restore`] — it records what actually happened, including the
/// work a rollback discarded, so invariants like "no checkpoint regression"
/// and "every restore targets a checkpoint that was really taken" are
/// checkable after the fact. All steps are global (offset + cursor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RunStateEvent {
    /// A consistent snapshot was taken at this global step.
    Checkpoint {
        /// Global superstep of the barrier the snapshot was taken at.
        step: usize,
        /// Live scratchpad bytes drained.
        bytes: u64,
    },
    /// Execution rolled back from `from` to a checkpoint at `to`.
    Restore {
        /// Global step execution had reached when the rollback started.
        from: usize,
        /// Global step of the re-installed checkpoint.
        to: usize,
    },
    /// A non-fatal timeline event was folded into the fault plan in-run.
    Absorbed {
        /// Global step of the absorbing barrier.
        step: usize,
    },
    /// A fatal timeline event aborted execution at this step.
    Fatal {
        /// Global step of the aborting barrier.
        step: usize,
        /// Whether the fault clears on retry.
        transient: bool,
    },
}

/// The simulator's append-only observable history.
pub type RunStateLog = Vec<RunStateEvent>;

/// Default number of cores that get dedicated span tracks in a structured
/// trace (see [`Simulator::with_trace_cores`]).
pub const DEFAULT_TRACE_CORES: usize = 16;

/// One core's exchange totals: `(core, bytes in, bytes out)`.
type CoreShiftBytes = (usize, u64, u64);

/// A simulated inter-core connected chip.
pub struct Simulator {
    spec: ChipSpec,
    mode: SimulatorMode,
    mem: MemoryTracker,
    decls: Vec<BufferDecl>,
    bufs: Vec<Option<FuncBuffer>>,
    tracing: bool,
    /// Structured event sink ([`t10_trace`]); disabled by default, so the
    /// hot loop pays one branch per potential event.
    trace: Trace,
    /// Number of low-indexed cores that get their own span track in the
    /// structured trace; the chip-aggregate track always exists.
    trace_cores: usize,
    /// Whether this simulator already named its trace tracks (done once,
    /// lazily, so the `resume`-only path of the recovery controller still
    /// gets viewer metadata).
    trace_meta_emitted: bool,
    faults: Option<FaultPlan>,
    timeline: Option<FaultTimeline>,
    /// Checkpoint interval in supersteps (0 = checkpointing off).
    ckpt_every: usize,
    /// Per-core bytes reserved as checkpoint staging.
    ckpt_staging: usize,
    last_ck: Option<Checkpoint>,
    /// The fault event that aborted the current run, for the recovery
    /// controller to inspect.
    pending_fault: Option<FaultEvent>,
    /// Program-local superstep index of the next step to execute.
    cursor: usize,
    /// The report accumulated so far (survives abort/restore/resume).
    acc: RunReport,
    /// Append-only observable history (checkpoints, restores, faults);
    /// never rolled back, so a post-hoc oracle can audit what really
    /// happened.
    state_log: RunStateLog,
    /// Global superstep numbering starts here: after a re-plan, the new
    /// program continues the old run's timeline rather than restarting it.
    step_offset: usize,
}

impl Simulator {
    /// Creates a simulator for `spec` in the given mode.
    ///
    /// The per-core shift buffer (paper §5) is reserved up front, so usable
    /// capacity is `sram_per_core - shift_buffer`.
    pub fn new(spec: ChipSpec, mode: SimulatorMode) -> Self {
        let usable = spec.sram_per_core.saturating_sub(spec.shift_buffer);
        let cores = spec.num_cores;
        Self {
            spec,
            mode,
            mem: MemoryTracker::new(cores, usable),
            decls: Vec::new(),
            bufs: Vec::new(),
            tracing: false,
            trace: Trace::disabled(),
            trace_cores: DEFAULT_TRACE_CORES,
            trace_meta_emitted: false,
            faults: None,
            timeline: None,
            ckpt_every: 0,
            ckpt_staging: 0,
            last_ck: None,
            pending_fault: None,
            cursor: 0,
            acc: RunReport::default(),
            state_log: Vec::new(),
            step_offset: 0,
        }
    }

    /// Enables per-superstep tracing: [`RunReport::trace`] records every
    /// step's compute/exchange time and bytes moved (time-series export).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attaches a structured event sink: every superstep emits per-core
    /// compute/shift/idle spans, chip-level phase spans, link-byte and SRAM
    /// high-water counters, and checkpoint/fault instants, all stamped in
    /// **sim time** (simulated seconds × 10⁶), so the trace is
    /// deterministic under a fixed seed. A [`Trace::disabled`] handle (the
    /// default) records nothing and costs one branch per event site.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Caps how many low-indexed cores get their own span track in the
    /// structured trace (the chip-aggregate track is unaffected). Keeps
    /// traces of 1000+-core chips loadable in a viewer.
    pub fn with_trace_cores(mut self, cores: usize) -> Self {
        self.trace_cores = cores;
        self
    }

    /// The attached structured event sink (disabled unless
    /// [`Simulator::with_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Simulated seconds elapsed so far in the current run.
    pub fn elapsed_sim_time(&self) -> f64 {
        self.acc.total_time
    }

    /// Injects a fault plan: degraded/lost links stretch exchange phases,
    /// slowed cores stretch compute phases, and shrunk SRAM lowers per-core
    /// allocation capacity. Must be called on a fresh simulator (before any
    /// buffers are allocated) so memory accounting stays consistent.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self> {
        if plan.num_cores() != self.spec.num_cores {
            return Err(sim_err!(
                "fault plan covers {} cores, chip has {}",
                plan.num_cores(),
                self.spec.num_cores
            ));
        }
        if !self.decls.is_empty() {
            return Err(sim_err!("fault plan injected after buffers were allocated"));
        }
        self.mem = MemoryTracker::with_capacities(
            plan.capacities(self.spec.sram_per_core, self.spec.shift_buffer)
                .into_iter()
                .map(|c| c.saturating_sub(self.ckpt_staging))
                .collect(),
        );
        self.faults = Some(plan);
        Ok(self)
    }

    /// Enables superstep checkpointing: a consistent snapshot of the
    /// distributed state is taken every `every` supersteps (at the BSP
    /// barrier, where all cores agree). `every = 0` disables checkpointing.
    ///
    /// Checkpointing is not free: each core reserves a shift-buffer-sized
    /// staging region for draining its scratchpad off-chip, carved out of
    /// usable capacity — honest memory accounting means a plan that barely
    /// fits without checkpointing may not fit with it. Must be called on a
    /// fresh simulator (before any buffers are allocated).
    pub fn with_checkpointing(mut self, every: usize) -> Result<Self> {
        if !self.decls.is_empty() {
            return Err(sim_err!(
                "checkpointing enabled after buffers were allocated"
            ));
        }
        let staging = if every > 0 { self.spec.shift_buffer } else { 0 };
        let caps: Vec<usize> = (0..self.spec.num_cores)
            .map(|c| (self.mem.capacity_of(c) + self.ckpt_staging).saturating_sub(staging))
            .collect();
        self.mem = MemoryTracker::with_capacities(caps);
        self.ckpt_every = every;
        self.ckpt_staging = staging;
        Ok(self)
    }

    /// Attaches a fault timeline: events fire at the scheduled global
    /// superstep boundaries as execution passes them.
    pub fn with_fault_timeline(mut self, timeline: FaultTimeline) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Offsets global superstep numbering, so a program compiled mid-run
    /// (after a re-plan) continues the original run's timeline instead of
    /// restarting it at step 0.
    pub fn with_step_offset(mut self, offset: usize) -> Self {
        self.step_offset = offset;
        self
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The attached fault timeline, if any.
    pub fn fault_timeline(&self) -> Option<&FaultTimeline> {
        self.timeline.as_ref()
    }

    /// Detaches the fault timeline (to carry it into a recompiled run).
    pub fn take_fault_timeline(&mut self) -> Option<FaultTimeline> {
        self.timeline.take()
    }

    /// The fault event that aborted the last run, consumed by the recovery
    /// controller when it decides how to recover.
    pub fn take_pending_fault(&mut self) -> Option<FaultEvent> {
        self.pending_fault.take()
    }

    /// Program-local index of the next superstep to execute.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Global superstep index of the next step (offset + cursor).
    pub fn global_step(&self) -> usize {
        self.step_offset + self.cursor
    }

    /// The most recent checkpoint, if one was taken.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_ck.as_ref()
    }

    /// Takes a consistent snapshot at the current BSP barrier and charges
    /// its cost: the live scratchpad state drains off-chip through each
    /// core's staging buffer, priced at the off-chip bandwidth.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let bytes: u64 = (0..self.spec.num_cores)
            .map(|c| self.mem.used(c) as u64)
            .sum();
        let secs = if self.spec.offchip_bw > 0.0 {
            bytes as f64 / self.spec.offchip_bw
        } else {
            0.0
        };
        if self.trace.enabled() {
            self.trace.instant(
                "checkpoint",
                "recovery",
                PID_RECOVERY,
                0,
                self.acc.total_time * 1e6,
                vec![
                    ("step", Value::U64(self.global_step() as u64)),
                    ("bytes", Value::U64(bytes)),
                    ("drain_us", Value::F64(secs * 1e6)),
                ],
            );
        }
        // Charge before snapshotting, so the stored report already includes
        // this checkpoint's cost: replaying from the snapshot then re-charges
        // later steps identically, keeping restored runs bit-identical to
        // uninterrupted ones.
        self.acc.checkpoints_taken += 1;
        self.acc.checkpoint_bytes += bytes;
        self.acc.checkpoint_time += secs;
        self.acc.total_time += secs;
        self.state_log.push(RunStateEvent::Checkpoint {
            step: self.global_step(),
            bytes,
        });
        let ck = Checkpoint {
            step: self.cursor,
            report: self.acc.clone(),
            bufs: self.bufs.clone(),
            mem: self.mem.clone(),
            bytes,
        };
        self.last_ck = Some(ck.clone());
        ck
    }

    /// Re-installs a checkpoint: distributed buffers, memory accounting,
    /// report, and cursor all roll back to the snapshot, and execution will
    /// resume from its superstep.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<()> {
        if ck.bufs.len() != self.decls.len() {
            return Err(sim_err!(
                "checkpoint covers {} buffers, program declares {}",
                ck.bufs.len(),
                self.decls.len()
            ));
        }
        self.state_log.push(RunStateEvent::Restore {
            from: self.global_step(),
            to: self.step_offset + ck.step,
        });
        self.bufs = ck.bufs.clone();
        self.mem = ck.mem.clone();
        self.acc = ck.report.clone();
        self.cursor = ck.step;
        self.last_ck = Some(ck.clone());
        self.pending_fault = None;
        Ok(())
    }

    /// The append-only observable history: every checkpoint, restore,
    /// absorbed event, and fatal fault, in occurrence order. Survives
    /// rollbacks (a restore is itself an entry, not an eraser).
    pub fn run_state_log(&self) -> &RunStateLog {
        &self.state_log
    }

    /// Drains the run-state log (the recovery controller folds each
    /// discarded simulator's history into its audit before re-planning).
    pub fn take_run_state_log(&mut self) -> RunStateLog {
        std::mem::take(&mut self.state_log)
    }

    /// The chip being simulated.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// Read access to a functional buffer.
    pub fn buffer(&self, id: BufferId) -> Option<&FuncBuffer> {
        self.bufs.get(id).and_then(Option::as_ref)
    }

    /// Overwrites a functional buffer's contents (binding model inputs).
    pub fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> Result<()> {
        let b = self
            .bufs
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or_else(|| sim_err!("buffer {id} not materialized"))?;
        if b.elements() != data.len() {
            return Err(sim_err!(
                "buffer {id} holds {} elements, got {}",
                b.elements(),
                data.len()
            ));
        }
        b.data_mut().copy_from_slice(data);
        Ok(())
    }

    /// Binds a global tensor's values into a buffer according to the
    /// buffer's coordinate coverage (loading inputs and weights).
    pub fn bind(&mut self, id: BufferId, tensor: &Tensor) -> Result<()> {
        let b = self
            .bufs
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or_else(|| sim_err!("buffer {id} not materialized"))?;
        let coords: Vec<Vec<usize>> = b.coords().to_vec();
        if coords.len() != tensor.shape().len() {
            return Err(sim_err!(
                "buffer {id} has rank {}, tensor rank {}",
                coords.len(),
                tensor.shape().len()
            ));
        }
        let mut res: Result<()> = Ok(());
        let mut vals = Vec::with_capacity(b.elements());
        let lens: Vec<usize> = coords.iter().map(Vec::len).collect();
        let mut pos = vec![0usize; lens.len()];
        if b.elements() > 0 {
            loop {
                let global: Vec<usize> =
                    pos.iter().enumerate().map(|(d, &p)| coords[d][p]).collect();
                if global.iter().zip(tensor.shape()).any(|(&g, &s)| g >= s) {
                    res = Err(sim_err!(
                        "buffer {id} coordinate {global:?} outside tensor shape {:?}",
                        tensor.shape()
                    ));
                    break;
                }
                vals.push(tensor.at(&global));
                let mut done = true;
                for d in (0..pos.len()).rev() {
                    pos[d] += 1;
                    if pos[d] < lens[d] {
                        done = false;
                        break;
                    }
                    pos[d] = 0;
                }
                if done {
                    break;
                }
            }
        }
        res?;
        b.data_mut().copy_from_slice(&vals);
        Ok(())
    }

    /// Reassembles a global tensor from a set of distributed buffers.
    ///
    /// Every listed buffer writes its elements at its coordinates; buffers
    /// may overlap (replicas), in which case they must agree.
    pub fn extract(&self, ids: &[BufferId], shape: &[usize]) -> Result<Tensor> {
        let mut t = Tensor::zeros(shape.to_vec());
        let mut written = vec![false; t.elements()];
        for &id in ids {
            let b = self
                .buffer(id)
                .ok_or_else(|| sim_err!("buffer {id} not materialized"))?;
            let mut res: Result<()> = Ok(());
            b.for_each_coord(|global, v| {
                if res.is_ok() {
                    if global.iter().zip(shape).any(|(&g, &s)| g >= s) {
                        res = Err(sim_err!(
                            "buffer {id} coordinate {global:?} outside shape {shape:?}"
                        ));
                        return;
                    }
                    let off = t.offset(global);
                    t.data_mut()[off] = v;
                    written[off] = true;
                }
            });
            res?;
        }
        if let Some(miss) = written.iter().position(|&w| !w) {
            return Err(sim_err!(
                "extraction left element {miss} of {:?} uncovered",
                shape
            ));
        }
        Ok(t)
    }

    /// Allocates a program's buffers without executing it, so callers can
    /// bind input data before [`Simulator::run_loaded`].
    ///
    /// The simulator must be fresh: program-internal buffer ids are indices
    /// into its own declaration list, so loading on top of existing
    /// allocations would misalign every task's references.
    pub fn load(&mut self, prog: &Program) -> Result<Vec<BufferId>> {
        if !self.decls.is_empty() {
            return Err(sim_err!(
                "program loaded into a non-empty simulator: buffer ids would misalign"
            ));
        }
        let mut ids = Vec::with_capacity(prog.buffers.len());
        for decl in &prog.buffers {
            ids.push(self.allocate(decl.clone())?);
        }
        Ok(ids)
    }

    /// Executes a whole program (allocating its buffers first) and returns
    /// its report.
    pub fn run(&mut self, prog: &Program) -> Result<RunReport> {
        self.load(prog)?;
        self.run_loaded(prog)
    }

    /// Executes the steps of an already-loaded program from the beginning.
    ///
    /// With a fault timeline attached, a fatal event aborts with
    /// [`DeviceError::RuntimeFault`]; the aborted progress survives in the
    /// simulator, so a caller can [`Simulator::restore`] a checkpoint and
    /// [`Simulator::resume`].
    pub fn run_loaded(&mut self, prog: &Program) -> Result<RunReport> {
        self.cursor = 0;
        self.acc = RunReport::default();
        self.last_ck = None;
        self.pending_fault = None;
        self.advance(prog)
    }

    /// Continues executing from the current cursor (after a
    /// [`Simulator::restore`], or after absorbing a fault), returning the
    /// cumulative report when the program completes.
    pub fn resume(&mut self, prog: &Program) -> Result<RunReport> {
        self.advance(prog)
    }

    fn advance(&mut self, prog: &Program) -> Result<RunReport> {
        if self.trace.enabled() && !self.trace_meta_emitted {
            self.emit_track_metadata();
            self.trace_meta_emitted = true;
        }
        while self.cursor < prog.steps.len() {
            let g = self.cursor;
            // 1. Fire timeline events due at this barrier. Non-fatal events
            // are absorbed into the active fault plan; fatal events abort
            // with a typed error for the recovery controller.
            let global = self.step_offset + g;
            while let Some(ev) = self.timeline.as_mut().and_then(|t| t.pop_due(global)) {
                if ev.kind.is_fatal() {
                    if self.trace.enabled() {
                        self.trace.instant(
                            "fault_fatal",
                            "recovery",
                            PID_RECOVERY,
                            0,
                            self.acc.total_time * 1e6,
                            vec![
                                ("step", Value::U64(global as u64)),
                                ("reason", Value::Str(ev.describe())),
                            ],
                        );
                    }
                    self.pending_fault = Some(ev);
                    self.state_log.push(RunStateEvent::Fatal {
                        step: global,
                        transient: ev.kind.is_transient(),
                    });
                    return Err(DeviceError::runtime_fault(
                        global,
                        ev.kind.is_transient(),
                        ev.describe(),
                    ));
                }
                self.absorb_event(ev);
            }
            // 2. Auto-checkpoint at the interval. Skipped when the last
            // checkpoint is already at this step (i.e. we just restored to
            // here), so a replayed run charges the same checkpoint sequence
            // as an uninterrupted one.
            if self.ckpt_every > 0
                && g.is_multiple_of(self.ckpt_every)
                && self.last_ck.as_ref().is_none_or(|c| c.step != g)
            {
                self.checkpoint();
            }
            // 3. Execute the superstep.
            let step = &prog.steps[g];
            let step_start = self.acc.total_time;
            let (comp, comp_healthy) = self.compute_phase(prog, step)?;
            let (exch, exch_healthy, summary) = self.exchange_phase(step)?;
            self.acc.fault_compute_overhead += comp - comp_healthy;
            self.acc.fault_exchange_overhead += exch - exch_healthy;
            self.acc.charge(step.phase, step.node, comp, exch);
            self.acc.total_shift_bytes += summary.total_bytes;
            self.acc.offchip_bytes += summary.offchip_bytes;
            if summary.total_bytes > 0 && exch > 0.0 {
                // Utilization counts only the time the links are wired-busy
                // (the phase lasts as long as the busiest core's transfer);
                // sync and message setup are excluded, so the metric reads
                // as per-core balance × link speed (Figure 14 measures
                // during inter-core data transfers).
                let busy = summary.max_core_in.max(summary.max_core_out) as f64 / self.spec.link_bw
                    + summary.max_core_messages.saturating_sub(1) as f64
                        * self.spec.exchange_msg_overhead;
                self.acc.bw_bytes_acc += summary.total_bytes as f64;
                self.acc.bw_core_seconds_acc += busy * summary.active_cores.max(1) as f64;
            }
            if self.tracing {
                self.acc.trace.push(crate::report::StepTrace {
                    step: self.acc.steps,
                    node: step.node,
                    phase: step.phase,
                    compute: comp,
                    exchange: exch,
                    bytes: summary.total_bytes,
                    max_core_in: summary.max_core_in,
                    max_core_out: summary.max_core_out,
                    sram_peak: self.mem.peak_any_core(),
                });
            }
            if self.trace.enabled() {
                self.emit_step_events(step, global, step_start, comp, exch, &summary);
            }
            self.acc.steps += 1;
            self.cursor += 1;
        }
        self.acc.peak_core_bytes = self.mem.peak_any_core();
        // Summarized at the end (not the start) so faults absorbed from the
        // timeline mid-run are reflected.
        self.acc.faults = self.faults.as_ref().map(FaultPlan::summary);
        self.acc.checkpoint_staging_bytes = self.ckpt_staging;
        Ok(self.acc.clone())
    }

    /// Folds a non-fatal persistent fault event into the active fault plan:
    /// the machine keeps running, just degraded from this barrier on.
    fn absorb_event(&mut self, ev: FaultEvent) {
        if self.trace.enabled() {
            self.trace.instant(
                "fault_absorbed",
                "recovery",
                PID_RECOVERY,
                0,
                self.acc.total_time * 1e6,
                vec![
                    ("step", Value::U64(self.global_step() as u64)),
                    ("reason", Value::Str(ev.describe())),
                ],
            );
        }
        let plan = self
            .faults
            .take()
            .unwrap_or_else(|| FaultPlan::new(self.spec.num_cores));
        self.faults = Some(match ev.kind {
            FaultEventKind::LinkDegrade { core, multiplier } => {
                plan.set_link_fault(core, Some(LinkFault::Degraded { multiplier }))
            }
            FaultEventKind::CoreSlow { core, multiplier } => plan.set_slowdown(core, multiplier),
            // Fatal kinds never reach here.
            _ => plan,
        });
        self.acc.timeline_events += 1;
        self.state_log.push(RunStateEvent::Absorbed {
            step: self.global_step(),
        });
    }

    /// Prices one compute phase, returning `(faulted, healthy)` seconds.
    /// With no fault plan the two are identical.
    fn compute_phase(
        &mut self,
        prog: &Program,
        step: &t10_device::program::Superstep,
    ) -> Result<(f64, f64)> {
        if self.mode == SimulatorMode::Functional {
            for task in &step.compute {
                self.exec_task(prog, task)?;
            }
        }
        if let Some(cs) = &step.compute_summary {
            if cs.active_cores == 0 {
                return Ok((0.0, 0.0));
            }
            let healthy = truth::vertex_time(&self.spec, &cs.desc);
            // Summary steps don't name their cores, and the BSP barrier
            // gates every superstep on its slowest participant, so the
            // worst slowdown on the chip applies (exact for SPMD plans
            // that occupy every core, conservative otherwise).
            let mult = self
                .faults
                .as_ref()
                .map_or(1.0, FaultPlan::worst_compute_multiplier);
            return Ok((healthy * mult, healthy));
        }
        let healthy = step
            .compute
            .iter()
            .map(|t| truth::vertex_time(&self.spec, &t.desc))
            .fold(0.0, f64::max);
        let faulted = match &self.faults {
            // Explicit tasks name their cores, so the slowdown is exact:
            // the phase lasts as long as the slowest task, slowdowns
            // included.
            Some(f) => step
                .compute
                .iter()
                .map(|t| truth::vertex_time(&self.spec, &t.desc) * f.compute_multiplier(t.core))
                .fold(0.0, f64::max),
            None => healthy,
        };
        Ok((faulted, healthy))
    }

    /// Prices one exchange phase, returning `(faulted, healthy)` seconds
    /// and the effective summary used for bandwidth accounting. Byte counts
    /// in the summary are real bytes moved; only the per-core maxima are
    /// inflated to reflect slower links.
    fn exchange_phase(
        &mut self,
        step: &t10_device::program::Superstep,
    ) -> Result<(f64, f64, ExchangeSummary)> {
        let summary = match &step.exchange_summary {
            Some(s) => *s,
            None => self.summarize_shifts(&step.exchange)?,
        };
        if self.mode == SimulatorMode::Functional && !step.exchange.is_empty() {
            self.apply_shifts(&step.exchange)?;
        }
        let healthy = truth::exchange_time(&self.spec, &summary);
        let eff = self.degrade_exchange(&summary);
        let faulted = truth::exchange_time(&self.spec, &eff);
        Ok((faulted, healthy, eff))
    }

    /// Inflates a summary's per-core transfer maxima by the worst link
    /// fault: the exchange phase lasts as long as the busiest core's
    /// transfer, and under faults we conservatively assume the heaviest
    /// transfer rides the slowest surviving link. Total bytes are left
    /// untouched — the data moved doesn't change, only how long it takes.
    fn degrade_exchange(&self, s: &ExchangeSummary) -> ExchangeSummary {
        let Some(f) = &self.faults else { return *s };
        let m = f.worst_link_multiplier();
        if m >= 1.0 || s.total_bytes == 0 {
            return *s;
        }
        let mut d = *s;
        d.max_core_in = (s.max_core_in as f64 / m).ceil() as u64;
        d.max_core_out = (s.max_core_out as f64 / m).ceil() as u64;
        d
    }

    /// Derives an exchange summary from explicit shifts.
    fn summarize_shifts(&self, shifts: &[ShiftOp]) -> Result<ExchangeSummary> {
        Ok(self.summarize_shifts_full(shifts)?.0)
    }

    /// Derives an exchange summary from explicit shifts, plus each active
    /// core's `(core, in_bytes, out_bytes)` totals (sorted by core index)
    /// for per-link trace counters.
    fn summarize_shifts_full(
        &self,
        shifts: &[ShiftOp],
    ) -> Result<(ExchangeSummary, Vec<CoreShiftBytes>)> {
        let mut s = ExchangeSummary::default();
        let mut out_bytes = std::collections::HashMap::new();
        let mut in_bytes = std::collections::HashMap::new();
        for op in shifts {
            let src = self
                .decls
                .get(op.src)
                .ok_or_else(|| sim_err!("shift src {} undeclared", op.src))?;
            let dst = self
                .decls
                .get(op.dst)
                .ok_or_else(|| sim_err!("shift dst {} undeclared", op.dst))?;
            if src.core == dst.core {
                continue;
            }
            let elems = src.elements().max(1);
            let elem_bytes = (src.bytes / elems).max(1);
            let moved_elems = match op.kind {
                ShiftKind::RotateSlices { dim, count } => {
                    let len = src.coords.get(dim).map(Vec::len).unwrap_or(1).max(1);
                    elems / len * count
                }
                ShiftKind::Copy | ShiftKind::Accumulate { .. } => elems,
            };
            let bytes = (moved_elems * elem_bytes) as u64;
            s.total_bytes += bytes;
            *out_bytes.entry(src.core).or_insert(0u64) += bytes;
            *in_bytes.entry(dst.core).or_insert(0u64) += bytes;
            if self.spec.chip_of(src.core) != self.spec.chip_of(dst.core) {
                s.cross_chip_bytes += bytes;
            }
        }
        s.max_core_out = out_bytes.values().copied().max().unwrap_or(0);
        s.max_core_in = in_bytes.values().copied().max().unwrap_or(0);
        let mut cores: Vec<usize> = out_bytes.keys().chain(in_bytes.keys()).copied().collect();
        cores.sort_unstable();
        cores.dedup();
        s.active_cores = cores.len();
        let links = cores
            .iter()
            .map(|&c| {
                (
                    c,
                    in_bytes.get(&c).copied().unwrap_or(0),
                    out_bytes.get(&c).copied().unwrap_or(0),
                )
            })
            .collect();
        Ok((s, links))
    }

    /// Names the trace's processes and tracks for the viewer.
    fn emit_track_metadata(&self) {
        self.trace
            .meta("process_name", PID_SIM, 0, "t10 chip (sim time)");
        self.trace
            .meta("thread_name", PID_SIM, CHIP_TID, "chip aggregate");
        for c in 0..self.trace_cores.min(self.spec.num_cores) {
            self.trace
                .meta("thread_name", PID_SIM, c as u32, format!("core {c}"));
        }
        self.trace
            .meta("process_name", PID_RECOVERY, 0, "t10 recovery (sim time)");
    }

    /// Emits one executed superstep's structured events: chip-track phase
    /// spans and counters, plus per-core compute/shift/idle spans for cores
    /// with index below the [`Simulator::with_trace_cores`] cap. Explicit
    /// vertex tasks give exact per-core times; summary-only steps
    /// approximate by showing the first `active_cores` tracks at the
    /// healthy time scaled by each core's fault multiplier (exact for SPMD
    /// plans that occupy every core).
    #[allow(clippy::too_many_arguments)]
    fn emit_step_events(
        &self,
        step: &t10_device::program::Superstep,
        global: usize,
        t0: f64,
        comp: f64,
        exch: f64,
        summary: &ExchangeSummary,
    ) {
        const US: f64 = 1e6;
        let ts0 = t0 * US;
        let ts1 = ts0 + comp * US;
        let step_u = global as u64;
        let mut chip_args = vec![("step", Value::U64(step_u))];
        if let Some(n) = step.node {
            chip_args.push(("node", Value::U64(n as u64)));
        }
        if comp > 0.0 {
            self.trace.span(
                "compute",
                "sim",
                PID_SIM,
                CHIP_TID,
                ts0,
                comp * US,
                chip_args.clone(),
            );
        }
        if exch > 0.0 {
            let mut args = chip_args.clone();
            args.push(("bytes", Value::U64(summary.total_bytes)));
            self.trace
                .span("exchange", "sim", PID_SIM, CHIP_TID, ts1, exch * US, args);
        }
        if summary.total_bytes > 0 {
            self.trace.counter(
                "link_bytes",
                "sim",
                PID_SIM,
                CHIP_TID,
                ts1,
                vec![
                    ("total", Value::U64(summary.total_bytes)),
                    ("max_core_in", Value::U64(summary.max_core_in)),
                    ("max_core_out", Value::U64(summary.max_core_out)),
                    ("cross_chip", Value::U64(summary.cross_chip_bytes)),
                ],
            );
        }
        self.trace.counter(
            "sram_high_water",
            "sim",
            PID_SIM,
            CHIP_TID,
            ts0,
            vec![("bytes", Value::U64(self.mem.peak_any_core() as u64))],
        );
        let cap = self.trace_cores.min(self.spec.num_cores);
        // Per-core compute times for the dedicated tracks.
        let mut core_times: Vec<(usize, f64)> = Vec::new();
        if !step.compute.is_empty() {
            let mut per: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            for t in &step.compute {
                let mult = self
                    .faults
                    .as_ref()
                    .map_or(1.0, |f| f.compute_multiplier(t.core));
                let time = truth::vertex_time(&self.spec, &t.desc) * mult;
                let slot = per.entry(t.core).or_insert(0.0);
                if time > *slot {
                    *slot = time;
                }
            }
            core_times = per.into_iter().filter(|(c, _)| *c < cap).collect();
        } else if let Some(cs) = &step.compute_summary {
            if cs.active_cores > 0 {
                let healthy = truth::vertex_time(&self.spec, &cs.desc);
                for c in 0..cs.active_cores.min(cap) {
                    let mult = self
                        .faults
                        .as_ref()
                        .map_or(1.0, |f| f.compute_multiplier(c));
                    core_times.push((c, (healthy * mult).min(comp)));
                }
            }
        }
        let shift_cores: Vec<usize> = if core_times.is_empty() && exch > 0.0 {
            (0..summary.active_cores.min(cap)).collect()
        } else {
            core_times.iter().map(|(c, _)| *c).collect()
        };
        for &(core, time) in &core_times {
            let tid = core as u32;
            if time > 0.0 {
                self.trace.span(
                    "compute",
                    "sim",
                    PID_SIM,
                    tid,
                    ts0,
                    time * US,
                    vec![("step", Value::U64(step_u))],
                );
            }
            // The BSP barrier holds every core until the slowest finishes.
            let idle = comp - time;
            if idle > 0.0 {
                self.trace.span(
                    "idle",
                    "sim",
                    PID_SIM,
                    tid,
                    ts0 + time * US,
                    idle * US,
                    vec![("step", Value::U64(step_u))],
                );
            }
        }
        if exch > 0.0 {
            for &core in &shift_cores {
                self.trace.span(
                    "shift",
                    "sim",
                    PID_SIM,
                    core as u32,
                    ts1,
                    exch * US,
                    vec![("step", Value::U64(step_u))],
                );
            }
        }
        // Per-core link-byte counters (explicit shifts only: summaries
        // don't name their cores).
        if !step.exchange.is_empty() {
            if let Ok((_, links)) = self.summarize_shifts_full(&step.exchange) {
                for (core, inb, outb) in links {
                    if core >= cap {
                        continue;
                    }
                    self.trace.counter(
                        "core_link_bytes",
                        "sim",
                        PID_SIM,
                        core as u32,
                        ts1,
                        vec![("in", Value::U64(inb)), ("out", Value::U64(outb))],
                    );
                }
            }
        }
        // Per-core SRAM high-water counters.
        for c in 0..cap {
            let peak = self.mem.peak_of(c);
            if peak > 0 {
                self.trace.counter(
                    "sram_peak",
                    "sim",
                    PID_SIM,
                    c as u32,
                    ts0,
                    vec![("bytes", Value::U64(peak as u64))],
                );
            }
        }
    }

    /// Applies a set of shifts atomically: all payloads are read before any
    /// destination is written, modeling the temporary-buffer pseudo-shift of
    /// paper §5.
    fn apply_shifts(&mut self, shifts: &[ShiftOp]) -> Result<()> {
        enum Payload {
            Rotate {
                dim: usize,
                count: usize,
                coords: Vec<usize>,
                data: Vec<f32>,
            },
            Whole(FuncBuffer),
        }
        let mut staged: Vec<(BufferId, ShiftKind, Payload)> = Vec::with_capacity(shifts.len());
        for op in shifts {
            let src = self
                .buffer(op.src)
                .ok_or_else(|| sim_err!("shift src {} not materialized", op.src))?;
            let payload = match op.kind {
                ShiftKind::RotateSlices { dim, count } => {
                    let (coords, data) = src.front_slab(dim, count)?;
                    Payload::Rotate {
                        dim,
                        count,
                        coords,
                        data,
                    }
                }
                ShiftKind::Copy | ShiftKind::Accumulate { .. } => Payload::Whole(src.clone()),
            };
            staged.push((op.dst, op.kind, payload));
        }
        for (dst, kind, payload) in staged {
            let buf = self
                .bufs
                .get_mut(dst)
                .and_then(Option::as_mut)
                .ok_or_else(|| sim_err!("shift dst {dst} not materialized"))?;
            match (kind, payload) {
                (
                    ShiftKind::RotateSlices { .. },
                    Payload::Rotate {
                        dim,
                        count,
                        coords,
                        data,
                    },
                ) => buf.rotate(dim, count, &coords, &data)?,
                (ShiftKind::Copy, Payload::Whole(src)) => {
                    buf.replace(src.coords().to_vec(), src.data().to_vec())?
                }
                (ShiftKind::Accumulate { reduce }, Payload::Whole(src)) => {
                    buf.accumulate_from(&src, reduce)?
                }
                _ => return Err(sim_err!("internal: payload/kind mismatch")),
            }
        }
        Ok(())
    }

    /// Functionally executes one vertex.
    fn exec_task(&mut self, prog: &Program, task: &VertexTask) -> Result<()> {
        let Some(f) = &task.func else {
            return Ok(());
        };
        let op = prog
            .ops
            .get(f.op)
            .ok_or_else(|| sim_err!("vertex references unknown op {}", f.op))?;
        if f.apply_unary {
            if let Some(u) = op.unary {
                let buf = self
                    .bufs
                    .get_mut(f.output)
                    .and_then(Option::as_mut)
                    .ok_or_else(|| sim_err!("epilogue output {} missing", f.output))?;
                for v in buf.data_mut() {
                    *v = u.apply(*v);
                }
            }
            return Ok(());
        }
        let coords = &f.axis_coords;
        if coords.len() != op.expr.axes.len() {
            return Err(sim_err!(
                "vertex has {} axis coordinate lists for {} axes",
                coords.len(),
                op.expr.axes.len()
            ));
        }
        if coords.iter().any(Vec::is_empty) {
            return Ok(());
        }
        let mut pos = vec![0usize; coords.len()];
        let mut idx: Vec<usize> = coords.iter().map(|c| c[0]).collect();
        let num_inputs = op.expr.num_inputs();
        if f.inputs.len() < num_inputs {
            return Err(sim_err!(
                "vertex provides {} input buffers for op expecting {}",
                f.inputs.len(),
                num_inputs
            ));
        }
        let mut vals = vec![0.0f32; num_inputs];
        let mut pos_buf: Vec<usize> = Vec::new();
        loop {
            let mut skip = false;
            for (slot, val) in vals.iter_mut().enumerate() {
                pos_buf.clear();
                let mut indirect_miss = false;
                for e in &op.expr.inputs[slot] {
                    if e.is_indirect() {
                        // Resolve the data-dependent coordinate from the
                        // last input slot (the index tensor).
                        let iv = self.read_input(op, f, num_inputs - 1, &idx)?;
                        let row = iv.round();
                        if row < 0.0 {
                            return Err(sim_err!("negative gather index {row}"));
                        }
                        pos_buf.push(row as usize);
                        // Presence is checked below; a miss means the row
                        // has not rotated past this core yet.
                        indirect_miss = true;
                    } else {
                        pos_buf.push(e.eval(&idx));
                    }
                }
                let b = self
                    .buffer(f.inputs[slot])
                    .ok_or_else(|| sim_err!("vertex input {} missing", f.inputs[slot]))?;
                match b.get(&pos_buf) {
                    Some(v) => *val = v,
                    None if indirect_miss => {
                        skip = true;
                        break;
                    }
                    None => {
                        return Err(sim_err!(
                            "misaligned plan: core {} step needs {:?} of input {slot} \
                             but local window covers {:?}",
                            task.core,
                            pos_buf,
                            b.coords()
                        ));
                    }
                }
            }
            if !skip {
                let v = op.combine.apply(&vals);
                let out_pos: Vec<usize> = op.expr.output.iter().map(|e| e.eval(&idx)).collect();
                let buf = self
                    .bufs
                    .get_mut(f.output)
                    .and_then(Option::as_mut)
                    .ok_or_else(|| sim_err!("vertex output {} missing", f.output))?;
                buf.merge(&out_pos, op.reduce, v)?;
            }
            if !advance_coords(&mut pos, &mut idx, coords) {
                break;
            }
        }
        Ok(())
    }

    fn read_input(
        &self,
        op: &t10_ir::Operator,
        f: &t10_device::program::FuncTask,
        slot: usize,
        idx: &[usize],
    ) -> Result<f32> {
        let pos: Vec<usize> = op.expr.inputs[slot].iter().map(|e| e.eval(idx)).collect();
        let b = self
            .buffer(f.inputs[slot])
            .ok_or_else(|| sim_err!("vertex input {} missing", f.inputs[slot]))?;
        b.get(&pos)
            .ok_or_else(|| sim_err!("index tensor coordinate {pos:?} not local"))
    }
}

fn advance_coords(pos: &mut [usize], idx: &mut [usize], coords: &[Vec<usize>]) -> bool {
    for d in (0..pos.len()).rev() {
        pos[d] += 1;
        if pos[d] < coords[d].len() {
            idx[d] = coords[d][pos[d]];
            return true;
        }
        pos[d] = 0;
        idx[d] = coords[d][0];
    }
    false
}

impl DeviceInterface for Simulator {
    fn allocate(&mut self, decl: BufferDecl) -> std::result::Result<BufferId, DeviceError> {
        if decl.core >= self.spec.num_cores {
            return Err(sim_err!(
                "core {} out of range ({} cores)",
                decl.core,
                self.spec.num_cores
            ));
        }
        self.mem.allocate(decl.core, decl.bytes)?;
        let id = self.decls.len();
        if self.mode == SimulatorMode::Functional {
            self.bufs
                .push(Some(FuncBuffer::new(decl.coords.clone(), decl.init)));
        } else {
            self.bufs.push(None);
        }
        self.decls.push(decl);
        Ok(id)
    }

    fn free(&mut self, id: BufferId) -> std::result::Result<(), DeviceError> {
        let decl = self
            .decls
            .get(id)
            .ok_or_else(|| sim_err!("free of unknown buffer {id}"))?
            .clone();
        self.mem.free(decl.core, decl.bytes)?;
        if let Some(slot) = self.bufs.get_mut(id) {
            *slot = None;
        }
        Ok(())
    }

    fn compute(&mut self, tasks: &[VertexTask]) -> std::result::Result<f64, DeviceError> {
        // Standalone compute sets need an owning program for op lookup, so
        // this entry point only supports timing. `run` drives functional
        // execution with full program context.
        Ok(tasks
            .iter()
            .map(|t| {
                let mult = self
                    .faults
                    .as_ref()
                    .map_or(1.0, |f| f.compute_multiplier(t.core));
                truth::vertex_time(&self.spec, &t.desc) * mult
            })
            .fold(0.0, f64::max))
    }

    fn shift(
        &mut self,
        shifts: &[ShiftOp],
        summary: Option<&ExchangeSummary>,
    ) -> std::result::Result<f64, DeviceError> {
        let s = match summary {
            Some(s) => *s,
            None => self.summarize_shifts(shifts)?,
        };
        if self.mode == SimulatorMode::Functional && !shifts.is_empty() {
            self.apply_shifts(shifts)?;
        }
        Ok(truth::exchange_time(&self.spec, &self.degrade_exchange(&s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_device::program::{ComputeSummary, FuncTask, Phase, SubTaskDesc, Superstep};
    use t10_ir::{builders, OpKind};

    fn small_spec(cores: usize) -> ChipSpec {
        ChipSpec::ipu_with_cores(cores)
    }

    fn decl(core: usize, coords: Vec<Vec<usize>>) -> BufferDecl {
        let elems: usize = coords.iter().map(Vec::len).product();
        BufferDecl {
            core,
            label: "t".into(),
            bytes: elems * 4,
            coords,
            init: 0.0,
        }
    }

    #[test]
    fn allocate_enforces_capacity() {
        let mut sim = Simulator::new(small_spec(2), SimulatorMode::Timing);
        let cap = sim.spec().sram_per_core - sim.spec().shift_buffer;
        let big = BufferDecl {
            core: 0,
            label: "big".into(),
            bytes: cap + 1,
            coords: vec![],
            init: 0.0,
        };
        assert!(sim.allocate(big).is_err());
        let ok = BufferDecl {
            core: 0,
            label: "ok".into(),
            bytes: cap,
            coords: vec![],
            init: 0.0,
        };
        let id = sim.allocate(ok).unwrap();
        sim.free(id).unwrap();
    }

    #[test]
    fn timing_run_prices_summaries() {
        let mut sim = Simulator::new(small_spec(4), SimulatorMode::Timing);
        let mut prog = Program::new();
        let mut step = Superstep::new(Some(0), Phase::Execute);
        step.compute_summary = Some(ComputeSummary {
            desc: SubTaskDesc {
                kind: OpKind::MatMul,
                out_elems: 1024,
                red_elems: 128,
                window: 1,
                in_bytes: 4096,
                out_bytes: 2048,
            },
            active_cores: 4,
        });
        step.exchange_summary = Some(ExchangeSummary {
            total_bytes: 4 * 1024,
            max_core_out: 1024,
            max_core_in: 1024,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 4,
            max_core_messages: 1,
        });
        prog.steps.push(step);
        let r = sim.run(&prog).unwrap();
        assert!(r.compute_time > 0.0);
        assert!(r.exchange_time > 0.0);
        assert_eq!(r.total_shift_bytes, 4096);
        assert_eq!(r.steps, 1);
        assert!(r.avg_link_bandwidth() > 0.0);
    }

    #[test]
    fn functional_single_core_matmul_matches_reference() {
        // One core computes a whole 2x3x2 matmul from local buffers.
        let mut sim = Simulator::new(small_spec(1), SimulatorMode::Functional);
        let op = builders::matmul(0, 1, 2, 2, 3, 2).unwrap();
        let mut prog = Program::new();
        let oi = prog.add_op(op.clone());
        let a = prog.add_buffer(decl(0, vec![vec![0, 1], vec![0, 1, 2]]));
        let b = prog.add_buffer(decl(0, vec![vec![0, 1, 2], vec![0, 1]]));
        let c = prog.add_buffer(decl(0, vec![vec![0, 1], vec![0, 1]]));
        let mut step = Superstep::new(Some(0), Phase::Execute);
        step.compute.push(VertexTask {
            core: 0,
            desc: SubTaskDesc {
                kind: OpKind::MatMul,
                out_elems: 4,
                red_elems: 3,
                window: 1,
                in_bytes: 0,
                out_bytes: 0,
            },
            func: Some(FuncTask {
                op: oi,
                axis_coords: vec![vec![0, 1], vec![0, 1, 2], vec![0, 1]],
                inputs: vec![a, b],
                output: c,
                apply_unary: false,
            }),
        });
        prog.steps.push(step);

        let at = Tensor::pattern(vec![2, 3], 0.1);
        let bt = Tensor::pattern(vec![3, 2], 0.9);
        // Allocate by running a zero-step program first? Simpler: run
        // allocates, so bind inputs after allocation via a manual path.
        for d in &prog.buffers {
            sim.allocate(d.clone()).unwrap();
        }
        sim.write_buffer(a, at.data()).unwrap();
        sim.write_buffer(b, bt.data()).unwrap();
        for step in &prog.steps {
            for t in step.compute.clone() {
                sim.exec_task(&prog, &t).unwrap();
            }
        }
        let got = sim.extract(&[c], &[2, 2]).unwrap();
        let want = t10_ir::reference::execute(&op, &[&at, &bt]).unwrap();
        assert!(got.approx_eq(&want, 1e-5));
    }

    #[test]
    fn misaligned_plan_is_detected() {
        let mut sim = Simulator::new(small_spec(1), SimulatorMode::Functional);
        let op = builders::matmul(0, 1, 2, 2, 2, 2).unwrap();
        let mut prog = Program::new();
        let oi = prog.add_op(op);
        // Buffer A only covers k in {0}, but the vertex iterates k in 0..2.
        let a = prog.add_buffer(decl(0, vec![vec![0, 1], vec![0]]));
        let b = prog.add_buffer(decl(0, vec![vec![0, 1], vec![0, 1]]));
        let c = prog.add_buffer(decl(0, vec![vec![0, 1], vec![0, 1]]));
        for d in &prog.buffers {
            sim.allocate(d.clone()).unwrap();
        }
        let task = VertexTask {
            core: 0,
            desc: SubTaskDesc {
                kind: OpKind::MatMul,
                out_elems: 4,
                red_elems: 2,
                window: 1,
                in_bytes: 0,
                out_bytes: 0,
            },
            func: Some(FuncTask {
                op: oi,
                axis_coords: vec![vec![0, 1], vec![0, 1], vec![0, 1]],
                inputs: vec![a, b],
                output: c,
                apply_unary: false,
            }),
        };
        let err = sim.exec_task(&prog, &task).unwrap_err();
        assert!(err.message().contains("misaligned"), "{err}");
    }

    #[test]
    fn shift_summary_skips_local_moves() {
        let mut sim = Simulator::new(small_spec(2), SimulatorMode::Timing);
        let b0 = sim.allocate(decl(0, vec![vec![0, 1]])).unwrap();
        let b1 = sim.allocate(decl(0, vec![vec![2, 3]])).unwrap();
        let b2 = sim.allocate(decl(1, vec![vec![4, 5]])).unwrap();
        let local = ShiftOp {
            src: b0,
            dst: b1,
            kind: ShiftKind::Copy,
        };
        let remote = ShiftOp {
            src: b0,
            dst: b2,
            kind: ShiftKind::Copy,
        };
        let s = sim.summarize_shifts(&[local, remote]).unwrap();
        assert_eq!(s.total_bytes, 8);
        assert_eq!(s.max_core_out, 8);
        assert_eq!(s.active_cores, 2);
    }

    #[test]
    fn cross_chip_bytes_detected_on_vipu() {
        let mut sim = Simulator::new(ChipSpec::vipu(2), SimulatorMode::Timing);
        let b0 = sim.allocate(decl(0, vec![vec![0]])).unwrap();
        let b1 = sim.allocate(decl(1500, vec![vec![1]])).unwrap();
        let s = sim
            .summarize_shifts(&[ShiftOp {
                src: b0,
                dst: b1,
                kind: ShiftKind::Copy,
            }])
            .unwrap();
        assert_eq!(s.cross_chip_bytes, 4);
    }

    #[test]
    fn fault_plan_stretches_timing_and_reports_overhead() {
        let mut prog = Program::new();
        let mut step = Superstep::new(Some(0), Phase::Execute);
        step.compute_summary = Some(ComputeSummary {
            desc: SubTaskDesc {
                kind: OpKind::MatMul,
                out_elems: 1024,
                red_elems: 128,
                window: 1,
                in_bytes: 4096,
                out_bytes: 2048,
            },
            active_cores: 4,
        });
        step.exchange_summary = Some(ExchangeSummary {
            total_bytes: 4 * 1024,
            max_core_out: 1024,
            max_core_in: 1024,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 4,
            max_core_messages: 1,
        });
        prog.steps.push(step);

        let mut healthy_sim = Simulator::new(small_spec(4), SimulatorMode::Timing);
        let healthy = healthy_sim.run(&prog).unwrap();
        assert_eq!(healthy.fault_overhead(), 0.0);
        assert!(healthy.faults.is_none());

        let plan = crate::fault::FaultPlan::new(4)
            .set_link_fault(
                1,
                Some(crate::fault::LinkFault::Degraded { multiplier: 0.5 }),
            )
            .set_slowdown(2, 2.0);
        let mut sim = Simulator::new(small_spec(4), SimulatorMode::Timing)
            .with_fault_plan(plan)
            .unwrap();
        let degraded = sim.run(&prog).unwrap();
        assert!(degraded.total_time > healthy.total_time);
        assert!(degraded.fault_compute_overhead > 0.0);
        assert!(degraded.fault_exchange_overhead > 0.0);
        // Bytes moved are real bytes, not inflated.
        assert_eq!(degraded.total_shift_bytes, healthy.total_shift_bytes);
        let s = degraded.faults.unwrap();
        assert_eq!(s.degraded_links, 1);
        assert_eq!(s.slowed_cores, 1);
    }

    #[test]
    fn sram_fault_lowers_allocation_capacity() {
        let spec = small_spec(2);
        let nominal = spec.sram_per_core - spec.shift_buffer;
        let plan = crate::fault::FaultPlan::new(2).shrink_sram(1, 0.5);
        let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing)
            .with_fault_plan(plan)
            .unwrap();
        // Core 0 is untouched, core 1 lost half its SRAM.
        assert!(sim.allocate(decl_bytes(0, nominal)).is_ok());
        let err = sim.allocate(decl_bytes(1, nominal)).unwrap_err();
        assert!(err.message().contains("out of memory"), "{err}");
    }

    fn decl_bytes(core: usize, bytes: usize) -> BufferDecl {
        BufferDecl {
            core,
            label: "t".into(),
            bytes,
            coords: vec![],
            init: 0.0,
        }
    }

    #[test]
    fn fault_plan_rejects_core_count_mismatch() {
        let plan = crate::fault::FaultPlan::new(8);
        assert!(Simulator::new(small_spec(4), SimulatorMode::Timing)
            .with_fault_plan(plan)
            .is_err());
    }

    #[test]
    fn structured_trace_emits_spans_and_is_deterministic() {
        let mut prog = Program::new();
        for _ in 0..3 {
            let mut step = Superstep::new(Some(0), Phase::Execute);
            step.compute_summary = Some(ComputeSummary {
                desc: SubTaskDesc {
                    kind: OpKind::MatMul,
                    out_elems: 1024,
                    red_elems: 128,
                    window: 1,
                    in_bytes: 4096,
                    out_bytes: 2048,
                },
                active_cores: 4,
            });
            step.exchange_summary = Some(ExchangeSummary {
                total_bytes: 4 * 1024,
                max_core_out: 1024,
                max_core_in: 1024,
                cross_chip_bytes: 0,
                offchip_bytes: 0,
                active_cores: 4,
                max_core_messages: 1,
            });
            prog.steps.push(step);
        }
        let run = || {
            let trace = t10_trace::Trace::logical();
            let mut sim =
                Simulator::new(small_spec(4), SimulatorMode::Timing).with_trace(trace.clone());
            sim.run(&prog).unwrap();
            t10_trace::chrome::write_chrome_trace(&trace.snapshot())
        };
        let a = run();
        let b = run();
        // Sim events are stamped in sim time, so two identical runs emit
        // byte-identical traces.
        assert_eq!(a, b);
        let events = t10_trace::chrome::parse_chrome_trace(&a).unwrap();
        use t10_trace::CHIP_TID;
        assert!(events
            .iter()
            .any(|e| e.name == "compute" && e.tid == CHIP_TID));
        assert!(events
            .iter()
            .any(|e| e.name == "exchange" && e.tid == CHIP_TID));
        assert!(events
            .iter()
            .any(|e| e.name == "compute" && e.tid < CHIP_TID));
        assert!(events.iter().any(|e| e.name == "shift" && e.tid < CHIP_TID));
        assert!(events.iter().any(|e| e.name == "link_bytes"));
        assert!(events.iter().any(|e| e.name == "sram_high_water"));
        // Chip-track spans reconstruct the run's total time.
        let report_total: f64 = {
            let mut sim = Simulator::new(small_spec(4), SimulatorMode::Timing);
            sim.run(&prog).unwrap().total_time
        };
        let span_total: f64 = events
            .iter()
            .filter(|e| e.tid == CHIP_TID)
            .filter_map(|e| e.dur_us())
            .sum();
        assert!((span_total / 1e6 - report_total).abs() < 1e-9);
    }

    #[test]
    fn disabled_trace_emits_nothing() {
        let mut prog = Program::new();
        prog.steps.push(Superstep::new(Some(0), Phase::Execute));
        let mut sim = Simulator::new(small_spec(2), SimulatorMode::Timing);
        sim.run(&prog).unwrap();
        assert!(sim.trace().is_empty());
        assert!(!sim.trace().enabled());
    }

    #[test]
    fn ring_rotation_via_program_runs() {
        // Two cores rotate a 1-D tensor of 4 elements, partitions of 2.
        let mut sim = Simulator::new(small_spec(2), SimulatorMode::Functional);
        let mut prog = Program::new();
        let p0 = prog.add_buffer(decl(0, vec![vec![0, 1]]));
        let p1 = prog.add_buffer(decl(1, vec![vec![2, 3]]));
        let mut step = Superstep::new(None, Phase::Execute);
        step.exchange.push(ShiftOp {
            src: p0,
            dst: p1,
            kind: ShiftKind::RotateSlices { dim: 0, count: 2 },
        });
        step.exchange.push(ShiftOp {
            src: p1,
            dst: p0,
            kind: ShiftKind::RotateSlices { dim: 0, count: 2 },
        });
        prog.steps.push(step);
        let r = sim.run(&prog).unwrap();
        assert_eq!(r.steps, 1);
        assert_eq!(sim.buffer(p0).unwrap().coords()[0], vec![2, 3]);
        assert_eq!(sim.buffer(p1).unwrap().coords()[0], vec![0, 1]);
        assert_eq!(r.total_shift_bytes, 16);
    }
}
