//! Property-based tests of the simulator substrates.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;
use t10_sim::{FuncBuffer, MemoryTracker};

proptest! {
    /// Ring rotation conserves the data: after `extent` single-slice
    /// rotations around a ring that covers the extent, every buffer holds
    /// its original contents.
    #[test]
    fn full_rotation_cycle_is_identity(
        parts in 2usize..5,
        plen in 1usize..4,
        cross in 1usize..4,
        seed in 0u32..1000,
    ) {
        let extent = parts * plen;
        let mut bufs: Vec<FuncBuffer> = (0..parts)
            .map(|p| {
                let coords = vec![
                    ((p * plen)..(p + 1) * plen).collect::<Vec<_>>(),
                    (0..cross).collect::<Vec<_>>(),
                ];
                let mut b = FuncBuffer::new(coords, 0.0);
                for (i, v) in b.data_mut().iter_mut().enumerate() {
                    *v = (seed as usize * 131 + p * 17 + i) as f32;
                }
                b
            })
            .collect();
        let originals = bufs.clone();
        for _ in 0..extent {
            // Core p receives from core p+1 (one slice per step).
            let slabs: Vec<_> = bufs
                .iter()
                .map(|b| b.front_slab(0, 1).unwrap())
                .collect();
            for p in 0..parts {
                let (coords, data) = &slabs[(p + 1) % parts];
                bufs[p].rotate(0, 1, coords, data).unwrap();
            }
        }
        for (b, o) in bufs.iter().zip(&originals) {
            prop_assert_eq!(b.coords(), o.coords());
            prop_assert_eq!(b.data(), o.data());
        }
    }

    /// Rotation preserves the multiset of (coordinate, value) pairs across
    /// the whole ring at every step.
    #[test]
    fn rotation_conserves_elements(
        parts in 2usize..5,
        plen in 1usize..4,
        steps in 1usize..7,
    ) {
        let mut bufs: Vec<FuncBuffer> = (0..parts)
            .map(|p| {
                let coords = vec![((p * plen)..(p + 1) * plen).collect::<Vec<_>>()];
                let mut b = FuncBuffer::new(coords, 0.0);
                for (i, v) in b.data_mut().iter_mut().enumerate() {
                    *v = (p * 100 + i) as f32;
                }
                b
            })
            .collect();
        let collect_all = |bufs: &[FuncBuffer]| {
            let mut all: Vec<(usize, u32)> = Vec::new();
            for b in bufs {
                b.for_each_coord(|g, v| all.push((g[0], v.to_bits())));
            }
            all.sort_unstable();
            all
        };
        let before = collect_all(&bufs);
        for _ in 0..steps {
            let slabs: Vec<_> = bufs
                .iter()
                .map(|b| b.front_slab(0, 1).unwrap())
                .collect();
            for p in 0..parts {
                let (coords, data) = &slabs[(p + 1) % parts];
                bufs[p].rotate(0, 1, coords, data).unwrap();
            }
        }
        prop_assert_eq!(collect_all(&bufs), before);
    }

    /// Memory accounting: any sequence of allocations and frees that the
    /// tracker accepts keeps usage within capacity, and the peak is the
    /// maximum over time.
    #[test]
    fn memory_tracker_invariants(ops in proptest::collection::vec((0usize..4, 1usize..400), 1..40)) {
        let cap = 1000;
        let mut m = MemoryTracker::new(4, cap);
        let mut shadow = [0usize; 4];
        let mut peak = 0usize;
        for (core, bytes) in ops {
            if shadow[core] + bytes <= cap {
                m.allocate(core, bytes).unwrap();
                shadow[core] += bytes;
                peak = peak.max(*shadow.iter().max().unwrap());
            } else {
                prop_assert!(m.allocate(core, bytes).is_err());
                // Free half of the core to keep the sequence moving.
                let f = shadow[core] / 2;
                if f > 0 {
                    m.free(core, f).unwrap();
                    shadow[core] -= f;
                }
            }
            for (c, &s) in shadow.iter().enumerate() {
                prop_assert_eq!(m.used(c), s);
                prop_assert!(m.used(c) <= cap);
            }
        }
        prop_assert!(m.peak_any_core() >= *shadow.iter().max().unwrap());
        prop_assert_eq!(m.peak_any_core(), peak);
    }

    /// Buffer lookup: `get` finds exactly the coordinates the buffer covers.
    #[test]
    fn buffer_coverage_is_exact(offset in 0usize..10, len in 1usize..6) {
        let b = FuncBuffer::new(vec![(offset..offset + len).collect()], 1.0);
        for g in 0..20 {
            let hit = b.get(&[g]).is_some();
            prop_assert_eq!(hit, g >= offset && g < offset + len);
        }
    }

    /// Fault injection is deterministic: the same seed and spec produce the
    /// same plan, and two fresh simulators running the same program under
    /// that plan produce bit-identical reports.
    #[test]
    fn same_fault_seed_gives_bit_identical_reports(
        seed in 0u64..10_000,
        steps in 1usize..6,
        out_elems in 1u64..4096,
        bytes in 1u64..65_536,
    ) {
        use t10_device::program::{ComputeSummary, ExchangeSummary, Phase, Program, SubTaskDesc, Superstep};
        use t10_ir::OpKind;
        use t10_sim::{FaultPlan, Simulator, SimulatorMode};

        let cores = 16;
        let spec = t10_device::ChipSpec::ipu_with_cores(cores);
        let mut prog = Program::new();
        for i in 0..steps {
            let mut step = Superstep::new(Some(0), Phase::Execute);
            step.compute_summary = Some(ComputeSummary {
                desc: SubTaskDesc {
                    kind: OpKind::MatMul,
                    out_elems: out_elems + i as u64,
                    red_elems: 32,
                    window: 1,
                    in_bytes: bytes,
                    out_bytes: bytes / 2,
                },
                active_cores: cores,
            });
            step.exchange_summary = Some(ExchangeSummary {
                total_bytes: bytes * cores as u64,
                max_core_out: bytes,
                max_core_in: bytes,
                cross_chip_bytes: 0,
                offchip_bytes: 0,
                active_cores: cores,
                max_core_messages: 1,
            });
            prog.steps.push(step);
        }

        let build = || {
            FaultPlan::seeded(cores, seed)
                .degrade_links(0.3, 0.5)
                .lose_links(0.1)
                .slow_cores(0.2, 2.0)
                .shrink_sram(seed as usize % cores, 0.75)
        };
        prop_assert_eq!(build(), build());

        let run = || {
            let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing)
                .with_fault_plan(build())
                .unwrap();
            sim.run(&prog).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
        prop_assert_eq!(a.compute_time.to_bits(), b.compute_time.to_bits());
        prop_assert_eq!(a.exchange_time.to_bits(), b.exchange_time.to_bits());
        prop_assert_eq!(
            a.fault_compute_overhead.to_bits(),
            b.fault_compute_overhead.to_bits()
        );
        prop_assert_eq!(
            a.fault_exchange_overhead.to_bits(),
            b.fault_exchange_overhead.to_bits()
        );
        prop_assert_eq!(a.total_shift_bytes, b.total_shift_bytes);
        prop_assert_eq!(a.faults, b.faults);
    }
}
