//! Superstep checkpointing properties: restore + replay must be invisible.
//!
//! The recovery protocol leans on one invariant — a run that restores a
//! checkpoint and resumes produces the *bit-identical* `RunReport` (and, in
//! functional mode, buffer state) of a run that never restored. These tests
//! pin that invariant down, plus the honest memory accounting for the
//! checkpoint staging reservation and the determinism of seeded timelines.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;
use t10_device::program::{
    BufferDecl, ComputeSummary, ExchangeSummary, Phase, Program, ShiftKind, ShiftOp, SubTaskDesc,
    Superstep,
};
use t10_device::{ChipSpec, DeviceInterface};
use t10_ir::OpKind;
use t10_sim::{FaultTimeline, Simulator, SimulatorMode};

/// A timing program of `n` supersteps with per-step varying work, so any
/// replay misalignment shows up as a time mismatch, not just a count.
fn timing_program(n: usize) -> Program {
    let mut prog = Program::new();
    // Resident state so checkpoints have something to stage.
    prog.add_buffer(BufferDecl {
        core: 0,
        label: "resident".into(),
        bytes: 4096,
        coords: vec![],
        init: 0.0,
    });
    for i in 0..n {
        let mut step = Superstep::new(Some(0), Phase::Execute);
        step.compute_summary = Some(ComputeSummary {
            desc: SubTaskDesc {
                kind: OpKind::MatMul,
                out_elems: 256 + 64 * i as u64,
                red_elems: 32 + i as u64,
                window: 1,
                in_bytes: 1024,
                out_bytes: 512,
            },
            active_cores: 4,
        });
        step.exchange_summary = Some(ExchangeSummary {
            total_bytes: 2048 + 256 * i as u64,
            max_core_out: 512,
            max_core_in: 512,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 4,
            max_core_messages: 1,
        });
        prog.steps.push(step);
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Restoring the last checkpoint and resuming yields the exact report
    /// of an uninterrupted run — checkpoint charges included.
    #[test]
    fn restore_and_resume_is_bit_identical(steps in 1usize..12, every in 1usize..5) {
        let spec = ChipSpec::ipu_with_cores(4);
        let prog = timing_program(steps);

        let mut healthy = Simulator::new(spec.clone(), SimulatorMode::Timing)
            .with_checkpointing(every)
            .unwrap();
        let reference = healthy.run(&prog).unwrap();

        let mut replayed = Simulator::new(spec, SimulatorMode::Timing)
            .with_checkpointing(every)
            .unwrap();
        let first_pass = replayed.run(&prog).unwrap();
        prop_assert_eq!(&reference, &first_pass);

        let ck = replayed.last_checkpoint().cloned().expect("a checkpoint was taken");
        prop_assert!(ck.step() <= steps);
        replayed.restore(&ck).unwrap();
        let second_pass = replayed.resume(&prog).unwrap();
        prop_assert_eq!(&reference, &second_pass);
        prop_assert!(reference.checkpoints_taken >= 1);
    }
}

#[test]
fn functional_restore_rewinds_buffer_contents() {
    // Two cores rotate a 1-D tensor; a checkpoint at step 0 must capture the
    // pre-rotation placement, and restore + resume must land on the same
    // final placement as the uninterrupted run.
    let decl = |core: usize, coords: Vec<usize>| BufferDecl {
        core,
        label: "t".into(),
        bytes: coords.len() * 4,
        coords: vec![coords],
        init: 0.0,
    };
    let mut prog = Program::new();
    let p0 = prog.add_buffer(decl(0, vec![0, 1]));
    let p1 = prog.add_buffer(decl(1, vec![2, 3]));
    let mut step = Superstep::new(None, Phase::Execute);
    step.exchange.push(ShiftOp {
        src: p0,
        dst: p1,
        kind: ShiftKind::RotateSlices { dim: 0, count: 2 },
    });
    step.exchange.push(ShiftOp {
        src: p1,
        dst: p0,
        kind: ShiftKind::RotateSlices { dim: 0, count: 2 },
    });
    prog.steps.push(step);

    let mut sim = Simulator::new(ChipSpec::ipu_with_cores(2), SimulatorMode::Functional)
        .with_checkpointing(1)
        .unwrap();
    let first = sim.run(&prog).unwrap();
    assert_eq!(sim.buffer(p0).unwrap().coords()[0], vec![2, 3]);

    let ck = sim.last_checkpoint().cloned().unwrap();
    sim.restore(&ck).unwrap();
    // The checkpoint predates the rotation: state is rewound...
    assert_eq!(sim.buffer(p0).unwrap().coords()[0], vec![0, 1]);
    let second = sim.resume(&prog).unwrap();
    // ...and replay reaches the same final placement and report.
    assert_eq!(sim.buffer(p0).unwrap().coords()[0], vec![2, 3]);
    assert_eq!(sim.buffer(p1).unwrap().coords()[0], vec![0, 1]);
    assert_eq!(first, second);
}

#[test]
fn checkpoint_staging_is_carved_out_of_core_capacity() {
    let spec = ChipSpec::ipu_with_cores(2);
    let nominal = spec.sram_per_core - spec.shift_buffer;
    let decl = |bytes: usize| BufferDecl {
        core: 0,
        label: "t".into(),
        bytes,
        coords: vec![],
        init: 0.0,
    };

    // Without checkpointing, the full nominal capacity is available.
    let mut plain = Simulator::new(spec.clone(), SimulatorMode::Timing);
    assert!(plain.allocate(decl(nominal)).is_ok());

    // With checkpointing, the staging reservation shrinks what fits.
    let mut ck = Simulator::new(spec.clone(), SimulatorMode::Timing)
        .with_checkpointing(2)
        .unwrap();
    let err = ck.allocate(decl(nominal)).unwrap_err();
    assert!(err.message().contains("out of memory"), "{err}");
    assert!(ck.allocate(decl(nominal - spec.shift_buffer)).is_ok());

    // The reservation is reported honestly after a run.
    let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing)
        .with_checkpointing(2)
        .unwrap();
    let r = sim.run(&timing_program(3)).unwrap();
    assert_eq!(r.checkpoint_staging_bytes, spec.shift_buffer);
    assert!(r.checkpoint_bytes > 0);
    assert!(r.checkpoint_time > 0.0);
}

#[test]
fn absorbed_timeline_events_are_deterministic_and_slow_the_run() {
    let spec = ChipSpec::ipu_with_cores(4);
    let prog = timing_program(6);
    let mut healthy = Simulator::new(spec.clone(), SimulatorMode::Timing);
    let base = healthy.run(&prog).unwrap();

    let run_once = || {
        let tl = FaultTimeline::parse("degrade=2@1@0.5,slow=4@0@2.0", spec.num_cores).unwrap();
        let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing).with_fault_timeline(tl);
        sim.run(&prog).unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "same timeline, same report");
    assert_eq!(a.timeline_events, 2);
    assert!(
        a.total_time > base.total_time,
        "absorbed faults must cost time: {} vs {}",
        a.total_time,
        base.total_time
    );
}

#[test]
fn seeded_random_timelines_are_reproducible() {
    let a = FaultTimeline::parse("seed=7,random=6@40", 8).unwrap();
    let b = FaultTimeline::parse("seed=7,random=6@40", 8).unwrap();
    assert_eq!(a.events(), b.events());
    assert_eq!(a.events().len(), 6);
    let c = FaultTimeline::parse("seed=8,random=6@40", 8).unwrap();
    assert_ne!(a.events(), c.events(), "different seed, different timeline");
}
