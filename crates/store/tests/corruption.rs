//! Exhaustive corruption suite for the on-disk plan store.
//!
//! The robustness claim under test: *no* corruption of an entry's bytes —
//! truncation at any byte boundary, any single bit flip, a torn write —
//! can ever make the store serve a payload other than the one recorded.
//! Every corrupted entry must surface a typed [`StoreError`], land in
//! quarantine, and degrade to a cache miss (the "recompile" half of
//! quarantine-then-recompile).
//!
//! The suites are deterministic full enumerations, not sampled fuzzing:
//! the entry is small enough to try every truncation point and every bit.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use t10_core::cache::PlanCache;
use t10_store::DiskPlanCache;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "t10-store-corrupt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

const KEY: &str =
    "v1|op=00aa11bb22cc33dd|chip=44ee55ff66778899|fault=0123456789abcdef|search=fedcba9876543210";
const PAYLOAD: &str = "t10-frontier v1\nstats complete=4.2e2 filtered=17\nplans=2\nf_op=4,2,1 temporal=.:1;0:4\nf_op=2,2,2 temporal=1:2;.:1\n";

/// One corruption trial: overwrite the live entry with `bytes`, then demand
/// the full quarantine-then-recompile contract.
fn assert_rejected(store: &DiskPlanCache, bytes: &[u8], what: &str) {
    let path = store.entry_path(KEY);
    fs::write(&path, bytes).unwrap();
    // 1. Never a served bad plan: the strict API returns a typed error,
    //    not Ok(Some(..)) of anything.
    let err = store
        .load(KEY)
        .expect_err(&format!("{what}: corrupt entry was served"));
    // 2. The entry is quarantined — gone from the live set …
    assert!(!path.exists(), "{what}: entry not quarantined ({err})");
    // 3. … so the compiler-facing interface sees a clean miss and will
    //    fall through to a fresh search.
    assert_eq!(store.lookup(KEY), None, "{what}");
    // 4. Recompile heals: re-recording serves the true payload again.
    store.record(KEY, PAYLOAD);
    assert_eq!(store.lookup(KEY).as_deref(), Some(PAYLOAD), "{what}");
}

#[test]
fn truncation_at_every_byte_boundary_is_caught() {
    let store = DiskPlanCache::open(fresh_dir("truncate"))
        .unwrap()
        .without_sync();
    store.store(KEY, PAYLOAD).unwrap();
    let full = fs::read(store.entry_path(KEY)).unwrap();

    let mut labels = std::collections::BTreeSet::new();
    for cut in 0..full.len() {
        let path = store.entry_path(KEY);
        fs::write(&path, &full[..cut]).unwrap();
        let err = store
            .load(KEY)
            .expect_err(&format!("truncation at byte {cut} was served"));
        labels.insert(err.label());
        assert!(!path.exists(), "truncation at byte {cut} not quarantined");
        assert_eq!(store.lookup(KEY), None, "cut={cut}");
        // Restore the pristine entry for the next boundary.
        fs::write(&path, &full).unwrap();
    }
    // Every boundary was quarantined once by load() (lookup() saw a plain
    // miss afterwards, which quarantines nothing).
    assert_eq!(store.counters().quarantined, full.len());
    // Cuts inside the header parse as malformed/version faults; cuts inside
    // the payload are caught by the declared length.
    assert!(labels.contains("truncated"), "{labels:?}");
    assert!(labels.contains("malformed"), "{labels:?}");
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn every_single_bit_flip_is_caught() {
    let store = DiskPlanCache::open(fresh_dir("bitflip"))
        .unwrap()
        .without_sync();
    store.store(KEY, PAYLOAD).unwrap();
    let full = fs::read(store.entry_path(KEY)).unwrap();

    // FNV-1a processes each byte with an xor followed by a multiply by an
    // odd (hence invertible) constant, so two payloads differing in exactly
    // one byte can never collide — every payload flip is caught by the
    // checksum, and every header flip breaks the strict envelope grammar or
    // the embedded-key comparison. Enumerate all of them.
    let mut flips = 0usize;
    for i in 0..full.len() {
        for bit in 0..8 {
            let mut bad = full.clone();
            bad[i] ^= 1 << bit;
            assert_rejected(&store, &bad, &format!("flip byte {i} bit {bit}"));
            flips += 1;
            // assert_rejected re-records; refresh our pristine copy's
            // invariant (bytes are deterministic, so it matches `full`).
        }
    }
    assert_eq!(flips, full.len() * 8);
    assert_eq!(store.counters().quarantined, flips);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn stored_bytes_are_deterministic() {
    // Re-recording the same payload reproduces the exact file bytes — the
    // property the bit-flip suite's restore step relies on, and the reason
    // warm caches are stable across processes.
    let store = DiskPlanCache::open(fresh_dir("determinism"))
        .unwrap()
        .without_sync();
    store.store(KEY, PAYLOAD).unwrap();
    let first = fs::read(store.entry_path(KEY)).unwrap();
    store.store(KEY, PAYLOAD).unwrap();
    assert_eq!(fs::read(store.entry_path(KEY)).unwrap(), first);
    let _ = fs::remove_dir_all(store.root());
}

#[test]
fn torn_writes_never_become_visible_entries() {
    // Simulate a writer killed mid-write at every byte of progress: the
    // partial temp file is never addressable as an entry, and reopening the
    // store sweeps it.
    let root = fresh_dir("torn");
    let store = DiskPlanCache::open(&root).unwrap().without_sync();
    store.store(KEY, PAYLOAD).unwrap();
    let full = fs::read(store.entry_path(KEY)).unwrap();
    fs::remove_file(store.entry_path(KEY)).unwrap();

    for progress in 0..full.len() {
        let tmp = root.join(format!(".tmp-{}-{progress}", std::process::id()));
        fs::write(&tmp, &full[..progress]).unwrap();
        // The half-written file is invisible to readers.
        assert_eq!(store.load(KEY).unwrap(), None, "progress={progress}");
        assert!(tmp.exists());
    }
    // A restart sweeps all the residue without touching anything else.
    drop(store);
    let reopened = DiskPlanCache::open(&root).unwrap();
    let residue: Vec<_> = fs::read_dir(&root)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(residue.is_empty(), "{residue:?}");
    assert_eq!(reopened.load(KEY).unwrap(), None);
    assert_eq!(reopened.counters().quarantined, 0);
    let _ = fs::remove_dir_all(root);
}

#[test]
fn whole_file_garbage_is_quarantined_with_typed_errors() {
    let store = DiskPlanCache::open(fresh_dir("garbage"))
        .unwrap()
        .without_sync();
    for (bytes, expect_label) in [
        (b"".to_vec(), "malformed"),
        (b"\x00\xff\xfe\xfd".to_vec(), "malformed"),
        (
            b"t10-store v2\nkey=a\ncheck=0000000000000000\nlen=0\n---\n".to_vec(),
            "version-mismatch",
        ),
        (b"not a store file at all\n".to_vec(), "version-mismatch"),
    ] {
        store.store(KEY, PAYLOAD).unwrap();
        let path = store.entry_path(KEY);
        fs::write(&path, &bytes).unwrap();
        let err = store.load(KEY).unwrap_err();
        assert_eq!(err.label(), expect_label, "{err}");
        assert!(!path.exists());
    }
    // Quarantine names carry the error label for the incident report.
    let q = store.quarantined_files();
    assert!(!q.is_empty());
    assert!(
        q.iter()
            .any(|p| p.to_string_lossy().ends_with(".version-mismatch")),
        "{q:?}"
    );
    let _ = fs::remove_dir_all(store.root());
}
