//! End-to-end: the compiler over a real on-disk cache.
//!
//! The compile-service contract: a warm compile served from disk — even by
//! a *different* store instance, as after a process restart — is
//! byte-identical to a cold compile, and a cache directory corrupted on
//! disk costs only recompilation, never a wrong program.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use t10_core::compiler::{CompileOptions, CompiledGraph, Compiler};
use t10_core::search::SearchConfig;
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, ValueKind};
use t10_store::DiskPlanCache;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "t10-store-compile-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn mlp() -> Graph {
    let mut g = Graph::new("mlp");
    let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
    let w1 = g.add_value("w1", vec![64, 48], DType::F16, ValueKind::Weight);
    let h = g.add_value("h", vec![64, 48], DType::F16, ValueKind::Activation);
    let w2 = g.add_value("w2", vec![48, 32], DType::F16, ValueKind::Weight);
    let o = g.add_value("o", vec![64, 32], DType::F16, ValueKind::Output);
    g.add_node("fc1", builders::matmul(a, w1, h, 64, 64, 48).unwrap())
        .unwrap();
    g.add_node("fc2", builders::matmul(h, w2, o, 64, 48, 32).unwrap())
        .unwrap();
    g
}

fn fingerprint(c: &CompiledGraph) -> String {
    format!("{:?}|{:?}|{:?}", c.program, c.node_pareto, c.reconciled)
}

#[test]
fn warm_disk_compile_survives_a_restart_byte_identically() {
    let root = fresh_dir("restart");
    let g = mlp();
    let compiler = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());

    // Cold compile populates the directory.
    let store = Arc::new(DiskPlanCache::open(&root).unwrap().without_sync());
    let cold = compiler
        .compile_graph_with(&g, &CompileOptions::with_cache(store.clone()))
        .unwrap();
    assert!(cold.cache_stats.recorded > 0);
    assert!(store.entry_count() > 0);

    // "Restart": a brand-new store instance over the same directory.
    let store2 = Arc::new(DiskPlanCache::open(&root).unwrap().without_sync());
    let warm = compiler
        .compile_graph_with(&g, &CompileOptions::with_cache(store2.clone()))
        .unwrap();
    assert!(warm.cache_stats.disk_hits > 0);
    assert_eq!(warm.cache_stats.recorded, 0);
    assert_eq!(store2.counters().hits, warm.cache_stats.disk_hits);
    assert_eq!(fingerprint(&warm), fingerprint(&cold));
    let _ = fs::remove_dir_all(root);
}

#[test]
fn corrupted_cache_directory_only_costs_recompilation() {
    let root = fresh_dir("corrupt");
    let g = mlp();
    let compiler = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());

    let store = Arc::new(DiskPlanCache::open(&root).unwrap().without_sync());
    let opts = CompileOptions::with_cache(store.clone());
    let cold = compiler.compile_graph_with(&g, &opts).unwrap();

    // Vandalise every entry on disk a different way: truncate the first,
    // bit-flip the second, and so on.
    let mut entries: Vec<PathBuf> = fs::read_dir(&root)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for (i, path) in entries.iter().enumerate() {
        let mut bytes = fs::read(path).unwrap();
        match i % 3 {
            0 => bytes.truncate(bytes.len() / 2),
            1 => {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
            }
            _ => bytes = b"scribbled over by a rogue process".to_vec(),
        }
        fs::write(path, &bytes).unwrap();
    }

    // The compile heals: identical program, every bad entry quarantined,
    // and the directory is repopulated for the next caller.
    let healed = compiler.compile_graph_with(&g, &opts).unwrap();
    assert_eq!(fingerprint(&healed), fingerprint(&cold));
    assert_eq!(healed.cache_stats.disk_hits, 0);
    assert!(healed.cache_stats.recorded > 0);
    assert_eq!(store.counters().quarantined, entries.len());
    assert_eq!(store.quarantined_files().len(), entries.len());

    let warm = compiler.compile_graph_with(&g, &opts).unwrap();
    assert!(warm.cache_stats.disk_hits > 0);
    assert_eq!(fingerprint(&warm), fingerprint(&cold));
    let _ = fs::remove_dir_all(root);
}

#[test]
fn degraded_chip_compiles_never_reuse_healthy_entries() {
    use t10_sim::FaultPlan;

    let root = fresh_dir("faultkey");
    let g = mlp();
    let compiler = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
    let store = Arc::new(DiskPlanCache::open(&root).unwrap().without_sync());

    let healthy = compiler
        .compile_graph_with(&g, &CompileOptions::with_cache(store.clone()))
        .unwrap();
    assert!(healthy.cache_stats.recorded > 0);

    // A degraded chip must miss every healthy-chip entry: its keys embed
    // the fault digest, so it searches fresh and records its own entries.
    let mut opts = CompileOptions::with_cache(store.clone());
    opts.faults = Some(FaultPlan::seeded(16, 7).shrink_sram(3, 0.5));
    let degraded = compiler.compile_graph_with(&g, &opts).unwrap();
    assert_eq!(degraded.cache_stats.disk_hits, 0);
    assert!(degraded.cache_stats.recorded > 0);
    assert_eq!(store.counters().quarantined, 0);

    // Both populations now coexist; each variant hits only its own.
    let healthy_again = compiler
        .compile_graph_with(&g, &CompileOptions::with_cache(store.clone()))
        .unwrap();
    assert!(healthy_again.cache_stats.disk_hits > 0);
    assert_eq!(fingerprint(&healthy_again), fingerprint(&healthy));
    let degraded_again = compiler.compile_graph_with(&g, &opts).unwrap();
    assert!(degraded_again.cache_stats.disk_hits > 0);
    assert_eq!(fingerprint(&degraded_again), fingerprint(&degraded));
    let _ = fs::remove_dir_all(root);
}
