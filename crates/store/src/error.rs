//! Typed failure taxonomy for the on-disk plan store.
//!
//! Every way an entry can be bad gets its own variant, because the callers
//! react differently: the cache layer quarantines and falls through to
//! recompilation on any of them, the chaos campaign asserts the *right*
//! variant surfaced for each injected fault, and the CI robustness job
//! greps quarantine reports by [`StoreError::label`].

use std::path::PathBuf;

/// A failure detected while reading, validating, or writing a store entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying filesystem operation failed (permissions, disk full,
    /// unreadable file). Carries the OS error text.
    Io { path: PathBuf, detail: String },
    /// The entry's envelope declares a different format version than this
    /// build writes — a stale entry from an older/newer store.
    VersionMismatch { path: PathBuf, found: String },
    /// The payload is shorter than the envelope's declared length — a torn
    /// write or a truncated file.
    Truncated {
        path: PathBuf,
        expected: usize,
        actual: usize,
    },
    /// The payload checksum does not match the envelope's — bit rot, a
    /// partial overwrite, or tampering.
    ChecksumMismatch {
        path: PathBuf,
        expected: u64,
        actual: u64,
    },
    /// The entry's embedded key is not the key it was addressed by — a
    /// renamed/moved file or a (astronomically unlikely) filename-hash
    /// collision.
    KeyMismatch {
        path: PathBuf,
        expected: String,
        found: String,
    },
    /// The envelope structure itself does not parse (missing header lines,
    /// non-UTF-8 bytes, trailing garbage, unparseable fields).
    Malformed { path: PathBuf, detail: String },
}

impl StoreError {
    /// A short, stable machine-readable tag, used in quarantine file names
    /// and chaos/CI reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Io { .. } => "io",
            Self::VersionMismatch { .. } => "version-mismatch",
            Self::Truncated { .. } => "truncated",
            Self::ChecksumMismatch { .. } => "checksum-mismatch",
            Self::KeyMismatch { .. } => "key-mismatch",
            Self::Malformed { .. } => "malformed",
        }
    }

    /// The path of the offending entry, when one exists.
    #[must_use]
    pub fn path(&self) -> &PathBuf {
        match self {
            Self::Io { path, .. }
            | Self::VersionMismatch { path, .. }
            | Self::Truncated { path, .. }
            | Self::ChecksumMismatch { path, .. }
            | Self::KeyMismatch { path, .. }
            | Self::Malformed { path, .. } => path,
        }
    }

    /// The human-readable message (without any prefix).
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            Self::Io { path, detail } => format!("{}: {detail}", path.display()),
            Self::VersionMismatch { path, found } => format!(
                "{}: unsupported store version {found:?} (expected {:?})",
                path.display(),
                crate::envelope::MAGIC,
            ),
            Self::Truncated {
                path,
                expected,
                actual,
            } => format!(
                "{}: payload truncated ({actual} of {expected} bytes)",
                path.display()
            ),
            Self::ChecksumMismatch {
                path,
                expected,
                actual,
            } => format!(
                "{}: payload checksum {actual:016x} does not match envelope {expected:016x}",
                path.display()
            ),
            Self::KeyMismatch {
                path,
                expected,
                found,
            } => format!(
                "{}: entry holds key {found:?}, addressed as {expected:?}",
                path.display()
            ),
            Self::Malformed { path, detail } => {
                format!("{}: malformed envelope: {detail}", path.display())
            }
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store error [{}]: {}", self.label(), self.message())
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_messages_are_distinct() {
        let p = PathBuf::from("/cache/ab.plan");
        let errs = [
            StoreError::Io {
                path: p.clone(),
                detail: "denied".into(),
            },
            StoreError::VersionMismatch {
                path: p.clone(),
                found: "t10-store v9".into(),
            },
            StoreError::Truncated {
                path: p.clone(),
                expected: 100,
                actual: 42,
            },
            StoreError::ChecksumMismatch {
                path: p.clone(),
                expected: 1,
                actual: 2,
            },
            StoreError::KeyMismatch {
                path: p.clone(),
                expected: "a".into(),
                found: "b".into(),
            },
            StoreError::Malformed {
                path: p.clone(),
                detail: "no header".into(),
            },
        ];
        let labels: std::collections::BTreeSet<_> = errs.iter().map(StoreError::label).collect();
        assert_eq!(labels.len(), errs.len());
        for e in &errs {
            assert_eq!(e.path(), &p);
            assert!(e.to_string().contains(e.label()), "{e}");
        }
        assert!(errs[2].message().contains("42 of 100"));
    }
}
