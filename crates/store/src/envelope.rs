//! The versioned on-disk envelope wrapping every store entry.
//!
//! ```text
//! t10-store v1
//! key=v1|op=…|chip=…|fault=…|search=…
//! check=9e107d9d372bb682
//! len=137
//! ---
//! <payload bytes, exactly `len` of them>
//! ```
//!
//! The format is deliberately strict: exact magic, fixed header order, a
//! declared payload length that must match the remaining bytes exactly (no
//! trailing garbage), and an FNV-1a checksum over the payload. Anything
//! that deviates parses to a typed [`EnvelopeFault`] — the store maps it to
//! a [`crate::StoreError`], quarantines the file, and reports a miss, so a
//! torn, truncated, or bit-flipped entry can never be served.

use t10_core::cache::fnv64;

/// First line of every entry; bump the version on any format change.
pub const MAGIC: &str = "t10-store v1";

/// A path-less envelope defect; [`crate::DiskPlanCache`] attaches the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeFault {
    /// Wrong or missing magic line.
    Version { found: String },
    /// Payload shorter than declared.
    Truncated { expected: usize, actual: usize },
    /// Payload checksum differs from the declared one.
    Checksum { expected: u64, actual: u64 },
    /// Structural defect (bad UTF-8, missing header line, trailing bytes,
    /// unparseable field).
    Malformed { detail: String },
}

/// Wraps `payload` for `key`. The key must be newline-free (cache keys are
/// by construction); the caller validates.
#[must_use]
pub fn encode(key: &str, payload: &str) -> String {
    format!(
        "{MAGIC}\nkey={key}\ncheck={:016x}\nlen={}\n---\n{payload}",
        fnv64(payload.as_bytes()),
        payload.len(),
    )
}

/// Parses and validates one entry, returning `(key, payload)`.
pub fn decode(bytes: &[u8]) -> Result<(String, String), EnvelopeFault> {
    let text = std::str::from_utf8(bytes).map_err(|e| EnvelopeFault::Malformed {
        detail: format!("not UTF-8: {e}"),
    })?;
    let (magic, rest) = split_line(text, "magic")?;
    if magic != MAGIC {
        return Err(EnvelopeFault::Version {
            found: magic.chars().take(40).collect(),
        });
    }
    let (key_line, rest) = split_line(rest, "key")?;
    let key = key_line
        .strip_prefix("key=")
        .ok_or_else(|| malformed("key line missing key= prefix"))?;
    let (check_line, rest) = split_line(rest, "check")?;
    let check_hex = check_line
        .strip_prefix("check=")
        .ok_or_else(|| malformed("check line missing check= prefix"))?;
    // Canonical form only: exactly 16 lowercase hex digits. (Bare
    // `from_str_radix` would also accept uppercase and `+`-prefixed
    // strings, making some corruptions parse back to the same value.)
    if check_hex.len() != 16
        || !check_hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(malformed("checksum is not 16 lowercase hex digits"));
    }
    let expected_check =
        u64::from_str_radix(check_hex, 16).map_err(|_| malformed("checksum is not hexadecimal"))?;
    let (len_line, rest) = split_line(rest, "len")?;
    let len_text = len_line
        .strip_prefix("len=")
        .ok_or_else(|| malformed("len line missing len= prefix"))?;
    // Same canonicality rule: digits only (`parse` alone tolerates a
    // leading `+`).
    if len_text.is_empty() || !len_text.bytes().all(|b| b.is_ascii_digit()) {
        return Err(malformed("len is not a byte count"));
    }
    let expected_len: usize = len_text
        .parse()
        .map_err(|_| malformed("len is not a byte count"))?;
    let (sep, payload) = split_line(rest, "separator")?;
    if sep != "---" {
        return Err(malformed("missing --- separator"));
    }
    match payload.len() {
        actual if actual < expected_len => Err(EnvelopeFault::Truncated {
            expected: expected_len,
            actual,
        }),
        actual if actual > expected_len => Err(malformed("trailing bytes after payload")),
        _ => {
            let actual_check = fnv64(payload.as_bytes());
            if actual_check != expected_check {
                return Err(EnvelopeFault::Checksum {
                    expected: expected_check,
                    actual: actual_check,
                });
            }
            Ok((key.to_string(), payload.to_string()))
        }
    }
}

fn split_line<'a>(s: &'a str, what: &str) -> Result<(&'a str, &'a str), EnvelopeFault> {
    s.split_once('\n')
        .ok_or_else(|| malformed(&format!("header truncated before {what} line")))
}

fn malformed(detail: &str) -> EnvelopeFault {
    EnvelopeFault::Malformed {
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &str = "v1|op=0123|chip=4567|fault=89ab|search=cdef";

    #[test]
    fn round_trip_is_bit_identical() {
        for payload in ["", "x", "line1\nline2\n", "t10-frontier v1\nplans=0\n"] {
            let env = encode(KEY, payload);
            let (k, p) = decode(env.as_bytes()).unwrap();
            assert_eq!(k, KEY);
            assert_eq!(p, payload);
            // Re-encoding reproduces the exact bytes.
            assert_eq!(encode(&k, &p), env);
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let env = encode(KEY, "abc").replacen("t10-store v1", "t10-store v2", 1);
        assert!(matches!(
            decode(env.as_bytes()),
            Err(EnvelopeFault::Version { .. })
        ));
        assert!(matches!(
            decode(b"garbage\nkey=a\ncheck=0\nlen=0\n---\n"),
            Err(EnvelopeFault::Version { .. })
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let env = encode(KEY, "hello world");
        // Cut one byte off: declared len no longer matches.
        let cut = &env.as_bytes()[..env.len() - 1];
        assert_eq!(
            decode(cut),
            Err(EnvelopeFault::Truncated {
                expected: 11,
                actual: 10
            })
        );
        // One byte too many: strict no-trailing rule.
        let mut long = env.clone().into_bytes();
        long.push(b'!');
        assert!(matches!(
            decode(&long),
            Err(EnvelopeFault::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_checksum_and_structure_defects() {
        let env = encode(KEY, "hello world");
        // Flip a payload byte while keeping the length.
        let mut bad = env.clone().into_bytes();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert!(matches!(decode(&bad), Err(EnvelopeFault::Checksum { .. })));
        // Non-hex checksum.
        let env2 = encode(KEY, "x").replacen("check=", "check=zz", 1);
        assert!(matches!(
            decode(env2.as_bytes()),
            Err(EnvelopeFault::Malformed { .. })
        ));
        // Header cut mid-way.
        assert!(matches!(
            decode(b"t10-store v1\nkey=a"),
            Err(EnvelopeFault::Malformed { .. })
        ));
        // Not UTF-8.
        assert!(matches!(
            decode(&[0x74, 0xff, 0xfe]),
            Err(EnvelopeFault::Malformed { .. })
        ));
    }
}
