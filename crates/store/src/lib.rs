#![cfg_attr(test, allow(clippy::unwrap_used, clippy::indexing_slicing))]
//! Crash-safe, content-addressed persistent plan cache (t10-store).
//!
//! The disk backend behind `t10 compile --cache` and `t10 serve`: it
//! persists Pareto-frontier configurations per
//! [`t10_core::cache::plan_cache_key`] so a fleet compiling recurring
//! shapes hits cache instead of re-running the search, across processes
//! and restarts.
//!
//! Design rules, in order of importance:
//!
//! 1. **Never serve a bad entry.** Every entry carries a versioned envelope
//!    with an integrity checksum and its own key; anything that fails
//!    validation is moved to a quarantine directory with a typed
//!    [`StoreError`] and reported as a miss — the compiler falls through to
//!    a fresh search (and every *hit* is still re-certified by the
//!    verify+prove gate upstream, so even a validation escape cannot ship
//!    an uncertified program).
//! 2. **Never tear an entry.** Writes go to a unique temp file in the same
//!    directory, are flushed, then atomically renamed into place. A crash
//!    mid-write leaves a stray `.tmp-*` file (ignored and swept on open),
//!    never a half-written entry under a live name.
//! 3. **Never fail a compile.** The [`PlanCache`] interface the compiler
//!    consumes is infallible: backend errors cost a cache miss (and a
//!    counter tick), not a failed request.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use t10_core::cache::{fnv64, fnv64_seeded, PlanCache};
use t10_metrics::{names, Registry};
use t10_trace::{Trace, Value, PID_STORE};

pub mod envelope;
mod error;

pub use error::StoreError;

/// Second filename-hash lane: the same FNV-1a stream under a scrambled
/// offset basis, giving 128 filename bits total.
const FILENAME_SEED2: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15;

/// Snapshot of the store's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups answered with a validated entry.
    pub hits: usize,
    /// Lookups with no entry on disk.
    pub misses: usize,
    /// Entries sidelined after failing validation.
    pub quarantined: usize,
    /// Entries successfully written.
    pub recorded: usize,
    /// Writes that failed (I/O errors); each costs a future miss only.
    pub write_failures: usize,
}

/// The crash-safe on-disk plan cache.
///
/// Entries live as `<fnv128-of-key>.plan` files under the root; corrupt
/// entries are moved to `<root>/quarantine/` (never deleted — they are the
/// evidence an operator inspects after an incident). The store is safe for
/// concurrent use by threads *and* processes sharing one directory: writes
/// are atomic renames and readers only ever observe complete entries.
pub struct DiskPlanCache {
    root: PathBuf,
    quarantine: PathBuf,
    sync_writes: bool,
    trace: Trace,
    metrics: Registry,
    nonce: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    quarantined: AtomicUsize,
    recorded: AtomicUsize,
    write_failures: AtomicUsize,
}

impl DiskPlanCache {
    /// Opens (creating if needed) a store rooted at `root`, and sweeps any
    /// stray temp files a crashed writer left behind.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let quarantine = root.join("quarantine");
        for dir in [&root, &quarantine] {
            fs::create_dir_all(dir).map_err(|e| StoreError::Io {
                path: dir.clone(),
                detail: e.to_string(),
            })?;
        }
        let store = Self {
            root,
            quarantine,
            sync_writes: true,
            trace: Trace::default(),
            metrics: Registry::disabled(),
            nonce: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            recorded: AtomicUsize::new(0),
            write_failures: AtomicUsize::new(0),
        };
        store.sweep_temp_files();
        Ok(store)
    }

    /// Attaches a trace sink; quarantine events land on the store track.
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a metric registry: lookups (`result=hit|miss`), records,
    /// write failures, and quarantines (`class=<error label>`) land on the
    /// `t10_store_*` series. Counter-only, so snapshots stay deterministic
    /// under any registry clock.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Registry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Disables the per-write `fsync` (for tests and benchmarks; the rename
    /// is still atomic, but a machine crash may lose the newest entries).
    #[must_use]
    pub fn without_sync(mut self) -> Self {
        self.sync_writes = false;
        self
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory.
    #[must_use]
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine
    }

    /// The entry file a key addresses.
    #[must_use]
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let b = key.as_bytes();
        self.root.join(format!(
            "{:016x}{:016x}.plan",
            fnv64(b),
            fnv64_seeded(FILENAME_SEED2, b)
        ))
    }

    /// Strict lookup: `Ok(Some(payload))` for a validated entry, `Ok(None)`
    /// for a miss, and a typed error after quarantining anything invalid.
    /// Most callers want the infallible [`PlanCache::lookup`] instead; this
    /// is the API the property tests, chaos campaign, and CI assert on.
    pub fn load(&self, key: &str) -> Result<Option<String>, StoreError> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StoreError::Io {
                    path,
                    detail: e.to_string(),
                })
            }
        };
        let parsed = envelope::decode(&bytes).map_err(|fault| match fault {
            envelope::EnvelopeFault::Version { found } => StoreError::VersionMismatch {
                path: path.clone(),
                found,
            },
            envelope::EnvelopeFault::Truncated { expected, actual } => StoreError::Truncated {
                path: path.clone(),
                expected,
                actual,
            },
            envelope::EnvelopeFault::Checksum { expected, actual } => {
                StoreError::ChecksumMismatch {
                    path: path.clone(),
                    expected,
                    actual,
                }
            }
            envelope::EnvelopeFault::Malformed { detail } => StoreError::Malformed {
                path: path.clone(),
                detail,
            },
        });
        match parsed {
            Ok((stored_key, payload)) => {
                if stored_key != key {
                    let err = StoreError::KeyMismatch {
                        path: path.clone(),
                        expected: key.to_string(),
                        found: stored_key,
                    };
                    self.quarantine_entry(&path, &err);
                    return Err(err);
                }
                Ok(Some(payload))
            }
            Err(err) => {
                self.quarantine_entry(&path, &err);
                Err(err)
            }
        }
    }

    /// Atomically writes `payload` under `key`: unique temp file, flush
    /// (+`fsync` unless disabled), rename into place. An interrupted write
    /// can only ever leave a stray temp file, never a torn entry.
    pub fn store(&self, key: &str, payload: &str) -> Result<(), StoreError> {
        if key.contains('\n') {
            return Err(StoreError::Malformed {
                path: self.root.clone(),
                detail: "cache key contains a newline".to_string(),
            });
        }
        let final_path = self.entry_path(key);
        let tmp_path = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed)
        ));
        let io_err = |path: &Path, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut f = fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        let write_result = f
            .write_all(envelope::encode(key, payload).as_bytes())
            .and_then(|()| {
                if self.sync_writes {
                    f.sync_all()
                } else {
                    Ok(())
                }
            });
        drop(f);
        if let Err(e) = write_result {
            let _ = fs::remove_file(&tmp_path);
            return Err(io_err(&tmp_path, e));
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| {
            let _ = fs::remove_file(&tmp_path);
            io_err(&final_path, e)
        })
    }

    /// Current counter values.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries on disk.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        count_files(&self.root, "plan")
    }

    /// Quarantined files, sorted by name (the CI robustness job uploads
    /// this listing as its incident report).
    #[must_use]
    pub fn quarantined_files(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = fs::read_dir(&self.quarantine)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        out.sort();
        out
    }

    /// Moves a failed entry into quarantine, tagging the file name with the
    /// error label so reports are self-describing. Removal never fails the
    /// caller: if the rename itself errors the entry is deleted instead —
    /// evidence is nice to keep, serving a known-bad entry is not an option.
    fn quarantine_entry(&self, path: &Path, err: &StoreError) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = self.quarantine.join(format!("{name}.{}", err.label()));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .counter(names::STORE_QUARANTINED_TOTAL, &[("class", err.label())])
            .inc();
        if self.trace.enabled() {
            self.trace.instant(
                "quarantine".to_string(),
                "store",
                PID_STORE,
                0,
                self.trace.now_us(),
                vec![
                    ("entry", Value::Str(name)),
                    ("reason", Value::Str(err.label().to_string())),
                ],
            );
        }
    }

    /// Deletes stray `.tmp-*` files — the only residue a crashed writer can
    /// leave. Entries under live names are never touched.
    fn sweep_temp_files(&self) {
        for entry in fs::read_dir(&self.root).into_iter().flatten().flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

impl PlanCache for DiskPlanCache {
    fn lookup(&self, key: &str) -> Option<String> {
        match self.load(key) {
            Ok(Some(payload)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .counter(names::STORE_LOOKUPS_TOTAL, &[("result", "hit")])
                    .inc();
                Some(payload)
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .counter(names::STORE_LOOKUPS_TOTAL, &[("result", "miss")])
                    .inc();
                None
            }
            // Validation failures were quarantined (and counted) in load();
            // they degrade to a miss so the compiler re-searches.
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .counter(names::STORE_LOOKUPS_TOTAL, &[("result", "miss")])
                    .inc();
                None
            }
        }
    }

    fn record(&self, key: &str, payload: &str) {
        match self.store(key, payload) {
            Ok(()) => {
                self.recorded.fetch_add(1, Ordering::Relaxed);
                self.metrics.counter(names::STORE_RECORDED_TOTAL, &[]).inc();
            }
            Err(_) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .counter(names::STORE_WRITE_FAILURES_TOTAL, &[])
                    .inc();
            }
        }
    }
}

fn count_files(dir: &Path, ext: &str) -> usize {
    fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == ext))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fresh_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "t10-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    const KEY: &str = "v1|op=0011223344556677|chip=8899aabbccddeeff|fault=0f0f|search=f0f0";

    #[test]
    fn round_trip_is_bit_identical() {
        let store = DiskPlanCache::open(fresh_dir("roundtrip")).unwrap();
        let payload =
            "t10-frontier v1\nstats complete=1e3 filtered=9\nplans=1\nf_op=4,4 temporal=.:1;0:2\n";
        store.store(KEY, payload).unwrap();
        assert_eq!(store.load(KEY).unwrap().as_deref(), Some(payload));
        assert_eq!(store.entry_count(), 1);

        // Overwrite is atomic and replaces the payload.
        store.store(KEY, "t10-frontier v1\nplans=0\n").unwrap();
        assert_eq!(
            store.load(KEY).unwrap().as_deref(),
            Some("t10-frontier v1\nplans=0\n")
        );
        assert_eq!(store.entry_count(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_entry_is_a_clean_miss() {
        let store = DiskPlanCache::open(fresh_dir("miss")).unwrap();
        assert_eq!(store.load(KEY).unwrap(), None);
        assert_eq!(store.lookup(KEY), None);
        assert_eq!(store.counters().misses, 1);
        assert_eq!(store.counters().quarantined, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn infallible_interface_counts_hits_and_records() {
        let store = DiskPlanCache::open(fresh_dir("iface")).unwrap();
        store.record(KEY, "payload-a");
        assert_eq!(store.lookup(KEY).as_deref(), Some("payload-a"));
        let c = store.counters();
        assert_eq!((c.recorded, c.hits, c.write_failures), (1, 1, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn key_mismatch_is_detected_and_quarantined() {
        let store = DiskPlanCache::open(fresh_dir("keymismatch")).unwrap();
        store.store(KEY, "payload").unwrap();
        // Move the entry to a different key's address — as if an operator
        // shuffled cache files around.
        let other = "v1|op=ffff|chip=eeee|fault=dddd|search=cccc";
        fs::rename(store.entry_path(KEY), store.entry_path(other)).unwrap();
        let err = store.load(other).unwrap_err();
        assert!(matches!(err, StoreError::KeyMismatch { .. }), "{err}");
        // The bad entry is gone from the live set and sits in quarantine.
        assert_eq!(store.load(other).unwrap(), None);
        let q = store.quarantined_files();
        assert_eq!(q.len(), 1);
        assert!(q[0].to_string_lossy().ends_with(".key-mismatch"), "{q:?}");
        assert_eq!(store.counters().quarantined, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stray_temp_files_are_swept_on_open() {
        let root = fresh_dir("sweep");
        {
            let store = DiskPlanCache::open(&root).unwrap();
            store.store(KEY, "payload").unwrap();
        }
        // A writer died mid-write: a partial temp file remains.
        fs::write(root.join(".tmp-999-0"), b"t10-store v1\nkey=par").unwrap();
        let store = DiskPlanCache::open(&root).unwrap();
        assert!(!root.join(".tmp-999-0").exists());
        // The live entry survived the sweep.
        assert_eq!(store.load(KEY).unwrap().as_deref(), Some("payload"));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn newline_keys_are_rejected() {
        let store = DiskPlanCache::open(fresh_dir("nlkey")).unwrap();
        let err = store.store("bad\nkey", "p").unwrap_err();
        assert_eq!(err.label(), "malformed");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn quarantine_emits_trace_instants() {
        let trace = Trace::logical();
        let store = DiskPlanCache::open(fresh_dir("trace"))
            .unwrap()
            .with_trace(trace.clone());
        store.store(KEY, "payload").unwrap();
        // Truncate the entry behind the store's back.
        let path = store.entry_path(KEY);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(store.load(KEY).is_err());
        let events = trace.snapshot();
        let q = events.iter().find(|e| e.name == "quarantine").unwrap();
        assert_eq!(q.pid, PID_STORE);
        assert!(q
            .args
            .iter()
            .any(|(k, v)| *k == "reason" && *v == Value::Str("truncated".to_string())));
        let _ = fs::remove_dir_all(store.root());
    }
}
