//! BSP race- and deadlock-freedom (§2.1, §4.4): well-formed references,
//! single-writer exchanges, and the double-buffering discipline.

use std::collections::{BTreeMap, BTreeSet};

use t10_device::program::Program;

use crate::diag::{Diagnostic, Report, RuleId};

pub(crate) fn check(program: &Program, report: &mut Report) {
    let num_bufs = program.buffers.len();
    let num_ops = program.ops.len();
    for (step, ss) in program.steps.iter().enumerate() {
        // BSP02: dangling references.
        for vtx in &ss.compute {
            if let Some(func) = &vtx.func {
                if func.op >= num_ops {
                    report.push(
                        Diagnostic::error(
                            RuleId::DanglingReference,
                            format!(
                                "superstep {step} vertex references operator {} of {num_ops}",
                                func.op
                            ),
                        )
                        .at_step(step)
                        .at_core(vtx.core)
                        .hint("register the operator with Program::add_op before lowering tasks"),
                    );
                }
                for &b in func.inputs.iter().chain(std::iter::once(&func.output)) {
                    if b >= num_bufs {
                        report.push(
                            Diagnostic::error(
                                RuleId::DanglingReference,
                                format!(
                                    "superstep {step} vertex references buffer {b} of {num_bufs}"
                                ),
                            )
                            .at_step(step)
                            .at_core(vtx.core)
                            .at_buffer(b)
                            .hint("declare the buffer before referencing it"),
                        );
                    }
                }
            }
        }
        for op in &ss.exchange {
            for (what, b) in [("source", op.src), ("destination", op.dst)] {
                if b >= num_bufs {
                    report.push(
                        Diagnostic::error(
                            RuleId::DanglingReference,
                            format!(
                                "superstep {step} shift {what} references buffer {b} of {num_bufs}"
                            ),
                        )
                        .at_step(step)
                        .at_buffer(b)
                        .hint("declare the buffer before shifting into it"),
                    );
                }
            }
        }

        // BSP01: a buffer must receive at most one shift per exchange phase
        // (duplicates counted with multiplicity — an exact duplicate op is
        // still two racing writers).
        let mut dst_count: BTreeMap<usize, usize> = BTreeMap::new();
        for op in &ss.exchange {
            if op.dst < num_bufs {
                *dst_count.entry(op.dst).or_insert(0) += 1;
            }
        }
        for (buf, count) in dst_count {
            if count > 1 {
                let core = program.buffers.get(buf).map(|b| b.core);
                let mut d = Diagnostic::error(
                    RuleId::DuplicateWriter,
                    format!("superstep {step} shifts into buffer {buf} {count} times"),
                )
                .at_step(step)
                .at_buffer(buf)
                .hint("one receive per buffer per exchange phase; merge or re-step the shifts");
                if let Some(c) = core {
                    d = d.at_core(c);
                }
                report.push(d);
            }
        }

        // BSP03: buffers written by this step's compute phase must not also
        // be shift endpoints in the same superstep. Compute outputs
        // accumulate in place; a same-step exchange would race with the
        // accumulation (input rotations are fine — the exchange phase runs
        // after compute reads them, which is the compute-shift overlap
        // itself).
        let written: BTreeSet<usize> = ss
            .compute
            .iter()
            .filter_map(|v| v.func.as_ref().map(|f| f.output))
            .collect();
        for op in &ss.exchange {
            for (what, b) in [("source", op.src), ("destination", op.dst)] {
                if written.contains(&b) {
                    report.push(
                        Diagnostic::error(
                            RuleId::ComputeShiftOverlap,
                            format!(
                                "superstep {step} computes into buffer {b} and uses it as a \
                                 shift {what} in the same step"
                            ),
                        )
                        .at_step(step)
                        .at_buffer(b)
                        .hint(
                            "move the exchange to its own superstep (reductions run on \
                             compute-free steps)",
                        ),
                    );
                }
            }
        }
    }
}
