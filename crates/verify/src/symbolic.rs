//! Shape-parametric symbolic certification: the abstract domain.
//!
//! The concrete rule inventory proves one compiled artifact at one concrete
//! shape. This module supplies the domain for proving a *family* of shapes
//! at once (paper §6.3 — the compile-time lever): named symbolic dimensions
//! with interval bounds (`batch ∈ [1, 64]`), checked interval arithmetic,
//! monotone symbolic expressions over the dimension extents (SRAM
//! high-water, ring pace), and the versioned parametric certificate
//! (`t10.cert.symbolic.v1`) that records a validity region plus the rules
//! that remain *residual* (re-checked per instantiation).
//!
//! The layering mirrors the rest of the verifier: this module is pure — it
//! knows intervals, expressions, regions, and certificates, but no plans or
//! operators. `t10_core::symbolic` derives the expressions from a concrete
//! `Operator` + `PlanConfig` and owns region derivation and instantiation;
//! `t10_prove::family` classifies the semantic rules. Everything here
//! reports through the same [`Diagnostic`] vocabulary under the SYM rules.
//!
//! Soundness shape: every expression constructor is monotone non-decreasing
//! in every dimension extent ([`SymExpr`] has no subtraction of a
//! dimension), so the interval value of an expression over a region is
//! obtained by evaluating at the region's corner points — and a capacity
//! bound proven at the upper corner holds for every shape in the region.
//! Rules whose invariant has that form are *closed* under the interval;
//! divisibility and schedule equalities are not, and stay residual.

use crate::diag::{Diagnostic, Report, RuleId};

/// Typed failure of symbolic extent arithmetic. Every failure maps to one
/// SYM01 diagnostic; none abort the process (satellite: overflow edges are
/// checked, not wrapped or panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymError {
    /// A checked `u64` operation overflowed.
    Overflow {
        /// Which operation (`"add"`, `"mul"`, …).
        op: &'static str,
        /// Left operand.
        lhs: u64,
        /// Right operand.
        rhs: u64,
    },
    /// Division (ceil) by zero.
    DivisionByZero {
        /// The dividend.
        lhs: u64,
    },
}

impl SymError {
    /// The SYM01 diagnostic for this failure.
    pub fn diagnostic(&self) -> Diagnostic {
        let msg = match self {
            SymError::Overflow { op, lhs, rhs } => {
                format!("symbolic {op}({lhs}, {rhs}) overflows u64")
            }
            SymError::DivisionByZero { lhs } => {
                format!("symbolic div_ceil({lhs}, 0) is undefined")
            }
        };
        Diagnostic::error(RuleId::SymOverflow, msg)
            .hint("shrink the symbolic region or the axis extents feeding it")
    }
}

impl std::fmt::Display for SymError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymError::Overflow { op, lhs, rhs } => {
                write!(f, "symbolic {op}({lhs}, {rhs}) overflows u64")
            }
            SymError::DivisionByZero { lhs } => {
                write!(f, "symbolic div_ceil({lhs}, 0) is undefined")
            }
        }
    }
}

impl std::error::Error for SymError {}

/// Checked addition.
pub fn checked_add(a: u64, b: u64) -> Result<u64, SymError> {
    a.checked_add(b).ok_or(SymError::Overflow {
        op: "add",
        lhs: a,
        rhs: b,
    })
}

/// Checked multiplication.
pub fn checked_mul(a: u64, b: u64) -> Result<u64, SymError> {
    a.checked_mul(b).ok_or(SymError::Overflow {
        op: "mul",
        lhs: a,
        rhs: b,
    })
}

/// Checked ceiling division (`ceil(a / b)`); `b = 0` is a typed error, not
/// a panic.
pub fn checked_div_ceil(a: u64, b: u64) -> Result<u64, SymError> {
    if b == 0 {
        return Err(SymError::DivisionByZero { lhs: a });
    }
    Ok(a.div_ceil(b))
}

/// A closed interval `[lo, hi]` of `u64` extents. All arithmetic is
/// checked: any overflow surfaces as a [`SymError`] (→ SYM01), never a wrap
/// or a panic, including at the `u64::MAX` boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// The interval `[lo, hi]`; inverted bounds are rejected by
    /// [`Region::validate`], not silently swapped.
    pub fn new(lo: u64, hi: u64) -> Self {
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: u64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the interval is well-formed (`lo <= hi`).
    pub fn is_well_formed(&self) -> bool {
        self.lo <= self.hi
    }

    /// Interval sum (exact for monotone operands).
    pub fn add(&self, other: &Interval) -> Result<Interval, SymError> {
        Ok(Interval {
            lo: checked_add(self.lo, other.lo)?,
            hi: checked_add(self.hi, other.hi)?,
        })
    }

    /// Interval product (operands are extents, always non-negative).
    pub fn mul(&self, other: &Interval) -> Result<Interval, SymError> {
        Ok(Interval {
            lo: checked_mul(self.lo, other.lo)?,
            hi: checked_mul(self.hi, other.hi)?,
        })
    }

    /// Interval ceiling division by a positive constant.
    pub fn div_ceil(&self, k: u64) -> Result<Interval, SymError> {
        Ok(Interval {
            lo: checked_div_ceil(self.lo, k)?,
            hi: checked_div_ceil(self.hi, k)?,
        })
    }

    /// Saturating decrement of both bounds (used for `stride * (tile - 1)`
    /// halo terms; tiles are ≥ 1 so saturation only fires on malformed
    /// input, which stays sound: it can only shrink the claimed extent's
    /// lower bound, never the upper).
    pub fn saturating_sub(&self, k: u64) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(k),
            hi: self.hi.saturating_sub(k),
        }
    }
}

/// A named symbolic dimension with its interval of extents, e.g.
/// `batch ∈ [1, 64]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDim {
    /// Axis name the dimension binds (`"b"`, `"seq"`, …).
    pub name: String,
    /// Extent bounds.
    pub bounds: Interval,
}

impl SymDim {
    /// A symbolic dimension `name ∈ [lo, hi]`.
    pub fn new(name: impl Into<String>, lo: u64, hi: u64) -> Self {
        Self {
            name: name.into(),
            bounds: Interval::new(lo, hi),
        }
    }

    /// `name ∈ [lo, hi]` — the rendering used in diagnostics and docs.
    pub fn render(&self) -> String {
        format!("{} ∈ [{}, {}]", self.name, self.bounds.lo, self.bounds.hi)
    }
}

/// The validity region of a family certificate: one interval per symbolic
/// dimension, in axis order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    /// The symbolic dimensions.
    pub dims: Vec<SymDim>,
}

impl Region {
    /// A region over the given dimensions.
    pub fn new(dims: Vec<SymDim>) -> Self {
        Self { dims }
    }

    /// `batch ∈ [1, 64], seq ∈ [32, 512]` — used in SYM02/SYM05 messages so
    /// JSON diagnostics carry the violated region.
    pub fn render(&self) -> String {
        self.dims
            .iter()
            .map(SymDim::render)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Structural well-formedness: non-empty, no inverted intervals, no
    /// zero-extent lower bounds (axes have size ≥ 1), no duplicate names.
    /// Violations are SYM03 diagnostics.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.dims.is_empty() {
            out.push(Diagnostic::error(
                RuleId::SymRegionMalformed,
                "validity region has no symbolic dimensions",
            ));
            return out;
        }
        let mut names: Vec<&str> = Vec::new();
        for d in &self.dims {
            if !d.bounds.is_well_formed() {
                out.push(Diagnostic::error(
                    RuleId::SymRegionMalformed,
                    format!("inverted interval {}", d.render()),
                ));
            }
            if d.bounds.lo == 0 {
                out.push(Diagnostic::error(
                    RuleId::SymRegionMalformed,
                    format!("zero-extent lower bound in {}", d.render()),
                ));
            }
            if names.contains(&d.name.as_str()) {
                out.push(Diagnostic::error(
                    RuleId::SymRegionMalformed,
                    format!("duplicate symbolic dimension '{}'", d.name),
                ));
            }
            names.push(&d.name);
        }
        out
    }

    /// Whether a concrete per-dimension extent assignment lies inside the
    /// region. `None` when the arity disagrees (a SYM03-class mismatch the
    /// caller reports).
    pub fn covers(&self, extents: &[u64]) -> Option<bool> {
        if extents.len() != self.dims.len() {
            return None;
        }
        Some(
            self.dims
                .iter()
                .zip(extents)
                .all(|(d, &e)| d.bounds.contains(e)),
        )
    }

    /// The lower-corner assignment (every dimension at `lo`).
    pub fn lo_corner(&self) -> Vec<u64> {
        self.dims.iter().map(|d| d.bounds.lo).collect()
    }

    /// The upper-corner assignment (every dimension at `hi`).
    pub fn hi_corner(&self) -> Vec<u64> {
        self.dims.iter().map(|d| d.bounds.hi).collect()
    }
}

/// A symbolic extent expression over the region's dimensions.
///
/// The constructor set is deliberately closed under monotonicity: constants,
/// dimension references, sums, products, ceiling division by a positive
/// constant, and saturating decrement by a constant are all monotone
/// non-decreasing in every dimension. That is the closure theorem the
/// family proof leans on: `eval` at the region's upper corner bounds the
/// expression over the whole region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExpr {
    /// A constant extent.
    Const(u64),
    /// The extent of symbolic dimension `i` (index into [`Region::dims`]).
    Dim(usize),
    /// Sum of sub-expressions.
    Sum(Vec<SymExpr>),
    /// Product of sub-expressions.
    Prod(Vec<SymExpr>),
    /// `ceil(e / k)` for a constant `k > 0` (tiling: `ceil(L / F_op)`).
    DivCeil(Box<SymExpr>, u64),
    /// `max(e - k, 0)` for a constant `k` (halo terms: `stride * (tile-1)`).
    SatSub(Box<SymExpr>, u64),
}

impl SymExpr {
    /// Evaluates at a concrete dimension assignment with checked
    /// arithmetic. A missing dimension index is an overflow-class error
    /// (the expression does not belong to this region).
    pub fn eval(&self, assign: &[u64]) -> Result<u64, SymError> {
        match self {
            SymExpr::Const(v) => Ok(*v),
            SymExpr::Dim(i) => assign.get(*i).copied().ok_or(SymError::Overflow {
                op: "dim",
                lhs: *i as u64,
                rhs: assign.len() as u64,
            }),
            SymExpr::Sum(terms) => {
                let mut acc = 0u64;
                for t in terms {
                    acc = checked_add(acc, t.eval(assign)?)?;
                }
                Ok(acc)
            }
            SymExpr::Prod(factors) => {
                let mut acc = 1u64;
                for t in factors {
                    acc = checked_mul(acc, t.eval(assign)?)?;
                }
                Ok(acc)
            }
            SymExpr::DivCeil(e, k) => checked_div_ceil(e.eval(assign)?, *k),
            SymExpr::SatSub(e, k) => Ok(e.eval(assign)?.saturating_sub(*k)),
        }
    }

    /// Interval value over a region: by monotonicity this is exactly
    /// `[eval(lo corner), eval(hi corner)]`.
    pub fn eval_interval(&self, region: &Region) -> Result<Interval, SymError> {
        Ok(Interval {
            lo: self.eval(&region.lo_corner())?,
            hi: self.eval(&region.hi_corner())?,
        })
    }

    /// Compact deterministic rendering (`(8 * ceil(batch/4))`), recorded in
    /// certificates so the symbolic high-water and pace are auditable.
    pub fn render(&self, region: &Region) -> String {
        match self {
            SymExpr::Const(v) => v.to_string(),
            SymExpr::Dim(i) => region
                .dims
                .get(*i)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("dim{i}")),
            SymExpr::Sum(terms) => {
                let parts: Vec<String> = terms.iter().map(|t| t.render(region)).collect();
                format!("({})", parts.join(" + "))
            }
            SymExpr::Prod(factors) => {
                let parts: Vec<String> = factors.iter().map(|t| t.render(region)).collect();
                format!("({})", parts.join(" * "))
            }
            SymExpr::DivCeil(e, k) => format!("ceil({}/{k})", e.render(region)),
            SymExpr::SatSub(e, k) => format!("({} - {k})", e.render(region)),
        }
    }
}

/// Structural rules *closed* under the interval domain: their invariant is
/// a `≤` bound on a monotone function of the extents (capacity class), so
/// one proof at the region's upper corner covers every shape in the region.
pub fn closed_structural() -> Vec<RuleId> {
    vec![
        RuleId::CoreOutOfRange,
        RuleId::SramOverflow,
        RuleId::PlanMemOverflow,
    ]
}

/// Structural rules that stay *residual*: divisibility (`rp | extent`,
/// `factor | sharing`), schedule equalities, and conservation checks are
/// not interval-closed — holding at both corners says nothing about the
/// interior — so they re-run at every instantiation.
pub fn residual_structural() -> Vec<RuleId> {
    let closed = closed_structural();
    RuleId::STRUCTURAL
        .iter()
        .copied()
        .filter(|r| !closed.contains(r))
        .collect()
}

/// Codec version tag for parametric certificates; bump on format change so
/// stale family entries decode to `None` (a miss), never misparse.
pub const CERT_VERSION: &str = "t10.cert.symbolic.v1";

/// A shape-parametric family certificate.
///
/// Records what was proven once for the whole family (the closed rules,
/// over `region`) and what every instantiation must still re-check (the
/// residual rules). `peak_hi` is the symbolic SRAM high-water evaluated at
/// the region's upper corner for the family's most memory-frugal
/// configuration; validation re-derives it and refuses certificates whose
/// region outgrew what the closed rules prove (SYM02).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicCert {
    /// FNV-1a digest (hex) of the shape-erased operator signature.
    pub family: String,
    /// The validity region.
    pub region: Region,
    /// Per-core capacity (bytes) the family was proven against.
    pub capacity: u64,
    /// Symbolic SRAM high-water at the region's upper corner (bytes), for
    /// the most frugal surviving configuration.
    pub peak_hi: u64,
    /// Rendered symbolic SRAM high-water expression (auditing).
    pub peak_expr: String,
    /// Rendered symbolic ring-pace expression (auditing; `"-"` for plans
    /// with no rotation).
    pub pace_expr: String,
    /// Rules proven for the whole region.
    pub closed: Vec<RuleId>,
    /// Rules re-checked per instantiation.
    pub residual: Vec<RuleId>,
}

/// Looks up a rule by its stable string id.
fn rule_by_code(code: &str) -> Option<RuleId> {
    RuleId::ALL.iter().copied().find(|r| r.id() == code)
}

fn render_rules(rules: &[RuleId]) -> String {
    rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(",")
}

fn parse_rules(s: &str) -> Option<Vec<RuleId>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(rule_by_code).collect()
}

impl SymbolicCert {
    /// Serializes the certificate:
    ///
    /// ```text
    /// t10.cert.symbolic.v1
    /// family=00a1b2c3d4e5f607
    /// capacity=607232
    /// peak_hi=524288
    /// peak=(2 * ceil(batch/4) * 128)
    /// pace=ceil(seq/8)
    /// dims=2
    /// dim name=batch lo=1 hi=64
    /// dim name=seq lo=32 hi=512
    /// closed=CAP01,CAP02,CAP03
    /// residual=RING01,RING03,...
    /// ```
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(CERT_VERSION);
        out.push('\n');
        out.push_str(&format!("family={}\n", self.family));
        out.push_str(&format!("capacity={}\n", self.capacity));
        out.push_str(&format!("peak_hi={}\n", self.peak_hi));
        out.push_str(&format!("peak={}\n", self.peak_expr));
        out.push_str(&format!("pace={}\n", self.pace_expr));
        out.push_str(&format!("dims={}\n", self.region.dims.len()));
        for d in &self.region.dims {
            out.push_str(&format!(
                "dim name={} lo={} hi={}\n",
                d.name, d.bounds.lo, d.bounds.hi
            ));
        }
        out.push_str(&format!("closed={}\n", render_rules(&self.closed)));
        out.push_str(&format!("residual={}\n", render_rules(&self.residual)));
        out
    }

    /// Parses an [`SymbolicCert::encode`] payload. `None` on any
    /// malformation — callers treat that as a stale family entry (a miss)
    /// or a SYM03 refutation, depending on context.
    pub fn decode(payload: &str) -> Option<Self> {
        let mut lines = payload.lines();
        if lines.next()? != CERT_VERSION {
            return None;
        }
        let family = lines.next()?.strip_prefix("family=")?.to_string();
        let capacity: u64 = lines.next()?.strip_prefix("capacity=")?.parse().ok()?;
        let peak_hi: u64 = lines.next()?.strip_prefix("peak_hi=")?.parse().ok()?;
        let peak_expr = lines.next()?.strip_prefix("peak=")?.to_string();
        let pace_expr = lines.next()?.strip_prefix("pace=")?.to_string();
        let ndims: usize = lines.next()?.strip_prefix("dims=")?.parse().ok()?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let rest = lines.next()?.strip_prefix("dim name=")?;
            let (name, rest) = rest.split_once(" lo=")?;
            let (lo, hi) = rest.split_once(" hi=")?;
            dims.push(SymDim::new(name, lo.parse().ok()?, hi.parse().ok()?));
        }
        let closed = parse_rules(lines.next()?.strip_prefix("closed=")?)?;
        let residual = parse_rules(lines.next()?.strip_prefix("residual=")?)?;
        Some(Self {
            family,
            region: Region::new(dims),
            capacity,
            peak_hi,
            peak_expr,
            pace_expr,
            closed,
            residual,
        })
    }

    /// Certificate-local validation (no operator needed): region
    /// well-formedness (SYM03), the recorded upper-corner high-water
    /// against the recorded capacity (SYM02), and closed/residual
    /// disjointness (SYM03). Operator-dependent checks — family digest
    /// (SYM06), residual completeness (SYM04), re-derived high-water —
    /// live in `t10_core::symbolic` where the operator is in scope.
    pub fn validate_shape(&self) -> Report {
        let mut report = Report::new();
        report.stats.rules_checked = RuleId::SYMBOLIC.len();
        for d in self.region.validate() {
            report.push(d);
        }
        if self.peak_hi > self.capacity {
            report.push(
                Diagnostic::error(
                    RuleId::SymRegionUnprovable,
                    format!(
                        "symbolic SRAM high-water {} B at the upper corner of {} exceeds \
                         per-core capacity {} B",
                        self.peak_hi,
                        self.region.render(),
                        self.capacity
                    ),
                )
                .hint("shrink the validity region until the family fits"),
            );
        }
        for r in &self.closed {
            if self.residual.contains(r) {
                report.push(Diagnostic::error(
                    RuleId::SymRegionMalformed,
                    format!("rule {} is both closed and residual", r.id()),
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_ops_at_the_boundaries() {
        // Satellite requirement: 0, 1, and u64::MAX edges are typed
        // errors, not wraps or panics.
        let bounds = [0u64, 1, 2, u64::MAX - 1, u64::MAX];
        for &a in &bounds {
            for &b in &bounds {
                match checked_add(a, b) {
                    Ok(v) => assert_eq!(v, a.wrapping_add(b)),
                    Err(SymError::Overflow { op, lhs, rhs }) => {
                        assert_eq!(op, "add");
                        assert_eq!((lhs, rhs), (a, b));
                        assert!(a.checked_add(b).is_none());
                    }
                    Err(e) => panic!("unexpected {e:?}"),
                }
                match checked_mul(a, b) {
                    Ok(v) => assert_eq!(Some(v), a.checked_mul(b)),
                    Err(_) => assert!(a.checked_mul(b).is_none()),
                }
                match checked_div_ceil(a, b) {
                    Ok(v) => {
                        assert_ne!(b, 0);
                        assert_eq!(v, a.div_ceil(b));
                    }
                    Err(SymError::DivisionByZero { lhs }) => {
                        assert_eq!(b, 0);
                        assert_eq!(lhs, a);
                    }
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
        assert!(checked_add(u64::MAX, 1).is_err());
        assert!(checked_mul(u64::MAX, 2).is_err());
        assert_eq!(checked_add(u64::MAX, 0), Ok(u64::MAX));
        assert_eq!(checked_mul(u64::MAX, 1), Ok(u64::MAX));
        assert_eq!(checked_div_ceil(0, 1), Ok(0));
        assert_eq!(checked_div_ceil(u64::MAX, 1), Ok(u64::MAX));
    }

    #[test]
    fn overflow_maps_to_sym01() {
        let err = checked_mul(u64::MAX, 3).unwrap_err();
        let d = err.diagnostic();
        assert_eq!(d.rule, RuleId::SymOverflow);
        assert!(d.message.contains("mul"));
    }

    #[test]
    fn interval_arithmetic_is_checked() {
        let a = Interval::new(1, 4);
        let b = Interval::new(2, 8);
        assert_eq!(a.add(&b).unwrap(), Interval::new(3, 12));
        assert_eq!(a.mul(&b).unwrap(), Interval::new(2, 32));
        assert_eq!(
            Interval::new(3, 9).div_ceil(4).unwrap(),
            Interval::new(1, 3)
        );
        assert_eq!(Interval::new(0, 5).saturating_sub(2), Interval::new(0, 3));
        assert!(Interval::new(1, u64::MAX).mul(&b).is_err());
        assert!(Interval::point(u64::MAX).add(&Interval::point(1)).is_err());
        assert!(Interval::new(1, 2).div_ceil(0).is_err());
    }

    #[test]
    fn expressions_are_monotone_over_the_region() {
        // peak = 4 * ceil(batch/2) * (seq - 1 + 3): check the interval
        // equals the corner evaluations and brackets interior points.
        let region = Region::new(vec![
            SymDim::new("batch", 1, 64),
            SymDim::new("seq", 32, 512),
        ]);
        let e = SymExpr::Prod(vec![
            SymExpr::Const(4),
            SymExpr::DivCeil(Box::new(SymExpr::Dim(0)), 2),
            SymExpr::Sum(vec![
                SymExpr::SatSub(Box::new(SymExpr::Dim(1)), 1),
                SymExpr::Const(3),
            ]),
        ]);
        let iv = e.eval_interval(&region).unwrap();
        assert_eq!(iv.lo, e.eval(&[1, 32]).unwrap());
        assert_eq!(iv.hi, e.eval(&[64, 512]).unwrap());
        for b in [1u64, 2, 17, 64] {
            for s in [32u64, 33, 256, 512] {
                let v = e.eval(&[b, s]).unwrap();
                assert!(iv.contains(v), "{v} outside {iv:?} at batch={b} seq={s}");
            }
        }
        assert_eq!(e.render(&region), "(4 * ceil(batch/2) * ((seq - 1) + 3))");
    }

    #[test]
    fn region_validation_flags_malformations() {
        assert!(Region::default()
            .validate()
            .iter()
            .any(|d| d.rule == RuleId::SymRegionMalformed));
        let inverted = Region::new(vec![SymDim::new("b", 8, 2)]);
        assert!(inverted
            .validate()
            .iter()
            .any(|d| d.message.contains("inverted")));
        let zero = Region::new(vec![SymDim::new("b", 0, 2)]);
        assert!(zero
            .validate()
            .iter()
            .any(|d| d.message.contains("zero-extent")));
        let dup = Region::new(vec![SymDim::new("b", 1, 2), SymDim::new("b", 1, 4)]);
        assert!(dup
            .validate()
            .iter()
            .any(|d| d.message.contains("duplicate")));
        let ok = Region::new(vec![SymDim::new("b", 1, 64)]);
        assert!(ok.validate().is_empty());
        assert_eq!(ok.covers(&[64]), Some(true));
        assert_eq!(ok.covers(&[65]), Some(false));
        assert_eq!(ok.covers(&[1, 2]), None);
    }

    #[test]
    fn structural_closure_partitions_the_family() {
        let mut both = closed_structural();
        both.extend(residual_structural());
        both.sort();
        let mut all = RuleId::STRUCTURAL.to_vec();
        all.sort();
        assert_eq!(both, all);
        assert!(closed_structural().contains(&RuleId::PlanMemOverflow));
        assert!(residual_structural().contains(&RuleId::PaceDividesExtent));
        assert!(residual_structural().contains(&RuleId::FactorSharing));
    }

    fn cert() -> SymbolicCert {
        SymbolicCert {
            family: "00a1b2c3d4e5f607".to_string(),
            region: Region::new(vec![
                SymDim::new("batch", 1, 64),
                SymDim::new("seq", 32, 512),
            ]),
            capacity: 607_232,
            peak_hi: 524_288,
            peak_expr: "(4 * ceil(batch/2))".to_string(),
            pace_expr: "ceil(seq/8)".to_string(),
            closed: closed_structural(),
            residual: residual_structural(),
        }
    }

    #[test]
    fn cert_codec_round_trips() {
        let c = cert();
        let text = c.encode();
        assert!(text.starts_with(CERT_VERSION));
        let back = SymbolicCert::decode(&text).unwrap();
        assert_eq!(back, c);
        // Codec fixpoint.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn cert_codec_rejects_malformations() {
        assert_eq!(SymbolicCert::decode(""), None);
        let text = cert().encode();
        assert_eq!(
            SymbolicCert::decode(&text.replace(CERT_VERSION, "t10.cert.symbolic.v0")),
            None
        );
        assert_eq!(
            SymbolicCert::decode(&text.replace("capacity=", "cap=")),
            None
        );
        assert_eq!(
            SymbolicCert::decode(&text.replace("dims=2", "dims=3")),
            None
        );
        assert_eq!(
            SymbolicCert::decode(&text.replace("closed=CAP01", "closed=NOPE01")),
            None
        );
    }

    #[test]
    fn widened_region_refutes_sym02() {
        let mut c = cert();
        assert!(c.validate_shape().is_ok());
        // A corruption that widens the claimed region past the proof.
        c.peak_hi = c.capacity + 1;
        let report = c.validate_shape();
        assert_eq!(report.violated_rules(), vec!["SYM02"]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("batch ∈ [1, 64]")));
    }

    #[test]
    fn overlapping_closed_residual_is_sym03() {
        let mut c = cert();
        c.residual.push(RuleId::PlanMemOverflow); // also closed
        assert_eq!(c.validate_shape().violated_rules(), vec!["SYM03"]);
    }
}
