//! Capacity safety (§4.1): every core's declared buffers must fit its
//! usable SRAM under the given fault plan and reservation.
//!
//! The proof mirrors the simulator's accounting exactly: `Simulator::load`
//! allocates every declared buffer up front and never frees during a
//! program, so the per-core high-water equals the per-core sum of declared
//! bytes. A separate liveness pass (first use → last use per buffer)
//! computes the lower bound a freeing allocator could reach; the gap is
//! reported as reclaimable headroom in [`crate::Stats`], not as a
//! violation.

use t10_device::program::Program;

use crate::diag::{Diagnostic, Report, RuleId};
use crate::Verifier;

pub(crate) fn check(v: &Verifier, program: &Program, report: &mut Report) {
    let num_cores = v.spec().num_cores;
    let mut per_core = vec![0usize; num_cores];
    for (id, b) in program.buffers.iter().enumerate() {
        match per_core.get_mut(b.core) {
            Some(slot) => *slot = slot.saturating_add(b.bytes),
            None => report.push(
                Diagnostic::error(
                    RuleId::CoreOutOfRange,
                    format!(
                        "buffer {id} ({}) is placed on core {} but the chip has {num_cores} cores",
                        b.label, b.core
                    ),
                )
                .at_core(b.core)
                .at_buffer(id)
                .hint("re-lower against the surviving core count before loading"),
            ),
        }
    }
    for (step, ss) in program.steps.iter().enumerate() {
        for vtx in &ss.compute {
            if vtx.core >= num_cores {
                report.push(
                    Diagnostic::error(
                        RuleId::CoreOutOfRange,
                        format!(
                            "superstep {step} schedules a vertex on core {} of {num_cores}",
                            vtx.core
                        ),
                    )
                    .at_step(step)
                    .at_core(vtx.core)
                    .hint("re-lower against the surviving core count"),
                );
            }
        }
        if let Some(cs) = &ss.compute_summary {
            if cs.active_cores > num_cores {
                report.push(
                    Diagnostic::error(
                        RuleId::CoreOutOfRange,
                        format!(
                            "superstep {step} claims {} active compute cores of {num_cores}",
                            cs.active_cores
                        ),
                    )
                    .at_step(step)
                    .hint("the plan's F_op product exceeds the chip; re-search"),
                );
            }
        }
    }
    for (core, &bytes) in per_core.iter().enumerate() {
        let cap = v.capacity_of(core);
        if bytes > cap {
            report.push(
                Diagnostic::error(
                    RuleId::SramOverflow,
                    format!(
                        "core {core} declares {bytes} B of buffers but only {cap} B of \
                         scratchpad are usable"
                    ),
                )
                .at_core(core)
                .hint(
                    "raise a temporal factor to shrink the per-core partition, or drop the \
                     checkpoint reservation",
                ),
            );
        }
    }
    report.stats.peak_core_bytes = per_core.iter().copied().max().unwrap_or(0);
    report.stats.live_high_water = live_high_water(program, num_cores);
}

/// Liveness-based high-water: each buffer is live from its first to its
/// last referencing superstep (buffers never referenced stay live for the
/// whole program, matching allocate-at-load semantics). Returns the peak,
/// over supersteps, of the largest per-core live-byte sum.
fn live_high_water(program: &Program, num_cores: usize) -> usize {
    let steps = program.steps.len();
    if steps == 0 || program.buffers.is_empty() {
        return 0;
    }
    let whole = (0usize, steps.saturating_sub(1));
    let mut interval: Vec<Option<(usize, usize)>> = vec![None; program.buffers.len()];
    let mut touch = |buf: usize, step: usize| {
        if let Some(slot) = interval.get_mut(buf) {
            *slot = Some(match *slot {
                None => (step, step),
                Some((lo, hi)) => (lo.min(step), hi.max(step)),
            });
        }
    };
    for (step, ss) in program.steps.iter().enumerate() {
        for vtx in &ss.compute {
            if let Some(func) = &vtx.func {
                for &b in &func.inputs {
                    touch(b, step);
                }
                touch(func.output, step);
            }
        }
        for op in &ss.exchange {
            touch(op.src, step);
            touch(op.dst, step);
        }
    }
    // Per-core difference arrays over steps: O(buffers + cores·steps).
    let mut delta = vec![vec![0i64; steps + 1]; num_cores];
    for (id, b) in program.buffers.iter().enumerate() {
        let Some(core_delta) = delta.get_mut(b.core) else {
            continue; // out-of-range core: reported as CAP01 already
        };
        let (lo, hi) = interval.get(id).copied().flatten().unwrap_or(whole);
        if let Some(slot) = core_delta.get_mut(lo) {
            *slot += b.bytes as i64;
        }
        if let Some(slot) = core_delta.get_mut(hi + 1) {
            *slot -= b.bytes as i64;
        }
    }
    let mut peak = 0i64;
    for core_delta in &delta {
        let mut live = 0i64;
        for d in core_delta {
            live += d;
            peak = peak.max(live);
        }
    }
    peak.max(0) as usize
}
