//! Cost-model sanity (§4.3): every superstep must price to a finite,
//! nonnegative time, and exchange summaries must conserve bytes — both
//! internally (per-core maxima bounded by the total) and against the
//! explicit ring traffic when a step carries both representations.

use t10_device::program::{Program, ShiftKind, Superstep};
use t10_device::truth;

use crate::diag::{Diagnostic, Report, RuleId};
use crate::ring::elem_bytes;
use crate::Verifier;

pub(crate) fn check(v: &Verifier, program: &Program, report: &mut Report) {
    for (step, ss) in program.steps.iter().enumerate() {
        if let Some(cs) = &ss.compute_summary {
            let t = truth::vertex_time(v.spec(), &cs.desc);
            if !t.is_finite() || t < 0.0 {
                report.push(
                    Diagnostic::error(
                        RuleId::NonfiniteTime,
                        format!("superstep {step} compute prices to {t}"),
                    )
                    .at_step(step)
                    .hint("check the sub-task shape and the chip's compute throughput"),
                );
            }
        }
        if let Some(es) = &ss.exchange_summary {
            let t = truth::exchange_time(v.spec(), es);
            if !t.is_finite() || t < 0.0 {
                report.push(
                    Diagnostic::error(
                        RuleId::NonfiniteTime,
                        format!("superstep {step} exchange prices to {t}"),
                    )
                    .at_step(step)
                    .hint("check the summary volumes and the chip's link bandwidth"),
                );
            }
            check_summary(step, es, report);
        }
        if ss.exchange_summary.is_some() && !ss.exchange.is_empty() {
            cross_check(v, program, step, ss, report);
        }
    }
}

/// Internal conservation of one summary: maxima and cross-chip bytes are
/// bounded by the total, and bytes only move when cores participate. The
/// bounds must hold for every emitter (rotation, reduction tree, setup,
/// transition), so they are deliberately loose: e.g. a reduction step's
/// `active_cores` counts both senders and receivers.
fn check_summary(step: usize, es: &t10_device::program::ExchangeSummary, report: &mut Report) {
    let mut flag = |msg: String| {
        report.push(
            Diagnostic::error(RuleId::ByteConservation, format!("superstep {step} {msg}"))
                .at_step(step)
                .hint("the summary fields disagree with each other; recompute them"),
        );
    };
    if es.max_core_out > es.total_bytes {
        flag(format!(
            "max_core_out {} exceeds total_bytes {}",
            es.max_core_out, es.total_bytes
        ));
    }
    if es.max_core_in > es.total_bytes {
        flag(format!(
            "max_core_in {} exceeds total_bytes {}",
            es.max_core_in, es.total_bytes
        ));
    }
    if es.cross_chip_bytes > es.total_bytes {
        flag(format!(
            "cross_chip_bytes {} exceeds total_bytes {}",
            es.cross_chip_bytes, es.total_bytes
        ));
    }
    if es.total_bytes > 0 && es.active_cores == 0 {
        flag(format!("moves {} B with zero active cores", es.total_bytes));
    }
    let bound = (es.active_cores as u64).saturating_mul(es.max_core_out.max(es.max_core_in));
    if es.total_bytes > bound {
        flag(format!(
            "total_bytes {} exceeds active_cores × max per-core volume {bound}",
            es.total_bytes
        ));
    }
}

/// When a step carries both explicit shifts and a summary, recompute the
/// totals with the simulator's exact accounting (same-core shifts free,
/// rotations move `count` of `len(dim)` slices) and require agreement.
fn cross_check(v: &Verifier, program: &Program, step: usize, ss: &Superstep, report: &mut Report) {
    let Some(es) = &ss.exchange_summary else {
        return;
    };
    let mut total = 0u64;
    let mut cross = 0u64;
    for op in &ss.exchange {
        let (Some(src), Some(dst)) = (program.buffers.get(op.src), program.buffers.get(op.dst))
        else {
            return; // dangling refs: BSP02 already refutes the program
        };
        if src.core == dst.core {
            continue;
        }
        let elems = src.elements().max(1);
        let eb = elem_bytes(src.bytes, elems);
        let moved = match op.kind {
            ShiftKind::RotateSlices { dim, count } => {
                let len = src.coords.get(dim).map(Vec::len).unwrap_or(1).max(1);
                elems / len * count
            }
            ShiftKind::Copy | ShiftKind::Accumulate { .. } => elems,
        };
        let bytes = (moved * eb) as u64;
        total += bytes;
        if v.spec().chip_of(src.core) != v.spec().chip_of(dst.core) {
            cross += bytes;
        }
    }
    if es.total_bytes != total {
        report.push(
            Diagnostic::error(
                RuleId::ByteConservation,
                format!(
                    "superstep {step} summary claims {} B but the explicit shifts move {total} B",
                    es.total_bytes
                ),
            )
            .at_step(step)
            .hint("recompute the summary from the shift list (the simulator will)"),
        );
    }
    if es.cross_chip_bytes != cross {
        report.push(
            Diagnostic::error(
                RuleId::ByteConservation,
                format!(
                    "superstep {step} summary claims {} cross-chip B but the shifts cross \
                     {cross} B",
                    es.cross_chip_bytes
                ),
            )
            .at_step(step)
            .hint("recompute cross-chip traffic from the shift endpoints"),
        );
    }
}
