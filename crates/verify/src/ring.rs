//! Rotation-ring consistency (§4.4): per exchange phase, the rotation
//! shifts must form disjoint rings, and each rotation's shape must agree
//! with the buffers it connects.
//!
//! A set of rotations is a union of valid rings exactly when every
//! participating buffer has rotate out-degree 1 and in-degree 1; together
//! with [`crate::bsp`]'s duplicate-writer rule this decomposes into:
//!
//! * **RING04** — out-degree > 1 (one source feeding two receivers);
//! * **RING05** — degree 0 paired with degree 1 (a dropped send or
//!   receive, which would deadlock the BSP exchange);
//! * in-degree > 1 is already **BSP01** (two racing writers).
//!
//! Whether each ring also matches the placement's diagonal sigma is a
//! plan-level question answered by `t10-core`'s `verify_lowering` (RING07),
//! which can see the [`crate::Verifier`]-invisible `Plan`.

use std::collections::BTreeMap;

use t10_device::program::{Program, ShiftKind};

use crate::diag::{Diagnostic, Report, RuleId};

pub(crate) fn check(program: &Program, report: &mut Report) {
    let num_bufs = program.buffers.len();
    for (step, ss) in program.steps.iter().enumerate() {
        let mut out_deg: BTreeMap<usize, usize> = BTreeMap::new();
        let mut in_deg: BTreeMap<usize, usize> = BTreeMap::new();
        for op in &ss.exchange {
            let ShiftKind::RotateSlices { dim, count } = op.kind else {
                continue;
            };
            if op.src < num_bufs && op.dst < num_bufs {
                *out_deg.entry(op.src).or_insert(0) += 1;
                *in_deg.entry(op.dst).or_insert(0) += 1;
            }
            // RING06: the rotation's shape must agree with both endpoints.
            let (Some(src), Some(dst)) = (program.buffers.get(op.src), program.buffers.get(op.dst))
            else {
                continue; // dangling: reported as BSP02
            };
            let src_len = src.coords.get(dim).map(Vec::len);
            let dst_len = dst.coords.get(dim).map(Vec::len);
            let mismatch = match (src_len, dst_len) {
                (None, _) | (_, None) => Some(format!(
                    "rotates dimension {dim} but the buffers have {} and {} dimensions",
                    src.coords.len(),
                    dst.coords.len()
                )),
                (Some(s), Some(d)) if s != d => Some(format!(
                    "rotates {count} slices between partitions of unequal length {s} vs {d}"
                )),
                (Some(s), Some(_)) if count == 0 || count > s => Some(format!(
                    "rotating pace {count} outside 1..={s} (the partition length)"
                )),
                _ => None,
            };
            if let Some(msg) = mismatch {
                report.push(
                    Diagnostic::error(
                        RuleId::PaceMismatch,
                        format!("superstep {step} shift {}→{} {msg}", op.src, op.dst),
                    )
                    .at_step(step)
                    .at_buffer(op.dst)
                    .hint("rp must be the level's aligned pace, ≤ every rotating plen (§4.2)"),
                );
            } else {
                let src_eb = elem_bytes(src.bytes, src.elements());
                let dst_eb = elem_bytes(dst.bytes, dst.elements());
                if src_eb != dst_eb {
                    report.push(
                        Diagnostic::error(
                            RuleId::PaceMismatch,
                            format!(
                                "superstep {step} shift {}→{} moves {src_eb} B elements into a \
                                 {dst_eb} B-element buffer",
                                op.src, op.dst
                            ),
                        )
                        .at_step(step)
                        .at_buffer(op.dst)
                        .hint("a ring rotates one tensor; element sizes must match"),
                    );
                }
            }
        }
        // RING04 / RING05 over the per-step rotate graph.
        for (&buf, &deg) in &out_deg {
            if deg > 1 {
                report.push(
                    Diagnostic::error(
                        RuleId::RotateFanOut,
                        format!("superstep {step} rotates buffer {buf} to {deg} destinations"),
                    )
                    .at_step(step)
                    .at_buffer(buf)
                    .hint("a ring node has exactly one successor; drop the extra shift"),
                );
            }
        }
        for (&buf, &deg) in out_deg.iter().chain(in_deg.iter()) {
            if deg == 0 {
                continue;
            }
            let (ins, outs) = (
                in_deg.get(&buf).copied().unwrap_or(0),
                out_deg.get(&buf).copied().unwrap_or(0),
            );
            // Fan-out and duplicate writes are reported above / by BSP01;
            // here we flag the deadlocking 0-vs-1 mismatches once per buffer.
            if (ins == 0) != (outs == 0) && ins <= 1 && outs <= 1 {
                let core = program.buffers.get(buf).map(|b| b.core);
                let (have, miss) = if ins == 0 {
                    ("sends", "receive")
                } else {
                    ("receives", "send")
                };
                let mut d = Diagnostic::error(
                    RuleId::BrokenRing,
                    format!(
                        "superstep {step}: buffer {buf} {have} in a rotation ring but has no \
                         matching {miss} — the BSP exchange would deadlock"
                    ),
                )
                .at_step(step)
                .at_buffer(buf)
                .hint("every ring member both sends to and receives from a neighbour");
                if let Some(c) = core {
                    d = d.at_core(c);
                }
                // Both degree maps iterate the buffer; report it once.
                if !report.diagnostics.iter().any(|p| {
                    p.rule == RuleId::BrokenRing
                        && p.location.step == Some(step)
                        && p.location.buffer == Some(buf)
                }) {
                    report.push(d);
                }
            }
        }
    }
}

/// Element size the simulator derives for shift accounting.
pub(crate) fn elem_bytes(bytes: usize, elements: usize) -> usize {
    (bytes / elements.max(1)).max(1)
}
