//! Static verification of T10 device programs (and, via `t10-core`'s
//! plan-level pass, execution plans): proves or refutes a fixed inventory
//! of invariants without simulating a single superstep.
//!
//! The paper states the invariants (§4–§5) but the compiler historically
//! only discovered violations by running the simulator and watching it OOM
//! or wedge — on-device trial and error, the thing T10 exists to avoid.
//! This crate is the compile-time answer. Four rule families:
//!
//! * **capacity safety** (CAP01–CAP02 here, CAP03 at plan level) — every
//!   core's declared buffers fit its usable SRAM under the given fault
//!   plan and reservation, mirroring the simulator's memory accounting
//!   byte-for-byte;
//! * **rotation-ring consistency** (RING04–RING06 here, RING01–RING03 and
//!   RING07 at plan level) — per exchange phase, rotations decompose into
//!   disjoint rings and agree with their buffers' shapes;
//! * **BSP deadlock- and race-freedom** (BSP01–BSP03 here, BSP04 at plan
//!   level) — single-writer exchanges, no dangling references, and the
//!   double-buffering discipline;
//! * **cost-model sanity** (COST01–COST02) — finite nonnegative superstep
//!   times and byte-conserving exchange summaries.
//!
//! Diagnostics are typed and machine-readable ([`Diagnostic`]: rule id,
//! severity, location, fix hint); [`Report::to_json`] renders them for CI
//! artifacts. The layering is deliberate: this crate sees only
//! `t10-device` programs (plus `t10-sim`'s fault model for capacities), so
//! `t10-core` can depend on it and run it as a mandatory post-pass; the
//! plan-level rules that need `Plan` itself live in `t10_core::verify` and
//! speak the same diagnostic vocabulary.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::indexing_slicing))]

pub mod bsp;
pub mod capacity;
pub mod cost;
pub mod diag;
pub mod graph;
pub mod ring;
pub mod symbolic;

pub use diag::{
    registry, Diagnostic, Location, Report, RuleFamily, RuleId, RuleMeta, Severity, Stats,
};
pub use graph::{FuseCandidate, GraphAnalysis};

use t10_device::program::Program;
use t10_device::ChipSpec;
use t10_sim::FaultPlan;
use t10_trace::{Trace, Value, PID_VERIFY};

/// A configured verification pass: the chip it proves against, the
/// per-core capacities (fault- and reservation-aware), and an optional
/// trace sink.
#[derive(Debug, Clone)]
pub struct Verifier {
    spec: ChipSpec,
    capacities: Vec<usize>,
    trace: Trace,
}

impl Verifier {
    /// A verifier for a healthy chip: every core's capacity is its nominal
    /// SRAM minus the reserved shift buffer — exactly what the simulator's
    /// memory tracker enforces at load.
    pub fn new(spec: &ChipSpec) -> Self {
        let cap = spec.sram_per_core.saturating_sub(spec.shift_buffer);
        Self {
            capacities: vec![cap; spec.num_cores],
            spec: spec.clone(),
            trace: Trace::disabled(),
        }
    }

    /// Degrades the per-core capacities to a fault plan's surviving SRAM
    /// (mirrors `Simulator::with_fault_plan`).
    pub fn with_faults(mut self, faults: &FaultPlan) -> Self {
        self.capacities = faults.capacities(self.spec.sram_per_core, self.spec.shift_buffer);
        self.capacities.resize(
            self.spec.num_cores,
            self.spec
                .sram_per_core
                .saturating_sub(self.spec.shift_buffer),
        );
        self
    }

    /// Carves `bytes` out of every core (the checkpoint staging the
    /// simulator reserves under `with_checkpointing`).
    pub fn with_reserved(mut self, bytes: usize) -> Self {
        for c in &mut self.capacities {
            *c = c.saturating_sub(bytes);
        }
        self
    }

    /// Records a verification span and counters into `trace`.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The chip being proved against.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// Usable capacity of one core (0 when out of range).
    pub fn capacity_of(&self, core: usize) -> usize {
        self.capacities.get(core).copied().unwrap_or(0)
    }

    /// The full per-core capacity vector the proof runs against.
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    /// The trace sink (disabled unless [`Verifier::with_trace`] was used).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs the program-level rule inventory. Pure analysis: no superstep
    /// is simulated, no data moves; cost is linear in the program size.
    pub fn verify_program(&self, program: &Program) -> Report {
        let t0 = self.trace.now_us();
        let mut report = Report::new();
        report.stats.steps = program.steps.len();
        report.stats.buffers = program.buffers.len();
        report.stats.shifts = program.steps.iter().map(|s| s.exchange.len()).sum();
        report.stats.vertices = program.steps.iter().map(|s| s.compute.len()).sum();
        report.stats.rules_checked = RuleId::STRUCTURAL.len();
        capacity::check(self, program, &mut report);
        bsp::check(program, &mut report);
        ring::check(program, &mut report);
        cost::check(self, program, &mut report);
        if self.trace.enabled() {
            let t1 = self.trace.now_us();
            self.trace.span(
                "verify_program",
                "verify",
                PID_VERIFY,
                0,
                t0,
                (t1 - t0).max(0.0),
                vec![
                    ("steps", Value::U64(report.stats.steps as u64)),
                    ("buffers", Value::U64(report.stats.buffers as u64)),
                    ("shifts", Value::U64(report.stats.shifts as u64)),
                    ("errors", Value::U64(report.error_count() as u64)),
                    ("ok", Value::Bool(report.is_ok())),
                ],
            );
            self.trace.counter(
                "verify.violations",
                "verify",
                PID_VERIFY,
                0,
                t1,
                vec![("errors", Value::U64(report.error_count() as u64))],
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_device::program::{
        BufferDecl, FuncTask, Phase, Program, ShiftKind, ShiftOp, SubTaskDesc, Superstep,
        VertexTask,
    };
    use t10_ir::OpKind;

    fn spec4() -> ChipSpec {
        let mut spec = ChipSpec::ipu_with_cores(4);
        spec.sram_per_core = 4096;
        spec.shift_buffer = 256;
        spec
    }

    fn buf(core: usize, bytes: usize, coords: Vec<Vec<usize>>) -> BufferDecl {
        BufferDecl {
            core,
            label: format!("b@{core}"),
            bytes,
            coords,
            init: 0.0,
        }
    }

    /// A 4-core ring rotating one slice of a 2-slice partition per step.
    fn ring_program() -> Program {
        let mut p = Program::new();
        for core in 0..4 {
            p.add_buffer(buf(core, 32, vec![vec![2 * core, 2 * core + 1], vec![0]]));
        }
        let mut ss = Superstep::new(None, Phase::Execute);
        for core in 0..4usize {
            ss.exchange.push(ShiftOp {
                src: (core + 1) % 4,
                dst: core,
                kind: ShiftKind::RotateSlices { dim: 0, count: 1 },
            });
        }
        p.steps.push(ss);
        p
    }

    #[test]
    fn clean_ring_passes() {
        let report = Verifier::new(&spec4()).verify_program(&ring_program());
        assert!(report.is_ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.stats.peak_core_bytes, 32);
        assert_eq!(report.stats.rules_checked, RuleId::STRUCTURAL.len());
    }

    #[test]
    fn overflow_is_cap02() {
        let mut spec = spec4();
        spec.sram_per_core = 40; // capacity 40 - 256 → 0
        let report = Verifier::new(&spec).verify_program(&ring_program());
        assert_eq!(report.violated_rules(), vec!["CAP02"]);
    }

    #[test]
    fn reservation_tightens_capacity() {
        let spec = spec4();
        let v = Verifier::new(&spec).with_reserved(4096 - 256 - 16);
        assert_eq!(v.capacity_of(0), 16);
        let report = v.verify_program(&ring_program());
        assert_eq!(report.violated_rules(), vec!["CAP02"]);
    }

    #[test]
    fn dropped_receive_is_ring05() {
        let mut p = ring_program();
        p.steps[0].exchange.remove(0);
        let report = Verifier::new(&spec4()).verify_program(&p);
        assert_eq!(report.violated_rules(), vec!["RING05"]);
    }

    #[test]
    fn duplicated_shift_is_bsp01() {
        let mut p = ring_program();
        let dup = p.steps[0].exchange[0];
        p.steps[0].exchange.push(dup);
        let report = Verifier::new(&spec4()).verify_program(&p);
        // The duplicate also fans out its source ring node.
        assert!(report.violated_rules().contains(&"BSP01"));
    }

    #[test]
    fn compute_shift_overlap_is_bsp03() {
        let mut p = ring_program();
        let desc = SubTaskDesc {
            kind: OpKind::Elementwise,
            out_elems: 2,
            red_elems: 1,
            window: 1,
            in_bytes: 8,
            out_bytes: 8,
        };
        p.ops
            .push(t10_ir::builders::unary(0, 1, vec![8], t10_ir::Unary::Relu).unwrap());
        p.steps[0].compute.push(VertexTask {
            core: 0,
            desc,
            func: Some(FuncTask {
                op: 0,
                axis_coords: vec![vec![0, 1]],
                inputs: vec![],
                output: 0, // also the dst of a rotation this step
                apply_unary: true,
            }),
        });
        let report = Verifier::new(&spec4()).verify_program(&p);
        assert!(report.violated_rules().contains(&"BSP03"));
    }

    #[test]
    fn liveness_high_water_is_below_peak() {
        // Two buffers on core 0 with disjoint lifetimes: peak counts both,
        // the live high-water only the larger.
        let mut p = Program::new();
        p.add_buffer(buf(0, 100, vec![vec![0]]));
        p.add_buffer(buf(0, 60, vec![vec![1]]));
        p.add_buffer(buf(1, 10, vec![vec![2]]));
        let mut s0 = Superstep::new(None, Phase::Execute);
        s0.exchange.push(ShiftOp {
            src: 0,
            dst: 2,
            kind: ShiftKind::Copy,
        });
        let mut s1 = Superstep::new(None, Phase::Execute);
        s1.exchange.push(ShiftOp {
            src: 1,
            dst: 2,
            kind: ShiftKind::Copy,
        });
        p.steps.push(s0);
        p.steps.push(s1);
        let report = Verifier::new(&spec4()).verify_program(&p);
        // Two distinct writes into buffer 2 across steps are fine (one per
        // phase); capacity counts declarations.
        assert!(report.is_ok(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.stats.peak_core_bytes, 160);
        assert_eq!(report.stats.live_high_water, 100);
    }

    #[test]
    fn summary_violations_are_cost02() {
        let mut p = Program::new();
        let mut ss = Superstep::new(None, Phase::Execute);
        ss.exchange_summary = Some(t10_device::program::ExchangeSummary {
            total_bytes: 64,
            max_core_out: 128, // exceeds total
            max_core_in: 16,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 4,
            max_core_messages: 1,
        });
        p.steps.push(ss);
        let report = Verifier::new(&spec4()).verify_program(&p);
        assert_eq!(report.violated_rules(), vec!["COST02"]);
    }

    #[test]
    fn summary_must_match_explicit_shifts() {
        let mut p = ring_program();
        // Each rotation moves 1 of 2 slices of a 32 B partition = 16 B,
        // from 4 cores → 64 B total. Claim 32.
        p.steps[0].exchange_summary = Some(t10_device::program::ExchangeSummary {
            total_bytes: 32,
            max_core_out: 16,
            max_core_in: 16,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 4,
            max_core_messages: 1,
        });
        let report = Verifier::new(&spec4()).verify_program(&p);
        assert_eq!(report.violated_rules(), vec!["COST02"]);
        // Correct summary passes.
        if let Some(es) = &mut p.steps[0].exchange_summary {
            es.total_bytes = 64;
        }
        let report = Verifier::new(&spec4()).verify_program(&p);
        assert!(report.is_ok(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn trace_records_verify_span() {
        let trace = Trace::logical();
        let _ = Verifier::new(&spec4())
            .with_trace(trace.clone())
            .verify_program(&ring_program());
        let events = trace.snapshot();
        assert!(events.iter().any(|e| e.name == "verify_program"));
        assert!(events
            .iter()
            .all(|e| e.pid == PID_VERIFY || e.cat == "__metadata"));
    }
}
