//! The diagnostic vocabulary: rule ids, severities, locations, and the
//! report a verification pass returns.
//!
//! Every rule has a stable string id (`CAP02`, `RING05`, …) so tests,
//! tooling, and CI artifacts can match on it without depending on message
//! wording.

use serde::{Deserialize, Serialize};
use t10_trace::json::escape_into;

/// The fixed rule inventory. Ids are stable; new rules append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleId {
    /// CAP01 — a buffer, vertex, or plan references a core the chip does
    /// not have.
    CoreOutOfRange,
    /// CAP02 — a core's declared buffers exceed its usable SRAM (fault- and
    /// reservation-aware), i.e. the program cannot even be loaded.
    SramOverflow,
    /// CAP03 — a plan's active per-core footprint exceeds the capacity the
    /// search was bounded by.
    PlanMemOverflow,
    /// RING01 — a rotation level's pace does not tile its axis: `rp` must
    /// divide the temporal extent and `steps * rp` must cover it (§4.2).
    PaceDividesExtent,
    /// RING02 — rTensors rotating along one axis disagree on the pace: `rp`
    /// must be the minimum partition length in the level (§4.2 rules 1–3).
    PaceAlignment,
    /// RING03 — a temporal factor incompatible with its spatial sharing
    /// (factor must divide the sharing count and the rotated extent).
    FactorSharing,
    /// RING04 — a buffer is the source of more than one rotation in a
    /// single exchange phase (a ring node has exactly one successor).
    RotateFanOut,
    /// RING05 — a rotation send with no matching receive (or vice versa):
    /// some buffer's ring in/out degree is 0 where its peer's is 1, so the
    /// BSP exchange would deadlock waiting on it.
    BrokenRing,
    /// RING06 — a rotation whose shape disagrees with its endpoints: bad
    /// dimension index, pace exceeding the partition length, or mismatched
    /// element sizes.
    PaceMismatch,
    /// RING07 — a rotation's source core is not the placement's upstream of
    /// its destination core: the shift contradicts the diagonal placement
    /// sigma (§4.4, Figure 10).
    SigmaMismatch,
    /// BSP01 — a buffer receives more than one shift in a single exchange
    /// phase; the last writer would win nondeterministically.
    DuplicateWriter,
    /// BSP02 — a task or shift references a buffer or operator that is not
    /// declared in the program.
    DanglingReference,
    /// BSP03 — a buffer written by a compute vertex is also a shift
    /// endpoint in the same superstep, violating the double-buffering
    /// discipline (compute outputs accumulate in place; exchanging them in
    /// the same step races with the accumulation).
    ComputeShiftOverlap,
    /// BSP04 — the final output buffers do not cover every output
    /// coordinate exactly once (a sub-tensor is dropped or written twice).
    OutputCoverage,
    /// COST01 — a superstep prices to a negative or non-finite time on the
    /// ground-truth cost model.
    NonfiniteTime,
    /// COST02 — an exchange summary is not conserved: per-core maxima or
    /// cross-chip bytes exceed the total, bytes move with no active cores,
    /// or the summary disagrees with the explicit ring traffic.
    ByteConservation,
    /// PROVE01 — coverage: some iteration point of the operator's canonical
    /// index space is never computed by any vertex (an output element would
    /// be missing contributions).
    ProveCoverageMissing,
    /// PROVE02 — uniqueness: an iteration point is computed more than once
    /// (a contribution would be accumulated twice).
    ProveCoverageDuplicated,
    /// PROVE03 — rotation provenance: a compute vertex reads an operand
    /// element its buffer does not hold at that superstep under the
    /// symbolic rotation state (the σ/rp schedule and the shifts disagree).
    ProveOperandProvenance,
    /// PROVE04 — output placement: a compute vertex writes output
    /// coordinates outside its output buffer's declared shard.
    ProveOutputPlacement,
    /// PROVE05 — reduction flow: the partial-output contributions do not
    /// reach the final root buffers exactly once (a partial sum is lost, or
    /// accumulated into a root twice).
    ProveReductionFlow,
    /// PROVE06 — accumulate alignment: a cross-core accumulate merges
    /// buffers whose coordinate sets differ, so elements would be reduced
    /// against the wrong partners.
    ProveAccumulateAlignment,
    /// DF01 — dead shift: bytes moved into a buffer are never read by any
    /// compute vertex or later shift before the program ends (wasted
    /// inter-core traffic; warning).
    DeadShift,
    /// DF02 — dead buffer: a declared buffer is never read or written by
    /// any task or shift (wasted SRAM; warning).
    DeadBuffer,
    /// DF03 — clobbered exchange: data delivered by a shift is overwritten
    /// by a later shift before anything reads it — a cross-superstep
    /// write-after-write-without-read hazard (warning).
    ClobberedExchange,
    /// GRAPH01 — layout handoff mismatch: the producer's output placement
    /// cannot reconstruct the consumer's expected input partitioning
    /// through the boundary's all-to-all (coverage or dtype disagree).
    GraphLayoutHandoff,
    /// GRAPH02 — per-core transition bytes not conserved: the bytes leaving
    /// each producer core (or landing on each consumer core) disagree with
    /// the boundary contract's per-core partition size.
    GraphCoreConservation,
    /// GRAPH03 — aggregate transition bytes not conserved: the total bytes
    /// the transition moves disagree with the contract (partition bytes ×
    /// cores) or fall short of the logical tensor size.
    GraphByteConservation,
    /// GRAPH04 — transition-window SRAM overflow: producer outputs +
    /// consumer setup + the reserved checkpoint staging buffer exceed some
    /// core's usable SRAM during the handoff window.
    GraphResidency,
    /// GRAPH05 — dropped edge: a graph dataflow edge has no boundary
    /// contract, so no transition carries the intermediate to its consumer.
    GraphDroppedEdge,
    /// GRAPH06 — duplicate handoff: more than one boundary contract covers
    /// the same producer→consumer edge; the intermediate would be moved
    /// (and SRAM charged) twice.
    GraphDuplicateHandoff,
    /// GRAPH07 — orphaned or inconsistent transition: a contract references
    /// an edge the graph does not have, runs against topological order, or
    /// points at a superstep that is not its transition.
    GraphOrphanTransition,
    /// GRAPH08 — contract self-consistency: a boundary contract is
    /// internally malformed (zero cores, zero partition bytes for a
    /// nonzero tensor, pace or ring counts of zero).
    GraphContractMalformed,
    /// FUSE01 — fusion candidate (warning): a chain of compute-intensive
    /// operators whose intermediate round-trips through a full transition
    /// that ring-carried fusion could elide.
    FuseChainCandidate,
    /// FUSE02 — pace-compatible rings (warning): producer and consumer
    /// rotation rings agree on pace and ring count, so the intermediate
    /// could ride the rotation ring without re-synchronization.
    FusePaceCompatible,
    /// FUSE03 — fusion savings estimate (warning): estimated bytes and
    /// supersteps saved by fusing a candidate chain.
    FuseSavingsEstimate,
    /// SYM01 — interval-arithmetic overflow: a symbolic extent expression
    /// does not fit checked u64 arithmetic at some corner of the region, so
    /// no family-level claim can be made.
    SymOverflow,
    /// SYM02 — region not provable: the symbolic SRAM high-water evaluated
    /// at the region's upper corner exceeds the per-core capacity for every
    /// cached configuration, so the certificate claims a wider validity
    /// region than the closed rules support.
    SymRegionUnprovable,
    /// SYM03 — region malformed: an empty, inverted (`lo > hi`), or
    /// zero-extent dimension interval, or a certificate whose dimension list
    /// disagrees with the operator's axes.
    SymRegionMalformed,
    /// SYM04 — residual set incomplete: the certificate omits a rule the
    /// operator's structure requires re-checking per instantiation (e.g. a
    /// divisibility rule on a rotating axis), so reuse would skip a check.
    SymResidualIncomplete,
    /// SYM05 — region not covering: the requested concrete shape falls
    /// outside the certificate's validity region; the family proof says
    /// nothing about it.
    SymRegionNotCovering,
    /// SYM06 — family-key mismatch: the certificate's recorded shape-erased
    /// operator digest disagrees with the operator it is being applied to
    /// (a stale or mis-filed family entry).
    SymFamilyKeyMismatch,
    /// SYM07 — residual check refuted: a rule the certificate deferred to
    /// instantiation time failed at the concrete shape.
    SymResidualRefuted,
}

/// Which analysis pass owns a rule — the single source of truth for family
/// membership. The per-family const arrays below are derived views, pinned
/// to this classification by `families_partition_the_inventory`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleFamily {
    /// CAP/RING/BSP/COST — structural program/plan checks (`t10-verify`
    /// plus the plan-level pass in `t10_core::verify`).
    Structural,
    /// PROVE/DF — the `t10-prove` translation validator.
    Semantic,
    /// GRAPH/FUSE — whole-graph boundary analysis (`t10_verify::graph`).
    Graph,
    /// SYM — shape-parametric family certification
    /// (`t10_verify::symbolic` + `t10_core::symbolic`).
    Symbolic,
}

impl RuleFamily {
    /// Lower-case label for tables and docs.
    pub fn label(&self) -> &'static str {
        match self {
            RuleFamily::Structural => "structural",
            RuleFamily::Semantic => "semantic",
            RuleFamily::Graph => "graph",
            RuleFamily::Symbolic => "symbolic",
        }
    }
}

/// One row of the canonical rule registry: everything tooling needs to know
/// about a rule in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMeta {
    /// The rule.
    pub rule: RuleId,
    /// Stable string id (`"CAP02"`, `"SYM05"`, …).
    pub code: &'static str,
    /// Which analysis pass owns it.
    pub family: RuleFamily,
    /// One-line description.
    pub title: &'static str,
    /// Paper section the invariant comes from.
    pub paper: &'static str,
}

/// The canonical rule table, in id order. The three historical per-family
/// registries (verify structural, prove, graph) and the new symbolic family
/// all project out of this one table; `rule_ids_are_unique_and_stable` and
/// the DESIGN.md documentation test run against it, so a new rule cannot
/// collide with or shadow an existing id.
pub fn registry() -> Vec<RuleMeta> {
    RuleId::ALL.iter().map(|r| r.meta()).collect()
}

impl RuleId {
    /// Every rule, in id order. The inventory the verifier proves.
    pub const ALL: [RuleId; 43] = [
        RuleId::CoreOutOfRange,
        RuleId::SramOverflow,
        RuleId::PlanMemOverflow,
        RuleId::PaceDividesExtent,
        RuleId::PaceAlignment,
        RuleId::FactorSharing,
        RuleId::RotateFanOut,
        RuleId::BrokenRing,
        RuleId::PaceMismatch,
        RuleId::SigmaMismatch,
        RuleId::DuplicateWriter,
        RuleId::DanglingReference,
        RuleId::ComputeShiftOverlap,
        RuleId::OutputCoverage,
        RuleId::NonfiniteTime,
        RuleId::ByteConservation,
        RuleId::ProveCoverageMissing,
        RuleId::ProveCoverageDuplicated,
        RuleId::ProveOperandProvenance,
        RuleId::ProveOutputPlacement,
        RuleId::ProveReductionFlow,
        RuleId::ProveAccumulateAlignment,
        RuleId::DeadShift,
        RuleId::DeadBuffer,
        RuleId::ClobberedExchange,
        RuleId::GraphLayoutHandoff,
        RuleId::GraphCoreConservation,
        RuleId::GraphByteConservation,
        RuleId::GraphResidency,
        RuleId::GraphDroppedEdge,
        RuleId::GraphDuplicateHandoff,
        RuleId::GraphOrphanTransition,
        RuleId::GraphContractMalformed,
        RuleId::FuseChainCandidate,
        RuleId::FusePaceCompatible,
        RuleId::FuseSavingsEstimate,
        RuleId::SymOverflow,
        RuleId::SymRegionUnprovable,
        RuleId::SymRegionMalformed,
        RuleId::SymResidualIncomplete,
        RuleId::SymRegionNotCovering,
        RuleId::SymFamilyKeyMismatch,
        RuleId::SymResidualRefuted,
    ];

    /// The structural rules (CAP/RING/BSP/COST): what [`crate::Verifier`]
    /// and the plan-level checks prove without interpreting the program.
    pub const STRUCTURAL: [RuleId; 16] = [
        RuleId::CoreOutOfRange,
        RuleId::SramOverflow,
        RuleId::PlanMemOverflow,
        RuleId::PaceDividesExtent,
        RuleId::PaceAlignment,
        RuleId::FactorSharing,
        RuleId::RotateFanOut,
        RuleId::BrokenRing,
        RuleId::PaceMismatch,
        RuleId::SigmaMismatch,
        RuleId::DuplicateWriter,
        RuleId::DanglingReference,
        RuleId::ComputeShiftOverlap,
        RuleId::OutputCoverage,
        RuleId::NonfiniteTime,
        RuleId::ByteConservation,
    ];

    /// The semantic rules (PROVE/DF): what the `t10-prove` translation
    /// validator proves by abstract interpretation of the program.
    pub const SEMANTIC: [RuleId; 9] = [
        RuleId::ProveCoverageMissing,
        RuleId::ProveCoverageDuplicated,
        RuleId::ProveOperandProvenance,
        RuleId::ProveOutputPlacement,
        RuleId::ProveReductionFlow,
        RuleId::ProveAccumulateAlignment,
        RuleId::DeadShift,
        RuleId::DeadBuffer,
        RuleId::ClobberedExchange,
    ];

    /// The graph-level rules (GRAPH/FUSE): what [`crate::graph`] proves by
    /// abstractly interpreting a whole compiled graph boundary-by-boundary.
    /// GRAPH rules refute; FUSE rules are warn-only fusion lints.
    pub const GRAPH: [RuleId; 11] = [
        RuleId::GraphLayoutHandoff,
        RuleId::GraphCoreConservation,
        RuleId::GraphByteConservation,
        RuleId::GraphResidency,
        RuleId::GraphDroppedEdge,
        RuleId::GraphDuplicateHandoff,
        RuleId::GraphOrphanTransition,
        RuleId::GraphContractMalformed,
        RuleId::FuseChainCandidate,
        RuleId::FusePaceCompatible,
        RuleId::FuseSavingsEstimate,
    ];

    /// The symbolic-certification rules (SYM): what
    /// [`crate::symbolic`] and `t10_core::symbolic` prove when validating
    /// and instantiating shape-parametric family certificates.
    pub const SYMBOLIC: [RuleId; 7] = [
        RuleId::SymOverflow,
        RuleId::SymRegionUnprovable,
        RuleId::SymRegionMalformed,
        RuleId::SymResidualIncomplete,
        RuleId::SymRegionNotCovering,
        RuleId::SymFamilyKeyMismatch,
        RuleId::SymResidualRefuted,
    ];

    /// The canonical registry row for this rule.
    pub fn meta(&self) -> RuleMeta {
        RuleMeta {
            rule: *self,
            code: self.id(),
            family: self.family(),
            title: self.title(),
            paper: self.paper(),
        }
    }

    /// Which analysis pass owns this rule.
    pub fn family(&self) -> RuleFamily {
        match self {
            RuleId::CoreOutOfRange
            | RuleId::SramOverflow
            | RuleId::PlanMemOverflow
            | RuleId::PaceDividesExtent
            | RuleId::PaceAlignment
            | RuleId::FactorSharing
            | RuleId::RotateFanOut
            | RuleId::BrokenRing
            | RuleId::PaceMismatch
            | RuleId::SigmaMismatch
            | RuleId::DuplicateWriter
            | RuleId::DanglingReference
            | RuleId::ComputeShiftOverlap
            | RuleId::OutputCoverage
            | RuleId::NonfiniteTime
            | RuleId::ByteConservation => RuleFamily::Structural,
            RuleId::ProveCoverageMissing
            | RuleId::ProveCoverageDuplicated
            | RuleId::ProveOperandProvenance
            | RuleId::ProveOutputPlacement
            | RuleId::ProveReductionFlow
            | RuleId::ProveAccumulateAlignment
            | RuleId::DeadShift
            | RuleId::DeadBuffer
            | RuleId::ClobberedExchange => RuleFamily::Semantic,
            RuleId::GraphLayoutHandoff
            | RuleId::GraphCoreConservation
            | RuleId::GraphByteConservation
            | RuleId::GraphResidency
            | RuleId::GraphDroppedEdge
            | RuleId::GraphDuplicateHandoff
            | RuleId::GraphOrphanTransition
            | RuleId::GraphContractMalformed
            | RuleId::FuseChainCandidate
            | RuleId::FusePaceCompatible
            | RuleId::FuseSavingsEstimate => RuleFamily::Graph,
            RuleId::SymOverflow
            | RuleId::SymRegionUnprovable
            | RuleId::SymRegionMalformed
            | RuleId::SymResidualIncomplete
            | RuleId::SymRegionNotCovering
            | RuleId::SymFamilyKeyMismatch
            | RuleId::SymResidualRefuted => RuleFamily::Symbolic,
        }
    }

    /// The stable string id.
    pub fn id(&self) -> &'static str {
        match self {
            RuleId::CoreOutOfRange => "CAP01",
            RuleId::SramOverflow => "CAP02",
            RuleId::PlanMemOverflow => "CAP03",
            RuleId::PaceDividesExtent => "RING01",
            RuleId::PaceAlignment => "RING02",
            RuleId::FactorSharing => "RING03",
            RuleId::RotateFanOut => "RING04",
            RuleId::BrokenRing => "RING05",
            RuleId::PaceMismatch => "RING06",
            RuleId::SigmaMismatch => "RING07",
            RuleId::DuplicateWriter => "BSP01",
            RuleId::DanglingReference => "BSP02",
            RuleId::ComputeShiftOverlap => "BSP03",
            RuleId::OutputCoverage => "BSP04",
            RuleId::NonfiniteTime => "COST01",
            RuleId::ByteConservation => "COST02",
            RuleId::ProveCoverageMissing => "PROVE01",
            RuleId::ProveCoverageDuplicated => "PROVE02",
            RuleId::ProveOperandProvenance => "PROVE03",
            RuleId::ProveOutputPlacement => "PROVE04",
            RuleId::ProveReductionFlow => "PROVE05",
            RuleId::ProveAccumulateAlignment => "PROVE06",
            RuleId::DeadShift => "DF01",
            RuleId::DeadBuffer => "DF02",
            RuleId::ClobberedExchange => "DF03",
            RuleId::GraphLayoutHandoff => "GRAPH01",
            RuleId::GraphCoreConservation => "GRAPH02",
            RuleId::GraphByteConservation => "GRAPH03",
            RuleId::GraphResidency => "GRAPH04",
            RuleId::GraphDroppedEdge => "GRAPH05",
            RuleId::GraphDuplicateHandoff => "GRAPH06",
            RuleId::GraphOrphanTransition => "GRAPH07",
            RuleId::GraphContractMalformed => "GRAPH08",
            RuleId::FuseChainCandidate => "FUSE01",
            RuleId::FusePaceCompatible => "FUSE02",
            RuleId::FuseSavingsEstimate => "FUSE03",
            RuleId::SymOverflow => "SYM01",
            RuleId::SymRegionUnprovable => "SYM02",
            RuleId::SymRegionMalformed => "SYM03",
            RuleId::SymResidualIncomplete => "SYM04",
            RuleId::SymRegionNotCovering => "SYM05",
            RuleId::SymFamilyKeyMismatch => "SYM06",
            RuleId::SymResidualRefuted => "SYM07",
        }
    }

    /// One-line description for tables and docs.
    pub fn title(&self) -> &'static str {
        match self {
            RuleId::CoreOutOfRange => "core index out of range",
            RuleId::SramOverflow => "per-core SRAM budget exceeded",
            RuleId::PlanMemOverflow => "plan footprint exceeds capacity",
            RuleId::PaceDividesExtent => "rotating pace does not tile the axis",
            RuleId::PaceAlignment => "rotating pace not aligned across rTensors",
            RuleId::FactorSharing => "temporal factor incompatible with sharing",
            RuleId::RotateFanOut => "rotation source has multiple successors",
            RuleId::BrokenRing => "unmatched send/receive in a rotation ring",
            RuleId::PaceMismatch => "rotation shape disagrees with its buffers",
            RuleId::SigmaMismatch => "shift contradicts the diagonal placement",
            RuleId::DuplicateWriter => "buffer written twice in one exchange",
            RuleId::DanglingReference => "reference to an undeclared buffer/op",
            RuleId::ComputeShiftOverlap => "compute output shifted in the same step",
            RuleId::OutputCoverage => "output coordinates not covered exactly once",
            RuleId::NonfiniteTime => "superstep prices to a non-finite time",
            RuleId::ByteConservation => "exchange summary bytes not conserved",
            RuleId::ProveCoverageMissing => "iteration points never computed",
            RuleId::ProveCoverageDuplicated => "iteration point computed more than once",
            RuleId::ProveOperandProvenance => "operand element not resident when read",
            RuleId::ProveOutputPlacement => "write outside the declared output shard",
            RuleId::ProveReductionFlow => "partial outputs not reduced exactly once",
            RuleId::ProveAccumulateAlignment => "accumulate endpoints cover different coords",
            RuleId::DeadShift => "shifted bytes never read",
            RuleId::DeadBuffer => "buffer allocated but never used",
            RuleId::ClobberedExchange => "delivered data overwritten before any read",
            RuleId::GraphLayoutHandoff => "boundary layout handoff mismatch",
            RuleId::GraphCoreConservation => "per-core transition bytes not conserved",
            RuleId::GraphByteConservation => "aggregate transition bytes not conserved",
            RuleId::GraphResidency => "transition window exceeds core SRAM",
            RuleId::GraphDroppedEdge => "graph edge has no boundary transition",
            RuleId::GraphDuplicateHandoff => "edge covered by more than one transition",
            RuleId::GraphOrphanTransition => "transition matches no graph edge",
            RuleId::GraphContractMalformed => "boundary contract internally inconsistent",
            RuleId::FuseChainCandidate => "compute chain is a fusion candidate",
            RuleId::FusePaceCompatible => "boundary rings are pace-compatible",
            RuleId::FuseSavingsEstimate => "estimated fusion savings for a chain",
            RuleId::SymOverflow => "symbolic extent arithmetic overflows u64",
            RuleId::SymRegionUnprovable => "validity region exceeds what the closed rules prove",
            RuleId::SymRegionMalformed => "validity region empty, inverted, or mis-dimensioned",
            RuleId::SymResidualIncomplete => "residual rule set misses a required re-check",
            RuleId::SymRegionNotCovering => "requested shape outside the validity region",
            RuleId::SymFamilyKeyMismatch => "certificate family digest disagrees with operator",
            RuleId::SymResidualRefuted => "residual check failed at a concrete shape",
        }
    }

    /// The paper section the invariant comes from.
    pub fn paper(&self) -> &'static str {
        match self {
            RuleId::CoreOutOfRange | RuleId::SramOverflow | RuleId::PlanMemOverflow => "§4.1",
            RuleId::PaceDividesExtent | RuleId::PaceAlignment | RuleId::FactorSharing => "§4.2",
            RuleId::RotateFanOut
            | RuleId::BrokenRing
            | RuleId::PaceMismatch
            | RuleId::SigmaMismatch => "§4.4",
            RuleId::DuplicateWriter | RuleId::DanglingReference | RuleId::ComputeShiftOverlap => {
                "§2.1"
            }
            RuleId::OutputCoverage => "§4.4",
            RuleId::NonfiniteTime | RuleId::ByteConservation => "§4.3",
            RuleId::ProveCoverageMissing | RuleId::ProveCoverageDuplicated => "§4.2",
            RuleId::ProveOperandProvenance
            | RuleId::ProveOutputPlacement
            | RuleId::ProveReductionFlow
            | RuleId::ProveAccumulateAlignment => "§4.4",
            RuleId::DeadShift | RuleId::DeadBuffer | RuleId::ClobberedExchange => "§4.3",
            RuleId::GraphLayoutHandoff
            | RuleId::GraphCoreConservation
            | RuleId::GraphByteConservation
            | RuleId::GraphResidency
            | RuleId::GraphDroppedEdge
            | RuleId::GraphDuplicateHandoff
            | RuleId::GraphOrphanTransition
            | RuleId::GraphContractMalformed => "§5",
            RuleId::FuseChainCandidate
            | RuleId::FusePaceCompatible
            | RuleId::FuseSavingsEstimate => "§5",
            RuleId::SymOverflow
            | RuleId::SymRegionUnprovable
            | RuleId::SymRegionMalformed
            | RuleId::SymResidualIncomplete
            | RuleId::SymRegionNotCovering
            | RuleId::SymFamilyKeyMismatch
            | RuleId::SymResidualRefuted => "§6.3",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a finding is. Only `Error` findings refute a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but not refuting (the program can still run).
    Warning,
    /// The invariant is violated; running the program would OOM, race,
    /// deadlock, or mis-price.
    Error,
}

impl Severity {
    /// Lower-case label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where in the plan/program a finding points. All fields optional — a
/// plan-level finding has no superstep, a program-wide one no core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Location {
    /// Graph node (operator) index.
    pub node: Option<usize>,
    /// Superstep index within the program.
    pub step: Option<usize>,
    /// Core index.
    pub core: Option<usize>,
    /// Buffer id within the program.
    pub buffer: Option<usize>,
    /// Graph edge `(producer node, consumer node)` for boundary findings.
    #[serde(default)]
    pub edge: Option<(usize, usize)>,
}

/// One typed, machine-readable finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which invariant.
    pub rule: RuleId,
    /// Error (refuting) or warning.
    pub severity: Severity,
    /// Human-readable statement of the violation, with concrete numbers.
    pub message: String,
    /// Where it was found.
    pub location: Location,
    /// How to fix it (empty when no hint applies).
    pub hint: String,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(rule: RuleId, message: impl Into<String>) -> Self {
        Self {
            rule,
            severity: Severity::Error,
            message: message.into(),
            location: Location::default(),
            hint: String::new(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(rule: RuleId, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(rule, message)
        }
    }

    /// Attaches a graph-node location.
    pub fn at_node(mut self, node: usize) -> Self {
        self.location.node = Some(node);
        self
    }

    /// Attaches a superstep location.
    pub fn at_step(mut self, step: usize) -> Self {
        self.location.step = Some(step);
        self
    }

    /// Attaches a core location.
    pub fn at_core(mut self, core: usize) -> Self {
        self.location.core = Some(core);
        self
    }

    /// Attaches a buffer location.
    pub fn at_buffer(mut self, buffer: usize) -> Self {
        self.location.buffer = Some(buffer);
        self
    }

    /// Attaches a graph-edge location (producer → consumer node ids).
    pub fn at_edge(mut self, producer: usize, consumer: usize) -> Self {
        self.location.edge = Some((producer, consumer));
        self
    }

    /// Attaches a fix hint.
    pub fn hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = hint.into();
        self
    }

    /// `[CAP02] error @ step 3 core 1: message` — one line for logs.
    pub fn render(&self) -> String {
        let mut loc = String::new();
        if let Some(n) = self.location.node {
            loc.push_str(&format!(" node {n}"));
        }
        if let Some(s) = self.location.step {
            loc.push_str(&format!(" step {s}"));
        }
        if let Some(c) = self.location.core {
            loc.push_str(&format!(" core {c}"));
        }
        if let Some(b) = self.location.buffer {
            loc.push_str(&format!(" buffer {b}"));
        }
        if let Some((p, c)) = self.location.edge {
            loc.push_str(&format!(" edge {p}->{c}"));
        }
        let at = if loc.is_empty() {
            String::new()
        } else {
            format!(" @{loc}")
        };
        format!(
            "[{}] {}{at}: {}",
            self.rule.id(),
            self.severity.label(),
            self.message
        )
    }
}

/// Size statistics of the artifact a report covers, plus the capacity proof
/// numbers (per-core high-water vs budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Stats {
    /// Supersteps examined.
    pub steps: usize,
    /// Buffer declarations examined.
    pub buffers: usize,
    /// Explicit shifts examined.
    pub shifts: usize,
    /// Explicit compute vertices examined.
    pub vertices: usize,
    /// Peak declared bytes on any core — what the simulator's memory
    /// tracker will account at load time (all buffers live for the whole
    /// program).
    pub peak_core_bytes: usize,
    /// Liveness-based high-water: the peak a freeing allocator could reach
    /// given each buffer's first-to-last-use interval. Always ≤
    /// `peak_core_bytes`; the headroom between them is reclaimable.
    pub live_high_water: usize,
    /// Rules in the inventory this pass proved or refuted.
    pub rules_checked: usize,
}

/// The outcome of a verification pass: findings plus proof statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Report {
    /// All findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Artifact statistics and capacity-proof numbers.
    pub stats: Stats,
}

impl Report {
    /// An empty (passing) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Whether the artifact is proven: no error-severity findings.
    pub fn is_ok(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Sorted, deduplicated ids of the violated (error) rules.
    pub fn violated_rules(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.rule.id())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Folds another report in: findings append, statistics add.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.stats.steps += other.stats.steps;
        self.stats.buffers += other.stats.buffers;
        self.stats.shifts += other.stats.shifts;
        self.stats.vertices += other.stats.vertices;
        self.stats.peak_core_bytes = self.stats.peak_core_bytes.max(other.stats.peak_core_bytes);
        self.stats.live_high_water = self.stats.live_high_water.max(other.stats.live_high_water);
        self.stats.rules_checked = self.stats.rules_checked.max(other.stats.rules_checked);
    }

    /// Tags every finding with a graph-node location (for per-node plan
    /// reports merged into a whole-graph one).
    pub fn tag_node(mut self, node: usize) -> Self {
        for d in &mut self.diagnostics {
            if d.location.node.is_none() {
                d.location.node = Some(node);
            }
        }
        self
    }

    /// Deterministic JSON rendering (fixed field order, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 160);
        out.push_str(&format!(
            "{{\"ok\":{},\"errors\":{},\"stats\":{{\"steps\":{},\"buffers\":{},\"shifts\":{},\
             \"vertices\":{},\"peak_core_bytes\":{},\"live_high_water\":{},\"rules_checked\":{}}},\
             \"diagnostics\":[",
            self.is_ok(),
            self.error_count(),
            self.stats.steps,
            self.stats.buffers,
            self.stats.shifts,
            self.stats.vertices,
            self.stats.peak_core_bytes,
            self.stats.live_high_water,
            self.stats.rules_checked,
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",",
                d.rule.id(),
                d.severity.label()
            ));
            out.push_str("\"message\":\"");
            escape_into(&mut out, &d.message);
            out.push_str("\",");
            for (key, v) in [
                ("node", d.location.node),
                ("step", d.location.step),
                ("core", d.location.core),
                ("buffer", d.location.buffer),
            ] {
                match v {
                    Some(v) => out.push_str(&format!("\"{key}\":{v},")),
                    None => out.push_str(&format!("\"{key}\":null,")),
                }
            }
            match d.location.edge {
                Some((p, c)) => {
                    out.push_str(&format!("\"edge\":{{\"producer\":{p},\"consumer\":{c}}},"))
                }
                None => out.push_str("\"edge\":null,"),
            }
            out.push_str("\"hint\":\"");
            escape_into(&mut out, &d.hint);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_stable() {
        // The canonical registry is the uniqueness gate: every rule has a
        // row, every code is distinct, and the anchors below pin the stable
        // ids so an accidental renumber fails loudly.
        let rows = registry();
        assert_eq!(rows.len(), RuleId::ALL.len());
        let mut ids: Vec<&str> = rows.iter().map(|m| m.code).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RuleId::ALL.len());
        assert_eq!(RuleId::SramOverflow.id(), "CAP02");
        assert_eq!(RuleId::BrokenRing.id(), "RING05");
        assert_eq!(RuleId::GraphLayoutHandoff.id(), "GRAPH01");
        assert_eq!(RuleId::GraphContractMalformed.id(), "GRAPH08");
        assert_eq!(RuleId::FuseSavingsEstimate.id(), "FUSE03");
        assert_eq!(RuleId::SymOverflow.id(), "SYM01");
        assert_eq!(RuleId::SymResidualRefuted.id(), "SYM07");
        for m in &rows {
            assert!(!m.title.is_empty(), "{}: empty title", m.code);
            assert!(m.paper.starts_with('§'), "{}: no paper anchor", m.code);
        }
    }

    #[test]
    fn families_partition_the_inventory() {
        // STRUCTURAL + SEMANTIC + GRAPH + SYMBOLIC cover ALL with no
        // overlap, agree with the canonical `family()` classification, and
        // each family keeps to its own id prefixes.
        let mut union: Vec<RuleId> = RuleId::STRUCTURAL
            .iter()
            .chain(RuleId::SEMANTIC.iter())
            .chain(RuleId::GRAPH.iter())
            .chain(RuleId::SYMBOLIC.iter())
            .copied()
            .collect();
        union.sort();
        let mut all = RuleId::ALL.to_vec();
        all.sort();
        assert_eq!(union, all);
        for (fam, rules) in [
            (RuleFamily::Structural, &RuleId::STRUCTURAL[..]),
            (RuleFamily::Semantic, &RuleId::SEMANTIC[..]),
            (RuleFamily::Graph, &RuleId::GRAPH[..]),
            (RuleFamily::Symbolic, &RuleId::SYMBOLIC[..]),
        ] {
            for r in rules {
                assert_eq!(r.family(), fam, "{}: family const disagrees", r.id());
            }
        }
        for m in registry() {
            let expected: &[&str] = match m.family {
                RuleFamily::Structural => &["CAP", "RING", "BSP", "COST"],
                RuleFamily::Semantic => &["PROVE", "DF"],
                RuleFamily::Graph => &["GRAPH", "FUSE"],
                RuleFamily::Symbolic => &["SYM"],
            };
            assert!(
                expected.iter().any(|p| m.code.starts_with(p)),
                "{}: foreign prefix for family {:?}",
                m.code,
                m.family
            );
            // No prefix may leak across families (SYM must not collide with
            // an existing id, and vice versa).
            for other in registry() {
                if other.family != m.family {
                    assert_ne!(other.code, m.code);
                }
            }
        }
        // "SYM" is not a prefix of any non-symbolic id and no non-symbolic
        // prefix matches a SYM code.
        for m in registry() {
            if m.family != RuleFamily::Symbolic {
                assert!(!m.code.starts_with("SYM"), "{}: squats on SYM", m.code);
            }
        }
    }

    #[test]
    fn report_ok_ignores_warnings() {
        let mut r = Report::new();
        r.push(Diagnostic::warning(RuleId::ByteConservation, "suspicious"));
        assert!(r.is_ok());
        r.push(Diagnostic::error(RuleId::SramOverflow, "over").at_core(3));
        assert!(!r.is_ok());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.violated_rules(), vec!["CAP02"]);
    }

    #[test]
    fn render_includes_rule_and_location() {
        let d = Diagnostic::error(RuleId::DuplicateWriter, "two writers")
            .at_step(4)
            .at_buffer(7);
        let line = d.render();
        assert!(line.contains("[BSP01]"));
        assert!(line.contains("step 4"));
        assert!(line.contains("buffer 7"));
    }

    #[test]
    fn edge_location_renders_and_serializes() {
        let d = Diagnostic::error(RuleId::GraphLayoutHandoff, "bad handoff").at_edge(3, 5);
        assert!(d.render().contains("edge 3->5"));
        let mut r = Report::new();
        r.push(d);
        let parsed = t10_trace::json::parse(&r.to_json()).expect("parses");
        let diags = parsed
            .get("diagnostics")
            .and_then(|v| v.as_arr())
            .expect("array");
        let edge = diags[0].get("edge").expect("edge key");
        assert_eq!(edge.get("producer").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(edge.get("consumer").and_then(|v| v.as_f64()), Some(5.0));
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = Report::new();
        r.stats.steps = 2;
        r.push(
            Diagnostic::error(RuleId::SramOverflow, "core \"x\" over")
                .at_core(1)
                .hint("shrink the partition"),
        );
        let js = r.to_json();
        let parsed = t10_trace::json::parse(&js).expect("parses");
        assert_eq!(parsed.get("ok").and_then(|v| v.as_f64()), None); // bool, not number
        let diags = parsed
            .get("diagnostics")
            .and_then(|v| v.as_arr())
            .expect("array");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("rule").and_then(|v| v.as_str()), Some("CAP02"));
        assert_eq!(diags[0].get("core").and_then(|v| v.as_f64()), Some(1.0));
    }
}
