//! Graph-level verification: boundary contracts, transition conservation,
//! handoff residency, dataflow coverage, and fusion-feasibility lints.
//!
//! The per-operator rule families (CAP/RING/BSP/COST, PROVE/DF) each prove
//! one program in isolation; the one thing they cannot see is the seam
//! *between* programs — the all-to-all layout transition the compiler
//! inserts at every operator boundary (paper §5). This module abstractly
//! interprets a whole compiled graph boundary-by-boundary against the
//! typed [`BoundaryContract`]s the compiler now emits:
//!
//! * **GRAPH01** — layout handoff: the producer's output placement and the
//!   consumer's expected partitioning must both reconstruct the logical
//!   tensor through the all-to-all (coverage and element size agree);
//! * **GRAPH02** — per-core conservation: the transition superstep's
//!   exchange summary must move exactly the contract's per-core partition
//!   out of (and into) each active core;
//! * **GRAPH03** — aggregate conservation: total transition bytes equal
//!   partition × cores and cover the tensor;
//!
//! The tensor-size comparisons in GRAPH01/GRAPH03 apply only to contracts
//! marked [`BoundaryContract::dense_layout`]: for windowed placements
//! (conv halos, pooling) per-byte coverage arithmetic is inexact, and
//! those boundaries are proved at placement granularity instead
//! (partition × cores vs the lowered transition, which is always exact);
//! * **GRAPH04** — residency: producer outputs plus consumer setup must
//!   fit every core's usable SRAM during the handoff window (capacities
//!   are fault- and reservation-aware, mirroring the simulator);
//! * **GRAPH05/06/07** — dataflow sanity: every graph edge has exactly one
//!   contract, no duplicated handoffs, no contract that matches no edge,
//!   runs against topological order, or points at the wrong superstep;
//! * **GRAPH08** — contract self-consistency (zero cores, empty
//!   partitions for a nonzero tensor, rotating slots with no pace).
//!
//! On the same facts it emits the warn-only **FUSE01–FUSE03** lints: the
//! machine-checked work-list a future compute-shift fuser consumes. A
//! candidate is an anchor-to-anchor region — a compute-intensive operator
//! whose output reaches exactly one other compute-intensive operator
//! through elementwise glue that never leaks outside the region — whose
//! interior transitions could be elided by letting the intermediate ride
//! the rotation rings.

use std::collections::{BTreeMap, BTreeSet};

use t10_device::boundary::{BoundaryContract, GraphEdge, OpClass};
use t10_device::program::{Phase, Program};
use t10_trace::{Value, PID_VERIFY};

use crate::{Diagnostic, Report, RuleId, Verifier};

/// Upper bound on elementwise interior ops considered for one candidate;
/// regions larger than this are not fusion material and are skipped.
const MAX_CHAIN_INTERIOR: usize = 32;

/// One fusion candidate: an anchor-to-anchor chain whose interior
/// transitions a fuser could elide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuseCandidate {
    /// Node ids in the chain, anchors first and last, interior sorted.
    pub chain: Vec<usize>,
    /// Transition bytes elided if the intermediate rides the rings.
    pub bytes_saved: u64,
    /// Dedicated transition supersteps elided.
    pub steps_saved: usize,
    /// Whether the two anchors' rotation rings agree on pace and count.
    pub pace_compatible: bool,
}

/// The outcome of a graph-level pass: GRAPH findings plus the fusion
/// work-list. FUSE lints are kept out of [`GraphAnalysis::report`] so the
/// mandatory compile post-pass stays quiet about them; callers that want
/// them as diagnostics fold in [`GraphAnalysis::fuse_diagnostics`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphAnalysis {
    /// GRAPH01–GRAPH08 findings.
    pub report: Report,
    /// Dataflow edges examined.
    pub edges_checked: usize,
    /// Fusion candidates, in anchor order.
    pub candidates: Vec<FuseCandidate>,
}

impl GraphAnalysis {
    /// Total estimated bytes saved across all candidates.
    #[must_use]
    pub fn bytes_saved(&self) -> u64 {
        self.candidates.iter().map(|c| c.bytes_saved).sum()
    }

    /// Total dedicated transition supersteps elided across all candidates.
    #[must_use]
    pub fn steps_saved(&self) -> usize {
        self.candidates.iter().map(|c| c.steps_saved).sum()
    }

    /// Renders the candidates as FUSE01–FUSE03 warning diagnostics.
    #[must_use]
    pub fn fuse_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for c in &self.candidates {
            let (Some(&first), Some(&last)) = (c.chain.first(), c.chain.last()) else {
                continue;
            };
            let path = c
                .chain
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("->");
            out.push(
                Diagnostic::warning(
                    RuleId::FuseChainCandidate,
                    format!(
                        "chain {path}: {} op(s) whose intermediates could ride the ring",
                        c.chain.len()
                    ),
                )
                .at_edge(first, last)
                .hint("a compute-shift fuser can merge this chain into one program"),
            );
            if c.pace_compatible {
                out.push(
                    Diagnostic::warning(
                        RuleId::FusePaceCompatible,
                        format!("chain {path}: anchor rotation rings agree on pace and count"),
                    )
                    .at_edge(first, last),
                );
            }
            if c.bytes_saved > 0 {
                out.push(
                    Diagnostic::warning(
                        RuleId::FuseSavingsEstimate,
                        format!(
                            "chain {path}: fusing saves an estimated {} transition byte(s) \
                             and {} superstep(s)",
                            c.bytes_saved, c.steps_saved
                        ),
                    )
                    .at_edge(first, last),
                );
            }
        }
        out
    }
}

/// Runs the graph-level rule inventory over a compiled graph's boundary
/// contracts. Pure analysis, linear in edges + contracts + program size.
pub fn check(
    v: &Verifier,
    program: &Program,
    edges: &[GraphEdge],
    contracts: &[BoundaryContract],
) -> GraphAnalysis {
    let t0 = v.trace().now_us();
    let mut report = Report::new();
    report.stats.rules_checked = RuleId::GRAPH.len();

    // Dataflow coverage: every edge exactly one contract (GRAPH05/06),
    // every contract a real edge (GRAPH07, with the per-contract checks).
    // The consumer slot is part of the edge identity: a node consuming the
    // same value twice (e.g. `mul(x, x)`) has two handoffs, one per slot.
    let edge_set: BTreeSet<(usize, usize, usize, usize)> = edges
        .iter()
        .map(|e| (e.producer, e.consumer, e.value, e.consumer_slot))
        .collect();
    let mut cover: BTreeMap<(usize, usize, usize, usize), usize> = BTreeMap::new();
    for c in contracts {
        *cover
            .entry((c.producer, c.consumer, c.value, c.consumer_slot))
            .or_insert(0) += 1;
    }
    for e in edges {
        match cover.get(&(e.producer, e.consumer, e.value, e.consumer_slot)) {
            None | Some(0) => report.push(
                Diagnostic::error(
                    RuleId::GraphDroppedEdge,
                    format!(
                        "value {} ({} B) flows {} -> {} but no transition carries it",
                        e.value, e.tensor_bytes, e.producer, e.consumer
                    ),
                )
                .at_edge(e.producer, e.consumer)
                .at_node(e.consumer)
                .hint("the assembly loop must emit a boundary contract per dataflow edge"),
            ),
            Some(1) => {}
            Some(n) => report.push(
                Diagnostic::error(
                    RuleId::GraphDuplicateHandoff,
                    format!(
                        "value {} is handed {} -> {} by {n} transitions; bytes would move \
                         and SRAM be charged {n} times",
                        e.value, e.producer, e.consumer
                    ),
                )
                .at_edge(e.producer, e.consumer)
                .at_node(e.consumer),
            ),
        }
    }

    let min_capacity = v.capacities().iter().copied().min().unwrap_or(0);
    for c in contracts {
        check_contract(c, program, &edge_set, min_capacity, &mut report);
    }

    let candidates = fuse_candidates(contracts);

    if v.trace().enabled() {
        let t1 = v.trace().now_us();
        v.trace().span(
            "verify_graph",
            "verify",
            PID_VERIFY,
            0,
            t0,
            (t1 - t0).max(0.0),
            vec![
                ("edges", Value::U64(edges.len() as u64)),
                ("contracts", Value::U64(contracts.len() as u64)),
                ("fuse_candidates", Value::U64(candidates.len() as u64)),
                (
                    "fuse_bytes_saved",
                    Value::U64(candidates.iter().map(|c| c.bytes_saved).sum()),
                ),
                ("errors", Value::U64(report.error_count() as u64)),
                ("ok", Value::Bool(report.is_ok())),
            ],
        );
    }

    GraphAnalysis {
        report,
        edges_checked: edges.len(),
        candidates,
    }
}

/// Proves one contract: GRAPH08 self-consistency, GRAPH07 edge/step
/// anchoring, GRAPH01 handoff coverage, GRAPH02/03 conservation, GRAPH04
/// residency. A malformed contract short-circuits (its numbers cannot be
/// trusted for the downstream rules).
fn check_contract(
    c: &BoundaryContract,
    program: &Program,
    edge_set: &BTreeSet<(usize, usize, usize, usize)>,
    min_capacity: usize,
    report: &mut Report,
) {
    let at = |d: Diagnostic| d.at_edge(c.producer, c.consumer).at_node(c.producer);

    // GRAPH08 — internal consistency.
    let malformed = if c.producer_cores == 0 || c.consumer_cores == 0 {
        Some("a side of the boundary uses zero cores".to_string())
    } else if c.producer_dtype_bytes == 0 || c.consumer_dtype_bytes == 0 {
        Some("zero-sized elements".to_string())
    } else if c.tensor_bytes > 0
        && (c.producer_partition_bytes == 0 || c.consumer_partition_bytes == 0)
    {
        Some(format!(
            "empty per-core partitions for a {} B tensor",
            c.tensor_bytes
        ))
    } else if c.producer_rings > 0 && c.producer_pace == 0 {
        Some("producer rotates with pace 0".to_string())
    } else if c.consumer_rings > 0 && c.consumer_pace == 0 {
        Some("consumer slot rotates with pace 0".to_string())
    } else {
        None
    };
    if let Some(why) = malformed {
        report.push(at(Diagnostic::error(
            RuleId::GraphContractMalformed,
            format!("contract for value {} is inconsistent: {why}", c.value),
        )));
        return;
    }

    // GRAPH07 — the contract must anchor to a real edge, respect
    // topological order, and point at its own transition superstep.
    if !edge_set.contains(&(c.producer, c.consumer, c.value, c.consumer_slot)) {
        report.push(at(Diagnostic::error(
            RuleId::GraphOrphanTransition,
            format!(
                "transition hands value {} across {} -> {}, an edge the graph does not have",
                c.value, c.producer, c.consumer
            ),
        )));
        return;
    }
    if c.producer >= c.consumer {
        report.push(at(Diagnostic::error(
            RuleId::GraphOrphanTransition,
            format!(
                "handoff {} -> {} runs against topological order",
                c.producer, c.consumer
            ),
        )));
        return;
    }
    let Some(step) = program.steps.get(c.transition_step) else {
        report.push(
            at(Diagnostic::error(
                RuleId::GraphOrphanTransition,
                format!(
                    "transition step {} is out of range ({} steps)",
                    c.transition_step,
                    program.steps.len()
                ),
            ))
            .at_step(c.transition_step),
        );
        return;
    };
    let anchored = if c.piggybacked {
        step.node == Some(c.producer)
    } else {
        step.phase == Phase::Transition && step.node == Some(c.producer)
    };
    if !anchored {
        report.push(
            at(Diagnostic::error(
                RuleId::GraphOrphanTransition,
                format!(
                    "superstep {} (phase {:?}, node {:?}) is not node {}'s transition",
                    c.transition_step, step.phase, step.node, c.producer
                ),
            ))
            .at_step(c.transition_step),
        );
        return;
    }

    // GRAPH01 — layout handoff: both placements reconstruct the tensor.
    if c.producer_dtype_bytes != c.consumer_dtype_bytes {
        report.push(at(Diagnostic::error(
            RuleId::GraphLayoutHandoff,
            format!(
                "element size changes across the boundary: producer {} B, consumer {} B",
                c.producer_dtype_bytes, c.consumer_dtype_bytes
            ),
        )));
    }
    if c.dense_layout && c.producer_coverage_bytes() < c.tensor_bytes {
        report.push(at(Diagnostic::error(
            RuleId::GraphLayoutHandoff,
            format!(
                "producer placement holds {} B ({} cores x {} B) of a {} B tensor",
                c.producer_coverage_bytes(),
                c.producer_cores,
                c.producer_partition_bytes,
                c.tensor_bytes
            ),
        )
        .hint(
            "the output partitioning must cover the tensor before the all-to-all",
        )));
    }
    if c.dense_layout && c.consumer_coverage_bytes() < c.tensor_bytes {
        report.push(at(Diagnostic::error(
            RuleId::GraphLayoutHandoff,
            format!(
                "consumer slot {} expects {} B ({} cores x {} B) of a {} B tensor",
                c.consumer_slot,
                c.consumer_coverage_bytes(),
                c.consumer_cores,
                c.consumer_partition_bytes,
                c.tensor_bytes
            ),
        )
        .hint(
            "the input partitioning must reconstruct the tensor after the all-to-all",
        )));
    }

    // GRAPH03 — aggregate conservation.
    if c.transition_bytes != c.producer_coverage_bytes() {
        report.push(
            at(Diagnostic::error(
                RuleId::GraphByteConservation,
                format!(
                    "transition moves {} B but the producer presents {} B",
                    c.transition_bytes,
                    c.producer_coverage_bytes()
                ),
            ))
            .at_step(c.transition_step),
        );
    } else if c.dense_layout && c.transition_bytes < c.tensor_bytes {
        report.push(
            at(Diagnostic::error(
                RuleId::GraphByteConservation,
                format!(
                    "transition moves {} B, less than the {} B tensor",
                    c.transition_bytes, c.tensor_bytes
                ),
            ))
            .at_step(c.transition_step),
        );
    }

    // GRAPH02 — per-core conservation against the program's own summary.
    match &step.exchange_summary {
        Some(es) => {
            if es.max_core_out != c.producer_partition_bytes as u64
                || es.max_core_in != c.producer_partition_bytes as u64
            {
                report.push(
                    at(Diagnostic::error(
                        RuleId::GraphCoreConservation,
                        format!(
                            "per-core transition traffic out {} B / in {} B disagrees with \
                             the {} B partition leaving each producer core",
                            es.max_core_out, es.max_core_in, c.producer_partition_bytes
                        ),
                    ))
                    .at_step(c.transition_step),
                );
            }
            if es.active_cores != c.producer_cores {
                report.push(
                    at(Diagnostic::error(
                        RuleId::GraphCoreConservation,
                        format!(
                            "transition involves {} cores but the producer placed \
                             partitions on {}",
                            es.active_cores, c.producer_cores
                        ),
                    ))
                    .at_step(c.transition_step),
                );
            }
            if es.total_bytes != c.transition_bytes {
                report.push(
                    at(Diagnostic::error(
                        RuleId::GraphCoreConservation,
                        format!(
                            "superstep exchange moves {} B, contract claims {} B",
                            es.total_bytes, c.transition_bytes
                        ),
                    ))
                    .at_step(c.transition_step),
                );
            }
        }
        None => {
            if c.tensor_bytes > 0 {
                report.push(
                    at(Diagnostic::error(
                        RuleId::GraphCoreConservation,
                        format!(
                            "transition superstep {} moves no bytes for a {} B tensor",
                            c.transition_step, c.tensor_bytes
                        ),
                    ))
                    .at_step(c.transition_step),
                );
            }
        }
    }

    // GRAPH04 — handoff-window residency: the producer's resident output
    // partition and the consumer's setup prefetch co-exist on a core while
    // the all-to-all runs. Capacities already exclude the shift buffer and
    // any checkpoint staging reservation.
    let window = c
        .producer_partition_bytes
        .saturating_add(c.consumer_setup_bytes);
    if window > min_capacity {
        report.push(at(Diagnostic::error(
            RuleId::GraphResidency,
            format!(
                "handoff window needs {window} B/core ({} B producer output + {} B \
                 consumer setup) but the tightest core has {min_capacity} B",
                c.producer_partition_bytes, c.consumer_setup_bytes
            ),
        )
        .hint(
            "shrink the producer's output partition or defer the consumer's setup",
        )));
    }
}

/// Extracts fusion candidates from the boundary contracts alone.
///
/// An anchor is a compute-intensive node. From each anchor, walk forward
/// through elementwise glue; a candidate exists when the walk reaches
/// exactly one other anchor and no interior value escapes the region
/// (every interior producer/consumer stays inside). Memory-bound nodes
/// and leaking regions break chains.
fn fuse_candidates(contracts: &[BoundaryContract]) -> Vec<FuseCandidate> {
    // Node classes, as stated by the contracts (first statement wins; the
    // compiler emits consistent classes per node).
    let mut class: BTreeMap<usize, OpClass> = BTreeMap::new();
    for c in contracts {
        class.entry(c.producer).or_insert(c.producer_class);
        class.entry(c.consumer).or_insert(c.consumer_class);
    }
    let eligible = |n: usize| class.get(&n).is_some_and(|k| *k != OpClass::MemoryBound);
    let anchor = |n: usize| class.get(&n) == Some(&OpClass::ComputeIntensive);

    let mut out_edges: BTreeMap<usize, Vec<&BoundaryContract>> = BTreeMap::new();
    let mut in_edges: BTreeMap<usize, Vec<&BoundaryContract>> = BTreeMap::new();
    for c in contracts {
        out_edges.entry(c.producer).or_default().push(c);
        in_edges.entry(c.consumer).or_default().push(c);
    }

    let anchors: Vec<usize> = class.keys().copied().filter(|&n| anchor(n)).collect();

    let mut candidates = Vec::new();
    'anchors: for &a in &anchors {
        let mut interior: BTreeSet<usize> = BTreeSet::new();
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = vec![a];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        while let Some(n) = queue.pop() {
            if !seen.insert(n) {
                continue;
            }
            for c in out_edges.get(&n).map_or(&[][..], |v| v.as_slice()) {
                let m = c.consumer;
                if !eligible(m) {
                    // A memory-bound consumer leaks the value off the ring.
                    continue 'anchors;
                }
                if anchor(m) {
                    reached.insert(m);
                } else {
                    if interior.insert(m) && interior.len() > MAX_CHAIN_INTERIOR {
                        continue 'anchors;
                    }
                    queue.push(m);
                }
            }
        }
        // Exactly one downstream anchor, and a closed interior: every
        // interior node's inputs come from the region and all its outputs
        // stay in it (checked above by the BFS structure — inputs below).
        if reached.len() != 1 {
            continue;
        }
        let Some(&b) = reached.first() else { continue };
        let region_ok = interior.iter().all(|&m| {
            in_edges.get(&m).is_some_and(|ins| {
                ins.iter()
                    .all(|c| c.producer == a || interior.contains(&c.producer))
            })
        });
        if !region_ok {
            continue;
        }
        // Savings: each chain producer's transition is elided once, however
        // many interior consumers it feeds.
        let mut elided: BTreeMap<usize, (u64, Option<usize>)> = BTreeMap::new();
        let mut pace = false;
        for c in contracts {
            let from_chain = c.producer == a || interior.contains(&c.producer);
            let to_chain = c.consumer == b || interior.contains(&c.consumer);
            if !(from_chain && to_chain) {
                continue;
            }
            let step = (!c.piggybacked).then_some(c.transition_step);
            elided.insert(c.producer, (c.transition_bytes, step));
            if c.producer == a || c.consumer == b {
                // Anchor-side pace compatibility: the producing anchor's
                // rings and the consuming anchor's slot rings must agree.
                pace = pace
                    || (c.producer_rings > 0
                        && c.producer_rings == c.consumer_rings
                        && c.producer_pace == c.consumer_pace);
            }
        }
        if elided.is_empty() {
            continue;
        }
        let bytes_saved: u64 = elided.values().map(|(b, _)| *b).sum();
        let dedicated: BTreeSet<usize> = elided.values().filter_map(|(_, s)| *s).collect();
        let mut chain = vec![a];
        chain.extend(interior.iter().copied());
        chain.push(b);
        candidates.push(FuseCandidate {
            chain,
            bytes_saved,
            steps_saved: dedicated.len(),
            pace_compatible: pace,
        });
    }
    candidates
}
