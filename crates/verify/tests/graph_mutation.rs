//! Mutation fuzzing of the graph-level verifier: build a clean three-node
//! chain (matmul → elementwise → matmul) with its boundary contracts and
//! transition supersteps, seed one targeted corruption at a time, and
//! require that each mutant is refuted by exactly the matching GRAPH rule
//! while every per-operator rule stays silent — the whole point of the
//! graph layer is that these bugs are invisible to the per-program pass.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_device::boundary::{BoundaryContract, GraphEdge, OpClass};
use t10_device::program::{ExchangeSummary, Phase, Program, Superstep};
use t10_device::ChipSpec;
use t10_verify::{graph, Verifier};

fn spec4() -> ChipSpec {
    let mut spec = ChipSpec::ipu_with_cores(4);
    spec.sram_per_core = 4096;
    spec.shift_buffer = 256;
    spec
}

fn summary(total: u64, per_core: u64) -> ExchangeSummary {
    ExchangeSummary {
        total_bytes: total,
        max_core_out: per_core,
        max_core_in: per_core,
        cross_chip_bytes: 0,
        offchip_bytes: 0,
        active_cores: 4,
        max_core_messages: 4,
    }
}

/// Node 0 (matmul) → value 10 → node 1 (elementwise) → value 11 →
/// node 2 (matmul), with a dedicated transition superstep per boundary.
fn fixture() -> (Program, Vec<GraphEdge>, Vec<BoundaryContract>) {
    let mut p = Program::new();
    p.steps.push(Superstep::new(Some(0), Phase::Execute));
    let mut t0 = Superstep::new(Some(0), Phase::Transition);
    t0.exchange_summary = Some(summary(256, 64));
    p.steps.push(t0);
    p.steps.push(Superstep::new(Some(1), Phase::Execute));
    let mut t1 = Superstep::new(Some(1), Phase::Transition);
    t1.exchange_summary = Some(summary(256, 64));
    p.steps.push(t1);
    p.steps.push(Superstep::new(Some(2), Phase::Execute));

    let edges = vec![
        GraphEdge {
            producer: 0,
            consumer: 1,
            value: 10,
            consumer_slot: 0,
            tensor_bytes: 256,
        },
        GraphEdge {
            producer: 1,
            consumer: 2,
            value: 11,
            consumer_slot: 0,
            tensor_bytes: 256,
        },
    ];
    let contract = |producer, consumer, value, step, pclass, cclass| BoundaryContract {
        producer,
        consumer,
        value,
        tensor_bytes: 256,
        producer_dtype_bytes: 2,
        consumer_dtype_bytes: 2,
        producer_cores: 4,
        producer_partition_bytes: 64,
        producer_rings: 2,
        producer_pace: 2,
        consumer_cores: 4,
        consumer_slot: 0,
        consumer_partition_bytes: 64,
        consumer_rings: 2,
        consumer_pace: 2,
        consumer_per_shift_bytes: 32,
        consumer_setup_bytes: 0,
        transition_step: step,
        piggybacked: false,
        transition_bytes: 256,
        dense_layout: true,
        producer_class: pclass,
        consumer_class: cclass,
    };
    let contracts = vec![
        contract(0, 1, 10, 1, OpClass::ComputeIntensive, OpClass::Elementwise),
        contract(1, 2, 11, 3, OpClass::Elementwise, OpClass::ComputeIntensive),
    ];
    (p, edges, contracts)
}

/// Runs the graph pass and asserts exactly `rules` are violated while the
/// per-operator structural pass stays clean.
fn expect_exactly(
    rules: &[&str],
    p: &Program,
    edges: &[GraphEdge],
    contracts: &[BoundaryContract],
) -> graph::GraphAnalysis {
    let v = Verifier::new(&spec4());
    let per_op = v.verify_program(p);
    assert!(
        per_op.is_ok(),
        "per-operator rules must stay silent, got {:?}",
        per_op.diagnostics
    );
    let analysis = graph::check(&v, p, edges, contracts);
    assert_eq!(
        analysis.report.violated_rules(),
        rules,
        "diagnostics: {:?}",
        analysis.report.diagnostics
    );
    analysis
}

#[test]
fn clean_chain_proves_out() {
    let (p, edges, contracts) = fixture();
    let analysis = expect_exactly(&[], &p, &edges, &contracts);
    assert_eq!(analysis.edges_checked, 2);
    assert!(analysis.report.is_ok());
}

#[test]
fn swapped_boundary_layout_is_graph01() {
    // The consumer's plan expects a quarter of the partition it should:
    // the handoff can no longer reconstruct the tensor.
    let (p, edges, mut contracts) = fixture();
    contracts[0].consumer_partition_bytes = 32;
    expect_exactly(&["GRAPH01"], &p, &edges, &contracts);
}

#[test]
fn inflated_transition_bytes_is_graph02() {
    // The program's transition superstep moves more than the contract's
    // per-core partitions — inflated consistently so COST02 stays silent.
    let (mut p, edges, contracts) = fixture();
    p.steps[1].exchange_summary = Some(summary(320, 80));
    expect_exactly(&["GRAPH02"], &p, &edges, &contracts);
}

#[test]
fn missing_transition_traffic_is_graph02() {
    let (mut p, edges, contracts) = fixture();
    p.steps[1].exchange_summary = None;
    expect_exactly(&["GRAPH02"], &p, &edges, &contracts);
}

#[test]
fn aggregate_mismatch_is_graph03() {
    // Contract and summary agree per core (GRAPH02 silent) but the claimed
    // partitions no longer aggregate to the transition's total.
    let (mut p, edges, mut contracts) = fixture();
    contracts[0].producer_partition_bytes = 128;
    p.steps[1].exchange_summary = Some(ExchangeSummary {
        max_core_out: 128,
        max_core_in: 128,
        ..summary(256, 64)
    });
    expect_exactly(&["GRAPH03"], &p, &edges, &contracts);
}

#[test]
fn oversized_handoff_window_is_graph04() {
    let (p, edges, mut contracts) = fixture();
    contracts[0].consumer_setup_bytes = 4000; // 64 + 4000 > 4096 - 256
    expect_exactly(&["GRAPH04"], &p, &edges, &contracts);
}

#[test]
fn dropped_edge_is_graph05() {
    let (p, edges, mut contracts) = fixture();
    contracts.remove(1);
    expect_exactly(&["GRAPH05"], &p, &edges, &contracts);
}

#[test]
fn double_handoff_is_graph06() {
    let (p, edges, mut contracts) = fixture();
    let dup = contracts[0].clone();
    contracts.push(dup);
    expect_exactly(&["GRAPH06"], &p, &edges, &contracts);
}

#[test]
fn orphan_transition_is_graph07() {
    // An extra contract for an edge the graph does not have.
    let (p, edges, mut contracts) = fixture();
    let mut orphan = contracts[0].clone();
    orphan.consumer = 2; // (0, 2, 10) is not a dataflow edge
    contracts.push(orphan);
    expect_exactly(&["GRAPH07"], &p, &edges, &contracts);
}

#[test]
fn wrong_superstep_anchor_is_graph07() {
    // The contract points at node 1's transition instead of its own.
    let (p, edges, mut contracts) = fixture();
    contracts[0].transition_step = 3;
    expect_exactly(&["GRAPH07"], &p, &edges, &contracts);
}

#[test]
fn malformed_contract_is_graph08() {
    let (p, edges, mut contracts) = fixture();
    contracts[0].producer_cores = 0;
    expect_exactly(&["GRAPH08"], &p, &edges, &contracts);
}

#[test]
fn same_value_in_two_slots_is_two_handoffs_not_a_duplicate() {
    // Squaring via mul(x, x): node 2 consumes value 11 in both slots.
    // Each slot is its own edge and contract; GRAPH06 must stay silent.
    let (p, mut edges, mut contracts) = fixture();
    edges.push(GraphEdge {
        producer: 1,
        consumer: 2,
        value: 11,
        consumer_slot: 1,
        tensor_bytes: 256,
    });
    let mut second_slot = contracts[1].clone();
    second_slot.consumer_slot = 1;
    contracts.push(second_slot);
    expect_exactly(&[], &p, &edges, &contracts);
}

#[test]
fn windowed_layouts_skip_tensor_coverage_but_keep_placement_rules() {
    // A conv-style (non-dense) boundary: per-byte coverage arithmetic is
    // inexact, so under-coverage of the logical tensor is not a finding…
    let (p, edges, mut contracts) = fixture();
    contracts[0].dense_layout = false;
    contracts[0].consumer_partition_bytes = 32; // GRAPH01 if dense
    expect_exactly(&[], &p, &edges, &contracts);
    // …but placement-granularity conservation still is: a transition that
    // disagrees with partition x cores fires GRAPH03 regardless.
    contracts[0].transition_bytes = 512;
    let v = Verifier::new(&spec4());
    let analysis = graph::check(&v, &p, &edges, &contracts);
    assert!(analysis.report.violated_rules().contains(&"GRAPH03"));
}

#[test]
fn fuse_chain_surfaces_with_savings() {
    let (p, edges, contracts) = fixture();
    let analysis = expect_exactly(&[], &p, &edges, &contracts);
    assert_eq!(analysis.candidates.len(), 1);
    let c = &analysis.candidates[0];
    assert_eq!(c.chain, vec![0, 1, 2]);
    assert_eq!(c.bytes_saved, 512); // both boundary transitions elided
    assert_eq!(c.steps_saved, 2); // both were dedicated supersteps
    assert!(c.pace_compatible);
    let diags = analysis.fuse_diagnostics();
    let rules: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
    assert_eq!(rules, vec!["FUSE01", "FUSE02", "FUSE03"]);
    assert!(diags
        .iter()
        .all(|d| d.severity == t10_verify::Severity::Warning));
    assert!(diags.iter().all(|d| d.location.edge == Some((0, 2))));
}

#[test]
fn pace_mismatch_drops_fuse02_only() {
    let (p, edges, mut contracts) = fixture();
    contracts[0].producer_pace = 4;
    contracts[1].consumer_pace = 4;
    let analysis = expect_exactly(&[], &p, &edges, &contracts);
    assert_eq!(analysis.candidates.len(), 1);
    assert!(!analysis.candidates[0].pace_compatible);
    let rules: Vec<&str> = analysis
        .fuse_diagnostics()
        .iter()
        .map(|d| d.rule.id())
        .collect();
    assert_eq!(rules, vec!["FUSE01", "FUSE03"]);
}

#[test]
fn memory_bound_consumer_breaks_the_chain() {
    let (p, edges, mut contracts) = fixture();
    contracts[1].consumer_class = OpClass::MemoryBound;
    let analysis = expect_exactly(&[], &p, &edges, &contracts);
    assert!(analysis.candidates.is_empty());
}

#[test]
fn graph_pass_records_trace_span() {
    let (p, edges, contracts) = fixture();
    let trace = t10_trace::Trace::logical();
    let v = Verifier::new(&spec4()).with_trace(trace.clone());
    let _ = graph::check(&v, &p, &edges, &contracts);
    let events = trace.snapshot();
    assert!(events.iter().any(|e| e.name == "verify_graph"));
}
