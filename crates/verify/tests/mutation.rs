//! Mutation fuzzing of the static verifier: lower a real plan to a real
//! device program, seed one targeted corruption at a time, and require that
//! the verifier refutes each mutant with exactly the matching rule — no
//! silence, no shotgun of unrelated findings.
//!
//! The base artifact is the paper's Figure 7 shape (a 2×6 by 6×3 matmul on
//! six cores with two nested rotation levels), small enough to reason about
//! by hand and rich enough to exercise every rule family. A final
//! differential check ties the verifier to the simulator's accounting: the
//! clean artifact both proves out and executes; the capacity mutant is
//! refused by both.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_core::{lower, verify_lowering, verify_plan};
use t10_device::program::{Phase, Program, ShiftKind, ShiftOp, Superstep};
use t10_device::ChipSpec;
use t10_ir::{builders, Operator, Tensor};
use t10_sim::{FaultPlan, Simulator, SimulatorMode};
use t10_verify::Verifier;

fn fig7_op() -> Operator {
    builders::matmul(0, 1, 2, 2, 6, 3).unwrap()
}

fn fig7_plan(op: &Operator) -> Plan {
    Plan::build(
        op,
        &[4, 4],
        4,
        PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        },
    )
    .unwrap()
}

fn spec6() -> ChipSpec {
    let mut spec = ChipSpec::ipu_with_cores(6);
    spec.sram_per_core = 4096;
    spec.shift_buffer = 256;
    spec
}

fn lowered() -> (Operator, Plan, lower::FunctionalLowering) {
    let op = fig7_op();
    let plan = fig7_plan(&op);
    let f = lower::lower_functional(&op, &plan).unwrap();
    (op, plan, f)
}

/// The rotation step a mutation should target: the first superstep with a
/// non-empty exchange phase.
fn rotate_step(p: &Program) -> usize {
    p.steps
        .iter()
        .position(|s| !s.exchange.is_empty())
        .expect("the fixture rotates")
}

#[test]
fn clean_artifact_proves_out_everywhere() {
    let (op, plan, f) = lowered();
    let spec = spec6();
    let report = Verifier::new(&spec).verify_program(&f.program);
    assert!(report.is_ok(), "program: {:?}", report.diagnostics);
    let cap = spec.sram_per_core - spec.shift_buffer;
    let report = verify_plan(&op, &plan, cap, spec.num_cores);
    assert!(report.is_ok(), "plan: {:?}", report.diagnostics);
    let report = verify_lowering(&op, &plan, &f);
    assert!(report.is_ok(), "lowering: {:?}", report.diagnostics);
}

#[test]
fn shrunk_sram_is_cap02() {
    let (_, _, f) = lowered();
    let spec = spec6();
    // Core 2 keeps 1% of its SRAM: the fixture's three ~24–96 B buffers no
    // longer fit the faulted capacity.
    let faults = FaultPlan::new(6).shrink_sram(2, 0.01);
    let report = Verifier::new(&spec)
        .with_faults(&faults)
        .verify_program(&f.program);
    assert_eq!(report.violated_rules(), vec!["CAP02"]);
    // Every finding names the shrunk core.
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.location.core == Some(2)));
}

#[test]
fn dropped_receive_is_ring05() {
    let (_, _, mut f) = lowered();
    let step = rotate_step(&f.program);
    f.program.steps[step].exchange.remove(0);
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert_eq!(report.violated_rules(), vec!["RING05"]);
}

#[test]
fn duplicated_writer_is_bsp01() {
    let (_, _, mut f) = lowered();
    let step = rotate_step(&f.program);
    let dup = f.program.steps[step].exchange[0];
    f.program.steps[step].exchange.push(dup);
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"BSP01"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn broken_ring_is_ring07() {
    let (op, plan, mut f) = lowered();
    // Swap the destinations of the first two rotations: every buffer still
    // has rotate in/out degree 1 (so the program-level degree rules stay
    // silent), but the data now flows against the placement's sigma.
    let step = rotate_step(&f.program);
    let (a, b) = (
        f.program.steps[step].exchange[0].dst,
        f.program.steps[step].exchange[1].dst,
    );
    f.program.steps[step].exchange[0].dst = b;
    f.program.steps[step].exchange[1].dst = a;
    let degree_rules = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        !degree_rules.violated_rules().contains(&"RING04")
            && !degree_rules.violated_rules().contains(&"RING05"),
        "the mutation must preserve ring degrees, got {:?}",
        degree_rules.violated_rules()
    );
    let report = verify_lowering(&op, &plan, &f);
    assert_eq!(report.violated_rules(), vec!["RING07"]);
}

#[test]
fn dangling_buffer_reference_is_bsp02() {
    let (_, _, mut f) = lowered();
    let step = rotate_step(&f.program);
    f.program.steps[step].exchange[0].src = 9999;
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"BSP02"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn out_of_range_core_is_cap01() {
    let (_, _, mut f) = lowered();
    f.program.buffers[0].core = 77;
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"CAP01"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn pace_mismatch_is_ring06() {
    let (_, _, mut f) = lowered();
    let step = rotate_step(&f.program);
    if let ShiftKind::RotateSlices { dim, .. } = f.program.steps[step].exchange[0].kind {
        f.program.steps[step].exchange[0].kind = ShiftKind::RotateSlices { dim, count: 1000 };
    } else {
        panic!("fixture's exchange is a rotation");
    }
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"RING06"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn compute_operand_shift_target_overlap_is_bsp03() {
    let (_, _, mut f) = lowered();
    // Redirect one rotation into a buffer a compute vertex writes in the
    // same superstep: the double-buffering discipline is gone.
    let step = rotate_step(&f.program);
    let victim = f.program.steps[step].compute[0]
        .func
        .as_ref()
        .unwrap()
        .output;
    let src = f.program.steps[step].exchange[0].src;
    f.program.steps[step].exchange.push(ShiftOp {
        src,
        dst: victim,
        kind: ShiftKind::Copy,
    });
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"BSP03"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn corrupted_rotating_pace_is_ring01() {
    let (op, mut plan, _) = lowered();
    plan.rotations[0].rp = 5; // does not divide the k-tile
    let spec = spec6();
    let report = verify_plan(&op, &plan, spec.sram_per_core, spec.num_cores);
    assert_eq!(report.violated_rules(), vec!["RING01"]);
}

#[test]
fn plan_footprint_overflow_is_cap03() {
    let (op, plan, _) = lowered();
    let report = verify_plan(&op, &plan, 1, 6);
    assert_eq!(report.violated_rules(), vec!["CAP03"]);
}

#[test]
fn corrupted_summary_is_cost02() {
    let (_, _, mut f) = lowered();
    let step = rotate_step(&f.program);
    f.program.steps[step].exchange_summary = Some(t10_device::program::ExchangeSummary {
        total_bytes: 1, // the explicit shifts move far more
        max_core_out: 1,
        max_core_in: 1,
        cross_chip_bytes: 0,
        offchip_bytes: 0,
        active_cores: 6,
        max_core_messages: 1,
    });
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert_eq!(report.violated_rules(), vec!["COST02"]);
}

#[test]
fn rotation_fan_out_is_ring04() {
    let (_, _, mut f) = lowered();
    // A second rotation out of the same source: out-degree 2. The extra
    // shift targets a fresh buffer so no writer is duplicated.
    let step = rotate_step(&f.program);
    let first = f.program.steps[step].exchange[0];
    let spare = f.program.buffers[first.dst].clone();
    let spare_id = f.program.add_buffer(spare);
    f.program.steps[step].exchange.push(ShiftOp {
        src: first.src,
        dst: spare_id,
        kind: first.kind,
    });
    let report = Verifier::new(&spec6()).verify_program(&f.program);
    assert!(
        report.violated_rules().contains(&"RING04"),
        "got {:?}",
        report.violated_rules()
    );
}

#[test]
fn missing_output_root_is_bsp04() {
    let (op, plan, mut f) = lowered();
    f.output_buffers.pop();
    let report = verify_lowering(&op, &plan, &f);
    assert_eq!(report.violated_rules(), vec!["BSP04"]);
}

/// Differential anchor: the verifier's verdict and the simulator's behavior
/// agree on both sides. The clean artifact executes to completion; the
/// capacity mutant the verifier refutes is also refused by the simulator's
/// own memory accounting at load.
#[test]
fn verifier_verdict_matches_simulator_accounting() {
    let (op, _, f) = lowered();
    let spec = spec6();
    assert!(Verifier::new(&spec).verify_program(&f.program).is_ok());
    let mut sim = Simulator::new(spec.clone(), SimulatorMode::Functional);
    sim.load(&f.program).unwrap();
    let a = Tensor::pattern(vec![2, 6], 0.3);
    let b = Tensor::pattern(vec![6, 3], 0.7);
    for (slot, t) in [a, b].iter().enumerate() {
        for &id in &f.input_buffers[slot] {
            sim.bind(id, t).unwrap();
        }
    }
    sim.run_loaded(&f.program).unwrap();
    let out = sim
        .extract(&f.output_buffers, &op.expr.output_shape())
        .unwrap();
    assert_eq!(out.shape(), &[2, 3]);

    let faults = FaultPlan::new(6).shrink_sram(0, 0.001);
    let refuted = Verifier::new(&spec)
        .with_faults(&faults)
        .verify_program(&f.program);
    assert_eq!(refuted.violated_rules(), vec!["CAP02"]);
    let mut sim = Simulator::new(spec, SimulatorMode::Functional)
        .with_fault_plan(faults)
        .unwrap();
    assert!(
        sim.load(&f.program).is_err(),
        "the simulator's accounting must refuse what the verifier refuted"
    );
}

/// An empty program is vacuously valid under every rule.
#[test]
fn empty_program_is_vacuously_ok() {
    let p = Program::new();
    let report = Verifier::new(&spec6()).verify_program(&p);
    assert!(report.is_ok());
    assert_eq!(report.stats.steps, 0);
}

/// Rule coverage bookkeeping: every rule family the inventory declares has
/// a refuting mutation — CAP/RING/BSP/COST above, PROVE/DF in the
/// `t10-prove` unit suite and the prover-targeted corruption tests in
/// `tests/integration_prove.rs`, GRAPH/FUSE in `tests/graph_mutation.rs`,
/// SYM in `t10-core`'s `tests/symbolic_mutation.rs` family-certificate
/// corruption suite.
#[test]
fn every_rule_family_has_a_refuting_mutation() {
    let families: std::collections::BTreeSet<&str> = t10_verify::RuleId::ALL
        .iter()
        .map(|r| r.id().split(|c: char| c.is_ascii_digit()).next().unwrap())
        .collect();
    assert_eq!(
        families.into_iter().collect::<Vec<_>>(),
        vec!["BSP", "CAP", "COST", "DF", "FUSE", "GRAPH", "PROVE", "RING", "SYM"]
    );
    // Stable ids, no duplicates; STRUCTURAL ∪ SEMANTIC ∪ GRAPH ∪ SYMBOLIC
    // partitions ALL (disjointness is proved in the diag unit suite).
    let ids: std::collections::BTreeSet<&str> =
        t10_verify::RuleId::ALL.iter().map(|r| r.id()).collect();
    assert_eq!(ids.len(), t10_verify::RuleId::ALL.len());
    assert_eq!(
        t10_verify::RuleId::STRUCTURAL.len()
            + t10_verify::RuleId::SEMANTIC.len()
            + t10_verify::RuleId::GRAPH.len()
            + t10_verify::RuleId::SYMBOLIC.len(),
        t10_verify::RuleId::ALL.len()
    );
    for r in t10_verify::RuleId::STRUCTURAL {
        assert!(
            !t10_verify::RuleId::SEMANTIC.contains(&r),
            "{} in both",
            r.id()
        );
    }
}

/// The rule registry is documented: every diagnostic id in the inventory
/// (CAP/RING/BSP/COST/PROVE/DF) appears in DESIGN.md's rule tables, with a
/// stable one-line summary and paper anchor. A rule added without
/// documentation fails here.
#[test]
fn every_rule_id_is_documented_in_design_md() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md at the repo root");
    for r in t10_verify::RuleId::ALL {
        assert!(
            design.contains(&format!("| {} |", r.id())),
            "rule {} ({}) is not documented in DESIGN.md's rule inventory",
            r.id(),
            r.title()
        );
        assert!(!r.title().is_empty() && !r.paper().is_empty());
    }
}

/// A superstep whose exchange phase is a plain `Copy` into a fresh buffer
/// (a reduction send) passes the ring rules: degree accounting applies only
/// to rotations.
#[test]
fn reduction_copies_do_not_trip_ring_rules() {
    let (_, _, f) = lowered();
    let mut p = f.program.clone();
    let mut ss = Superstep::new(None, Phase::Execute);
    ss.exchange.push(ShiftOp {
        src: 0,
        dst: 1,
        kind: ShiftKind::Accumulate {
            reduce: t10_ir::Reduce::Sum,
        },
    });
    p.steps.push(ss);
    let report = Verifier::new(&spec6()).verify_program(&p);
    assert!(report.is_ok(), "diagnostics: {:?}", report.diagnostics);
}
