//! Deterministic log2-bucketed latency histograms.
//!
//! A [`HistogramCore`] is a fixed array of power-of-two buckets over `u64`
//! observations (microseconds, by convention): bucket 0 holds the value 0,
//! bucket `b` holds values in `[2^(b-1), 2^b - 1]`, and the last bucket is
//! the `+Inf` overflow lane. Bucketing is pure integer arithmetic
//! (`leading_zeros`), so the same observation stream always produces the
//! same buckets on every platform — the property the byte-identical
//! snapshot guarantee rests on. All mutation is lock-free atomics; the sum
//! saturates instead of wrapping so a hostile observation stream can never
//! make totals go backwards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0, 38 power-of-two lanes (up to ~2^38 µs ≈ 76
/// hours), and the `+Inf` overflow lane. Fixed so snapshots from any two
/// processes merge bucket-for-bucket.
pub const BUCKETS: usize = 40;

/// The bucket index an observation lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the overflow
/// lane): bucket 0 covers `{0}`, bucket `b` covers `[2^(b-1), 2^b - 1]`.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// The live, lock-free histogram behind a registry handle.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    /// A histogram with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Count and sum saturate at `u64::MAX`
    /// rather than wrapping.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // `fetch_add` wraps; saturate explicitly so totals are monotonic.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: bucket counts, total count, and (saturating) sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one (bucket-wise saturating
    /// addition). Merging is commutative and associative:
    /// `merge(a, b) == merge(b, a)`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The exact quantile under the bucketing: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest observation.
    /// Deterministic integer arithmetic throughout — same buckets, same
    /// answer, on every platform. Returns `None` with zero observations.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without floating-point rounding surprises for
        // counts below 2^53; clamp to [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        // count says there are observations but the buckets disagree —
        // only reachable through a hand-forged snapshot; answer +Inf lane.
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean observed value (0 with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations with values strictly greater than `threshold`,
    /// counting whole buckets: a bucket is "over" iff its upper bound
    /// exceeds the threshold. Conservative for SLO attainment (a boundary
    /// bucket counts against the objective), and exact whenever the
    /// threshold is a bucket boundary (`2^k - 1`).
    pub fn count_over(&self, threshold: u64) -> u64 {
        let mut over = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if bucket_upper_bound(i) > threshold {
                over = over.saturating_add(c);
            }
        }
        over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every representable value lands in the bucket whose bound covers
        // it: bound(index(v)) >= v and (for non-overflow lanes) the
        // previous bucket's bound is below v.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 20, (1 << 38) + 5] {
            let i = bucket_index(v);
            assert!(bucket_upper_bound(i) >= v, "{v}");
            if i > 0 && i < BUCKETS - 1 {
                assert!(bucket_upper_bound(i - 1) < v, "{v}");
            }
        }
    }

    #[test]
    fn zero_observations() {
        let h = HistogramCore::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count_over(0), 0);
    }

    #[test]
    fn single_bucket_percentiles() {
        // Every observation in one bucket: all percentiles answer that
        // bucket's bound.
        let h = HistogramCore::new();
        for _ in 0..100 {
            h.observe(5); // bucket [4,7]
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 500);
        assert_eq!(s.p50(), Some(7));
        assert_eq!(s.p90(), Some(7));
        assert_eq!(s.p99(), Some(7));
        assert_eq!(s.quantile(0.0), Some(7));
        assert_eq!(s.quantile(1.0), Some(7));
    }

    #[test]
    fn percentiles_split_across_buckets() {
        let h = HistogramCore::new();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(1000); // bucket [512,1023]
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(1));
        assert_eq!(s.p90(), Some(1));
        assert_eq!(s.p99(), Some(1023));
        assert_eq!(s.count_over(1), 10);
        assert_eq!(s.count_over(1023), 0);
    }

    #[test]
    fn u64_overflow_saturates() {
        let h = HistogramCore::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(7);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        // Merging saturated snapshots saturates too.
        let mut a = s;
        a.merge(&s);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.count, 6);
    }

    #[test]
    fn merge_is_commutative() {
        let ha = HistogramCore::new();
        let hb = HistogramCore::new();
        for v in [0u64, 1, 3, 900, 1 << 30] {
            ha.observe(v);
        }
        for v in [2u64, 2, 1 << 12, u64::MAX] {
            hb.observe(v);
        }
        let (a, b) = (ha.snapshot(), hb.snapshot());
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge(a,b) == merge(b,a)");
        assert_eq!(ab.count, 9);
    }
}
