//! Live service telemetry for the T10 stack (t10-metrics).
//!
//! A low-overhead typed metric [`Registry`] — monotonic [`Counter`]s,
//! [`Gauge`]s, and deterministic log2-bucketed latency [`Histogram`]s with
//! exact p50/p90/p99 extraction — threaded through every serving-path
//! layer:
//!
//! * **`t10 serve`** records per-request end-to-end and queue-wait latency
//!   histograms, admission accept/reject/degrade counters by reason, live
//!   queue-depth and occupancy gauges, and per-tier compile latency;
//! * **t10-store** counts cache hits, misses, records, and quarantines by
//!   failure class;
//! * **the compiler** records per-operator search latency, warm-vs-cold
//!   resolution counters, and parallel-search utilization;
//! * **recovery** counts retries, rollbacks, and recompiles, and times
//!   recompiles.
//!
//! # Clock domains
//!
//! Like [`t10_trace::Trace`], a registry owns one of two clocks, read via
//! [`Registry::now_us`]:
//!
//! * **wall** — monotonic microseconds since creation, for real latency;
//! * **logical** — a counter incremented on every read. Durations become
//!   deterministic tick deltas, so same-seed runs produce **byte-identical
//!   snapshots** — the property `t10 serve --metrics-clock logical` and the
//!   chaos campaign's embedded snapshots rely on.
//!
//! Instrumented layers must only read the clock from deterministic call
//! sites (single-threaded, fixed order) for the guarantee to hold; worker
//! threads measure with [`std::time::Instant`] and report wall-gated
//! metrics instead (see [`Registry::is_wall`]).
//!
//! # Cost when disabled
//!
//! [`Registry::disabled`] (also [`Default`]) allocates nothing; every
//! handle it vends is a no-op and every record call is a branch on an
//! `Option`, mirroring [`t10_trace::Trace::disabled`].
//!
//! # Exposition
//!
//! [`Registry::snapshot`] freezes everything into a mergeable
//! [`Snapshot`], rendered as a sorted-key JSON document (schema
//! `t10.metrics.v1`, [`Snapshot::to_json`]) or Prometheus text exposition
//! ([`prometheus::render`]). [`slo`] evaluates availability and latency
//! objectives (with error-budget burn rates) over a snapshot — the engine
//! behind `t10 stats`.

#![cfg_attr(test, allow(clippy::unwrap_used))]
// Bucket arrays are fixed-size and index arithmetic is bounds-clamped at
// construction; the exposition writers iterate collections they sized.
#![allow(clippy::indexing_slicing)]

pub mod histogram;
pub mod names;
pub mod prometheus;
pub mod slo;
pub mod snapshot;

pub use histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
pub use slo::{SloConfig, SloReport, SloRow};
pub use snapshot::Snapshot;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use histogram::HistogramCore;

/// A metric's identity: name plus sorted `(label, value)` pairs.
///
/// Ordering is lexicographic on `(name, labels)`, which fixes the order of
/// every exposition format.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`t10_<layer>_<noun>_<unit>` by convention).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// The flat `name{k="v",...}` form used as the snapshot JSON key and
    /// the Prometheus series name.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::with_capacity(self.name.len() + 16 * self.labels.len());
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            // Label values are plain identifiers throughout the stack;
            // escape the JSON-significant characters anyway.
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Parses the flat `name{k="v",...}` form back into a key (inverse of
    /// [`MetricKey::render`] for the escape-free labels the stack emits).
    pub fn parse(flat: &str) -> Self {
        let Some(brace) = flat.find('{') else {
            return Self {
                name: flat.to_string(),
                labels: Vec::new(),
            };
        };
        let name = flat[..brace].to_string();
        let body = flat[brace + 1..].trim_end_matches('}');
        let mut labels = Vec::new();
        for pair in body.split(',') {
            if let Some((k, v)) = pair.split_once('=') {
                labels.push((k.to_string(), v.trim_matches('"').to_string()));
            }
        }
        labels.sort();
        Self { name, labels }
    }
}

/// The registry clock: wall microseconds or a deterministic logical
/// counter (mirroring `t10-trace`'s split).
#[derive(Debug)]
enum Clock {
    Wall(Instant),
    Logical(AtomicU64),
}

#[derive(Debug, Default)]
struct Inner {
    clock: Option<Clock>,
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistogramCore>>>,
}

/// A shared, cloneable metric registry. Cloning is cheap (an `Arc`); all
/// clones feed the same metrics. The disabled registry holds nothing.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A no-op registry: nothing is allocated, nothing is recorded.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled registry with a monotonic wall clock.
    pub fn wall() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock: Some(Clock::Wall(Instant::now())),
                ..Inner::default()
            })),
        }
    }

    /// An enabled registry whose clock is a logical counter: every
    /// [`Registry::now_us`] read returns the next integer, so durations are
    /// deterministic tick deltas and snapshots are byte-identical across
    /// same-seed runs.
    pub fn logical() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock: Some(Clock::Logical(AtomicU64::new(0))),
                ..Inner::default()
            })),
        }
    }

    /// Whether metrics are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the clock is wall time. Wall-only metrics (worker-thread
    /// latencies measured off the registry clock) gate on this so logical
    /// snapshots stay deterministic.
    pub fn is_wall(&self) -> bool {
        matches!(
            self.inner.as_deref(),
            Some(Inner {
                clock: Some(Clock::Wall(_)),
                ..
            })
        )
    }

    /// The clock name for the snapshot header.
    pub fn clock_name(&self) -> &'static str {
        match self.inner.as_deref() {
            None => "disabled",
            Some(Inner {
                clock: Some(Clock::Wall(_)),
                ..
            }) => "wall",
            Some(_) => "logical",
        }
    }

    /// The current timestamp in (wall or logical) microseconds; 0 when
    /// disabled. Logical reads advance the counter.
    pub fn now_us(&self) -> u64 {
        match self.inner.as_deref().and_then(|i| i.clock.as_ref()) {
            None => 0,
            Some(Clock::Wall(t0)) => t0.elapsed().as_micros() as u64,
            Some(Clock::Logical(n)) => n.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A counter handle (created at zero on first use). Handles are cheap
    /// to clone and lock-free to update; fetch them once per hot path.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                let key = MetricKey::new(name, labels);
                let mut map = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(key).or_default().clone()
            }),
        }
    }

    /// A gauge handle (created at zero on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                let key = MetricKey::new(name, labels);
                let mut map = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(key).or_default().clone()
            }),
        }
    }

    /// A histogram handle (created empty on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram {
            core: self.inner.as_ref().map(|inner| {
                let key = MetricKey::new(name, labels);
                let mut map = inner.histograms.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(key).or_default().clone()
            }),
        }
    }

    /// Freezes every metric into a mergeable, serializable [`Snapshot`].
    /// Taking a snapshot never reads the clock, so it cannot perturb
    /// logical-clock determinism.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new(self.clock_name());
        let Some(inner) = &self.inner else {
            return snap;
        };
        {
            let map = inner.counters.lock().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in map.iter() {
                snap.counters
                    .insert(key.clone(), cell.load(Ordering::Relaxed));
            }
        }
        {
            let map = inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in map.iter() {
                snap.gauges
                    .insert(key.clone(), cell.load(Ordering::Relaxed));
            }
        }
        {
            let map = inner.histograms.lock().unwrap_or_else(|e| e.into_inner());
            for (key, core) in map.iter() {
                snap.histograms.insert(key.clone(), core.snapshot());
            }
        }
        snap
    }
}

/// A monotonic counter handle. No-op when vended by a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a settable signed level (queue depth, occupancy).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises the level to `v` if it is currently lower (peak tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A histogram handle over `u64` observations (microseconds by
/// convention).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.core {
            core.observe(value);
        }
    }

    /// Current state (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.as_ref().map(|c| c.snapshot()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        assert!(!r.enabled());
        assert_eq!(r.now_us(), 0);
        let c = r.counter("x_total", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = r.gauge("x_depth", &[]);
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = r.histogram("x_us", &[]);
        h.observe(5);
        assert_eq!(h.snapshot().count, 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn logical_clock_ticks_deterministically() {
        let r = Registry::logical();
        assert_eq!(r.now_us(), 0);
        assert_eq!(r.now_us(), 1);
        assert!(!r.is_wall());
        assert_eq!(r.clock_name(), "logical");
        let r2 = Registry::logical();
        assert_eq!(r2.now_us(), 0);
    }

    #[test]
    fn handles_share_cells_across_clones() {
        let r = Registry::wall();
        assert!(r.is_wall());
        let c1 = r.counter("hits_total", &[("tier", "full")]);
        let c2 = r.clone().counter("hits_total", &[("tier", "full")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        // Different labels are different series.
        let other = r.counter("hits_total", &[("tier", "fast")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_is_canonical() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(MetricKey::parse(&a.render()), a);
        let bare = MetricKey::new("plain_total", &[]);
        assert_eq!(bare.render(), "plain_total");
        assert_eq!(MetricKey::parse("plain_total"), bare);
    }

    #[test]
    fn gauge_set_max_tracks_peaks() {
        let r = Registry::logical();
        let g = r.gauge("depth", &[]);
        g.set(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set_max(8);
        assert_eq!(g.get(), 8);
        g.add(-2);
        assert_eq!(g.get(), 6);
    }
}
