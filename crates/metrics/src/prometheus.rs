//! Prometheus text exposition (format version 0.0.4) for a [`Snapshot`].
//!
//! Counters and gauges render as plain series; histograms render as the
//! conventional cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`. Output order is the snapshot's sorted key order, so equal
//! snapshots render to equal bytes.

use std::collections::BTreeSet;

use crate::histogram::{bucket_upper_bound, BUCKETS};
use crate::snapshot::Snapshot;
use crate::MetricKey;

/// Renders the whole snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut typed: BTreeSet<&str> = BTreeSet::new();

    for (key, v) in &snap.counters {
        if typed.insert(&key.name) {
            type_line(&mut out, &key.name, "counter");
        }
        out.push_str(&key.render());
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (key, v) in &snap.gauges {
        if typed.insert(&key.name) {
            type_line(&mut out, &key.name, "gauge");
        }
        out.push_str(&key.render());
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (key, h) in &snap.histograms {
        if typed.insert(&key.name) {
            type_line(&mut out, &key.name, "histogram");
        }
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            // Empty interior lanes are elided to keep the exposition
            // readable; the terminal +Inf bucket always renders so the
            // series is well-formed even when empty.
            if c == 0 && i < BUCKETS - 1 {
                continue;
            }
            let le = if i == BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper_bound(i).to_string()
            };
            series_with(&mut out, key, "_bucket", &[("le", &le)]);
            out.push(' ');
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        series_with(&mut out, key, "_sum", &[]);
        out.push(' ');
        out.push_str(&h.sum.to_string());
        out.push('\n');
        series_with(&mut out, key, "_count", &[]);
        out.push(' ');
        out.push_str(&h.count.to_string());
        out.push('\n');
    }
    out
}

fn type_line(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Writes `name<suffix>{labels...,extra...}` (labels merged in sorted
/// order, matching the canonical key form).
fn series_with(out: &mut String, key: &MetricKey, suffix: &str, extra: &[(&str, &str)]) {
    out.push_str(&key.name);
    out.push_str(suffix);
    let mut labels: Vec<(&str, &str)> = key
        .labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    labels.extend_from_slice(extra);
    labels.sort();
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn renders_all_three_kinds() {
        let r = Registry::logical();
        r.counter("t10_serve_admission_total", &[("outcome", "accepted")])
            .add(4);
        r.gauge("t10_serve_queue_depth", &[]).set(2);
        let h = r.histogram("t10_serve_queue_wait_us", &[("tier", "full")]);
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(900);
        let text = render(&r.snapshot());

        assert!(text.contains("# TYPE t10_serve_admission_total counter\n"));
        assert!(text.contains("t10_serve_admission_total{outcome=\"accepted\"} 4\n"));
        assert!(text.contains("# TYPE t10_serve_queue_depth gauge\n"));
        assert!(text.contains("t10_serve_queue_depth 2\n"));
        assert!(text.contains("# TYPE t10_serve_queue_wait_us histogram\n"));
        // Cumulative buckets: {0}=1, [2,3]=+2 -> 3, [512,1023]=+1 -> 4.
        assert!(text.contains("t10_serve_queue_wait_us_bucket{le=\"0\",tier=\"full\"} 1\n"));
        assert!(text.contains("t10_serve_queue_wait_us_bucket{le=\"3\",tier=\"full\"} 3\n"));
        assert!(text.contains("t10_serve_queue_wait_us_bucket{le=\"1023\",tier=\"full\"} 4\n"));
        assert!(text.contains("t10_serve_queue_wait_us_bucket{le=\"+Inf\",tier=\"full\"} 4\n"));
        assert!(text.contains("t10_serve_queue_wait_us_sum{tier=\"full\"} 906\n"));
        assert!(text.contains("t10_serve_queue_wait_us_count{tier=\"full\"} 4\n"));
        // One TYPE line per metric name, rendered before its first series.
        assert_eq!(text.matches("# TYPE t10_serve_queue_wait_us ").count(), 1);
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket() {
        let r = Registry::wall();
        let _ = r.histogram("t10_serve_e2e_us", &[]);
        let text = render(&r.snapshot());
        assert!(text.contains("t10_serve_e2e_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("t10_serve_e2e_us_sum 0\n"));
        assert!(text.contains("t10_serve_e2e_us_count 0\n"));
    }

    #[test]
    fn equal_snapshots_render_identically() {
        let build = || {
            let r = Registry::logical();
            r.counter("a_total", &[]).inc();
            r.histogram("b_us", &[("tier", "fast")]).observe(7);
            render(&r.snapshot())
        };
        assert_eq!(build(), build());
    }
}
