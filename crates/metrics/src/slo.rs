//! Service-level objective evaluation over a metrics [`Snapshot`] — the
//! engine behind `t10 stats`.
//!
//! Two objective families:
//!
//! * **Availability** — the fraction of admission decisions that were not
//!   rejections (`t10_serve_admission_total`, outcomes other than
//!   `rejected-*` and `parse-error`), versus a target like 99%.
//! * **Latency** — the fraction of observations in a named histogram at or
//!   under a threshold (via [`HistogramSnapshot::count_over`], which
//!   counts whole buckets and is exact when the threshold is a `2^k - 1`
//!   bucket boundary), versus a target like "99% of requests ≤ 250ms".
//!
//! Each row reports attainment and the **error-budget burn rate**: the
//! observed bad fraction divided by the budget the objective allows
//! (`1 - objective`). Burn 1.0 means the budget is being consumed exactly
//! as fast as it accrues; above 1.0 the objective will be missed.

use crate::names;
use crate::snapshot::Snapshot;

/// One latency objective: a histogram, a threshold, and a target fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyObjective {
    /// Histogram metric name (all label sets are merged).
    pub histogram: String,
    /// Inclusive threshold in microseconds.
    pub threshold_us: u64,
    /// Required fraction of observations at or under the threshold
    /// (0..=1).
    pub objective: f64,
}

/// The SLO suite to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Required non-rejected fraction of admission decisions (0..=1).
    pub availability_objective: f64,
    /// Latency objectives, evaluated in order.
    pub latency: Vec<LatencyObjective>,
}

impl Default for SloConfig {
    /// 99% availability; 99% of end-to-end serve latency within ~262ms
    /// (the 2^18-1 µs bucket boundary, where bucket math is exact).
    fn default() -> Self {
        Self {
            availability_objective: 0.99,
            latency: vec![LatencyObjective {
                histogram: names::SERVE_E2E_US.to_string(),
                threshold_us: (1 << 18) - 1,
                objective: 0.99,
            }],
        }
    }
}

/// One evaluated objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRow {
    /// What the objective covers (`availability` or the histogram name
    /// with its threshold).
    pub name: String,
    /// Required good fraction.
    pub objective: f64,
    /// Observed good fraction (`None` with no eligible events).
    pub attained: Option<f64>,
    /// Events the objective was evaluated over.
    pub events: u64,
    /// Events that violated the objective.
    pub bad: u64,
    /// Error-budget burn rate: bad-fraction / (1 - objective). `None`
    /// with no events or a 100% objective.
    pub burn_rate: Option<f64>,
    /// Whether the objective is currently met (vacuously true with no
    /// events).
    pub met: bool,
}

/// The full evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One row per objective, availability first.
    pub rows: Vec<SloRow>,
}

impl SloReport {
    /// Whether every objective is met.
    pub fn all_met(&self) -> bool {
        self.rows.iter().all(|r| r.met)
    }
}

fn make_row(name: String, objective: f64, events: u64, bad: u64) -> SloRow {
    let objective = objective.clamp(0.0, 1.0);
    if events == 0 {
        return SloRow {
            name,
            objective,
            attained: None,
            events,
            bad,
            burn_rate: None,
            met: true,
        };
    }
    let bad_fraction = bad as f64 / events as f64;
    let attained = 1.0 - bad_fraction;
    let budget = 1.0 - objective;
    let burn_rate = (budget > 0.0).then(|| bad_fraction / budget);
    SloRow {
        name,
        objective,
        attained: Some(attained),
        events,
        bad,
        burn_rate,
        met: attained >= objective,
    }
}

/// Evaluates the SLO suite against a snapshot.
pub fn evaluate(snap: &Snapshot, config: &SloConfig) -> SloReport {
    let mut rows = Vec::with_capacity(1 + config.latency.len());

    // Availability: every admission decision is an event; rejections and
    // parse errors are the bad ones. Degraded acceptance still counts as
    // available — the request was served.
    let total = snap.counter_sum(names::SERVE_ADMISSION_TOTAL);
    let bad: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            k.name == names::SERVE_ADMISSION_TOTAL
                && k.labels.iter().any(|(lk, lv)| {
                    lk == "outcome" && (lv.starts_with("rejected") || lv == "parse-error")
                })
        })
        .fold(0u64, |acc, (_, v)| acc.saturating_add(*v));
    rows.push(make_row(
        "availability".to_string(),
        config.availability_objective,
        total,
        bad,
    ));

    for obj in &config.latency {
        let h = snap.histogram_merged(&obj.histogram);
        let bad = h.count_over(obj.threshold_us);
        rows.push(make_row(
            format!("{} <= {}us", obj.histogram, obj.threshold_us),
            obj.objective,
            h.count,
            bad,
        ));
    }

    SloReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn loaded_snapshot(accepted: u64, rejected: u64, fast_us: u64, slow: u64) -> Snapshot {
        let r = Registry::logical();
        r.counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
            .add(accepted);
        r.counter(
            names::SERVE_ADMISSION_TOTAL,
            &[("outcome", "rejected-queue-full")],
        )
        .add(rejected);
        let h = r.histogram(names::SERVE_E2E_US, &[]);
        for _ in 0..accepted.saturating_sub(slow) {
            h.observe(fast_us);
        }
        for _ in 0..slow {
            h.observe(u64::MAX / 2);
        }
        r.snapshot()
    }

    #[test]
    fn availability_counts_rejections_as_bad() {
        let snap = loaded_snapshot(98, 2, 100, 0);
        let report = evaluate(&snap, &SloConfig::default());
        let avail = &report.rows[0];
        assert_eq!(avail.name, "availability");
        assert_eq!(avail.events, 100);
        assert_eq!(avail.bad, 2);
        assert_eq!(avail.attained, Some(0.98));
        assert!(!avail.met, "98% attained < 99% objective");
        // 2% bad against a 1% budget burns at 2x.
        let burn = avail.burn_rate.unwrap();
        assert!((burn - 2.0).abs() < 1e-9, "burn {burn}");
        assert!(!report.all_met());
    }

    #[test]
    fn degraded_acceptance_is_still_available() {
        let r = Registry::logical();
        r.counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
            .add(5);
        r.counter(
            names::SERVE_ADMISSION_TOTAL,
            &[("outcome", "accepted-degraded")],
        )
        .add(5);
        let report = evaluate(&r.snapshot(), &SloConfig::default());
        assert_eq!(report.rows[0].bad, 0);
        assert!(report.rows[0].met);
    }

    #[test]
    fn latency_objective_uses_bucket_math() {
        // All requests fast: met. 2 of 100 slow against 99%: missed.
        let fast = evaluate(&loaded_snapshot(100, 0, 100, 0), &SloConfig::default());
        assert!(fast.all_met());
        assert_eq!(fast.rows[1].events, 100);
        assert_eq!(fast.rows[1].bad, 0);

        let slow = evaluate(&loaded_snapshot(100, 0, 100, 2), &SloConfig::default());
        assert!(!slow.rows[1].met);
        assert_eq!(slow.rows[1].bad, 2);
        assert!(slow.rows[1].burn_rate.unwrap() > 1.0);
    }

    #[test]
    fn empty_snapshot_is_vacuously_met() {
        let report = evaluate(&Registry::logical().snapshot(), &SloConfig::default());
        assert!(report.all_met());
        for row in &report.rows {
            assert_eq!(row.events, 0);
            assert_eq!(row.attained, None);
            assert_eq!(row.burn_rate, None);
        }
    }

    #[test]
    fn perfect_objective_has_no_budget() {
        let snap = loaded_snapshot(10, 0, 100, 0);
        let config = SloConfig {
            availability_objective: 1.0,
            latency: vec![],
        };
        let report = evaluate(&snap, &config);
        assert!(report.rows[0].met);
        assert_eq!(report.rows[0].burn_rate, None, "no budget to burn");
    }
}
