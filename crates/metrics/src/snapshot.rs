//! Frozen, mergeable metric snapshots and the `t10.metrics.v1` JSON
//! document.
//!
//! A [`Snapshot`] is everything a registry knew at one instant. Snapshots
//! from different processes (or different scrape moments) merge
//! commutatively: counters and gauges add, histograms add bucket-wise —
//! the cross-shard aggregation story for a fleet of serve processes.
//!
//! The JSON document is hand-rolled with sorted keys and a fixed field
//! order, so a snapshot taken under the logical clock is **byte-identical**
//! across same-seed runs — diffable in tests and CI, like the trace files.

use std::collections::BTreeMap;

use t10_trace::json::{self, Json};

use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::MetricKey;

/// Schema identifier written into (and demanded from) every document.
pub const SCHEMA: &str = "t10.metrics.v1";

/// A frozen registry: every counter, gauge, and histogram at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Which clock the registry ran (`wall`, `logical`, `disabled`, or
    /// `mixed` after merging snapshots from different clock domains).
    pub clock: String,
    /// Counter values by key.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge levels by key.
    pub gauges: BTreeMap<MetricKey, i64>,
    /// Histograms by key.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot for the given clock.
    pub fn new(clock: &str) -> Self {
        Self {
            clock: clock.to_string(),
            ..Self::default()
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Sum of every counter whose metric name equals `name`, across all
    /// label sets.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .fold(0u64, |acc, (_, v)| acc.saturating_add(*v))
    }

    /// The counter value for one exact series (`None` if never created).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&MetricKey::new(name, labels)).copied()
    }

    /// The gauge level for one exact series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// All histograms under one metric name merged across label sets (an
    /// empty histogram if none exist).
    pub fn histogram_merged(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (_, h) in self.histograms.iter().filter(|(k, _)| k.name == name) {
            merged.merge(h);
        }
        merged
    }

    /// Merges `other` into this snapshot: counters and gauges add
    /// (saturating), histograms add bucket-wise. Commutative and
    /// associative over the metric content; the clock field becomes
    /// `mixed` when the domains differ.
    pub fn merge(&mut self, other: &Snapshot) {
        if self.clock != other.clock {
            self.clock = "mixed".to_string();
        }
        for (key, v) in &other.counters {
            let slot = self.counters.entry(key.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (key, v) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// Renders the `t10.metrics.v1` document: sorted keys, fixed field
    /// order, trailing newline. Byte-identical for equal snapshots.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"clock\": \"");
        json::escape_into(&mut out, &self.clock);
        out.push_str("\",\n  \"counters\": {");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            json::escape_into(&mut out, &key.render());
            out.push_str("\": ");
            out.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (key, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            json::escape_into(&mut out, &key.render());
            out.push_str("\": ");
            out.push_str(&v.to_string());
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            json::escape_into(&mut out, &key.render());
            out.push_str("\": {\"count\": ");
            out.push_str(&h.count.to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&h.sum.to_string());
            out.push_str(", \"buckets\": [");
            // Trailing zero buckets are elided (the parser zero-fills), so
            // mostly-empty histograms stay one short line.
            let last = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
            for (j, c) in h.buckets.iter().take(last).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// The same document on a single line (for embedding inside other
    /// deterministic JSON reports, e.g. the chaos campaign summary).
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        for line in self.to_json().lines() {
            out.push_str(line.trim_start());
        }
        out
    }

    /// Parses a `t10.metrics.v1` document.
    ///
    /// Values round-trip exactly up to 2^53 (the JSON number lane is f64);
    /// saturated `u64::MAX` totals parse back clamped, which only matters
    /// for snapshots that already overflowed.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema field")?;
        if schema != SCHEMA {
            return Err(format!("expected schema {SCHEMA}, found {schema}"));
        }
        let clock = doc
            .get("clock")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let mut snap = Snapshot::new(&clock);
        if let Some(Json::Obj(members)) = doc.get("counters") {
            for (flat, v) in members {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("counter {flat}: not a number"))?;
                snap.counters.insert(MetricKey::parse(flat), clamp_u64(v));
            }
        }
        if let Some(Json::Obj(members)) = doc.get("gauges") {
            for (flat, v) in members {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("gauge {flat}: not a number"))?;
                snap.gauges.insert(MetricKey::parse(flat), v as i64);
            }
        }
        if let Some(Json::Obj(members)) = doc.get("histograms") {
            for (flat, h) in members {
                let count = h.get("count").and_then(Json::as_f64);
                let sum = h.get("sum").and_then(Json::as_f64);
                let buckets = h.get("buckets").and_then(Json::as_arr);
                let (Some(count), Some(sum), Some(buckets)) = (count, sum, buckets) else {
                    return Err(format!("histogram {flat}: missing count/sum/buckets"));
                };
                if buckets.len() > BUCKETS {
                    return Err(format!(
                        "histogram {flat}: {} buckets (max {BUCKETS})",
                        buckets.len()
                    ));
                }
                let mut hs = HistogramSnapshot {
                    count: clamp_u64(count),
                    sum: clamp_u64(sum),
                    ..HistogramSnapshot::default()
                };
                for (i, b) in buckets.iter().enumerate() {
                    let b = b
                        .as_f64()
                        .ok_or_else(|| format!("histogram {flat}: bucket {i} not a number"))?;
                    hs.buckets[i] = clamp_u64(b);
                }
                snap.histograms.insert(MetricKey::parse(flat), hs);
            }
        }
        Ok(snap)
    }
}

fn clamp_u64(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::logical();
        r.counter("t10_serve_admission_total", &[("outcome", "accepted")])
            .add(5);
        r.counter(
            "t10_serve_admission_total",
            &[("outcome", "rejected-queue-full")],
        )
        .add(2);
        r.gauge("t10_serve_queue_depth", &[]).set(3);
        let h = r.histogram("t10_serve_queue_wait_us", &[("tier", "full")]);
        for v in [0u64, 1, 5, 900, 70_000] {
            h.observe(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let snap = sample();
        let doc = snap.to_json();
        assert_eq!(doc, sample().to_json(), "same state, same bytes");
        let parsed = Snapshot::parse(&doc).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_json(), doc);
        assert!(doc.contains("\"schema\": \"t10.metrics.v1\""));
        assert!(doc.contains("\"clock\": \"logical\""));
        // Compact embedding is one line of the same content.
        let compact = snap.to_json_compact();
        assert_eq!(compact.lines().count(), 1);
        assert_eq!(Snapshot::parse(&compact).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Registry::logical().snapshot();
        let parsed = Snapshot::parse(&snap.to_json()).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.to_json(), snap.to_json());
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(Snapshot::parse("{}").is_err());
        assert!(Snapshot::parse("{\"schema\": \"t10.bench.compile.v1\"}").is_err());
        assert!(Snapshot::parse("not json").is_err());
        assert!(Snapshot::parse(
            "{\"schema\": \"t10.metrics.v1\", \"clock\": \"wall\", \
             \"counters\": {\"x\": \"nan\"}, \"gauges\": {}, \"histograms\": {}}"
        )
        .is_err());
    }

    #[test]
    fn merge_is_commutative_across_snapshots() {
        let a = sample();
        let rb = Registry::logical();
        rb.counter("t10_serve_admission_total", &[("outcome", "accepted")])
            .add(7);
        rb.gauge("t10_serve_queue_depth", &[]).set(2);
        rb.histogram("t10_serve_queue_wait_us", &[("tier", "fast")])
            .observe(12);
        let b = rb.snapshot();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge(a,b) == merge(b,a)");
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(
            ab.counter("t10_serve_admission_total", &[("outcome", "accepted")]),
            Some(12)
        );
        assert_eq!(ab.counter_sum("t10_serve_admission_total"), 14);
        assert_eq!(ab.gauge("t10_serve_queue_depth", &[]), Some(5));
        assert_eq!(ab.histogram_merged("t10_serve_queue_wait_us").count, 6);
    }

    #[test]
    fn same_seed_logical_runs_produce_byte_identical_snapshots() {
        // Two independent registries driven through an identical
        // deterministic call sequence — including clock reads for
        // durations — must serialize to the same bytes.
        let run = || {
            let r = Registry::logical();
            let wait = r.histogram("t10_serve_queue_wait_us", &[("tier", "full")]);
            let admitted = r.counter("t10_serve_admission_total", &[("outcome", "accepted")]);
            for _ in 0..3 {
                let t0 = r.now_us();
                admitted.inc();
                let t1 = r.now_us();
                wait.observe(t1 - t0);
            }
            r.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
