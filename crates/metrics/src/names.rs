//! Canonical metric names for the serving stack.
//!
//! Naming scheme: `t10_<layer>_<noun>_<unit>` — counters end in `_total`,
//! histograms in a unit (`_us`), gauges in a level noun. Every layer pulls
//! its names from here so `t10 stats`, the SLO evaluator, and CI scrapers
//! agree with the emitters; the inventory is pinned by a test.

/// serve: requests seen by the admission loop, labeled
/// `outcome=accepted|accepted-degraded|rejected-queue-full|parse-error`.
pub const SERVE_ADMISSION_TOTAL: &str = "t10_serve_admission_total";
/// serve: responses emitted, labeled `status=ok|error|rejected`.
pub const SERVE_RESPONSES_TOTAL: &str = "t10_serve_responses_total";
/// serve: time from admission to dequeue, labeled `tier=full|fast`.
pub const SERVE_QUEUE_WAIT_US: &str = "t10_serve_queue_wait_us";
/// serve: compile time inside the worker, labeled `tier=full|fast`.
pub const SERVE_COMPILE_US: &str = "t10_serve_compile_us";
/// serve: arrival-to-response end-to-end latency (admitted requests).
pub const SERVE_E2E_US: &str = "t10_serve_e2e_us";
/// serve: live admission-queue depth.
pub const SERVE_QUEUE_DEPTH: &str = "t10_serve_queue_depth";
/// serve: high-water queue depth over the session.
pub const SERVE_QUEUE_DEPTH_PEAK: &str = "t10_serve_queue_depth_peak";
/// serve: live queue occupancy, percent of capacity.
pub const SERVE_QUEUE_OCCUPANCY_PCT: &str = "t10_serve_queue_occupancy_pct";

/// store: lookups, labeled `result=hit|miss`.
pub const STORE_LOOKUPS_TOTAL: &str = "t10_store_lookups_total";
/// store: entries quarantined, labeled `class=<StoreError label>`.
pub const STORE_QUARANTINED_TOTAL: &str = "t10_store_quarantined_total";
/// store: entries written.
pub const STORE_RECORDED_TOTAL: &str = "t10_store_recorded_total";
/// store: failed writes (each costs a future miss only).
pub const STORE_WRITE_FAILURES_TOTAL: &str = "t10_store_write_failures_total";

/// compiler: operator searches resolved, labeled
/// `source=warm|memo|disk|searched`.
pub const COMPILER_OPS_TOTAL: &str = "t10_compiler_ops_total";
/// compiler: per-operator Pareto search latency (wall clock only — worker
/// threads never touch the registry clock), labeled `mode=parallel|seq`.
pub const COMPILER_OP_SEARCH_US: &str = "t10_compiler_op_search_us";
/// compiler: worker threads used by the last per-operator search fan-out.
pub const COMPILER_SEARCH_JOBS: &str = "t10_compiler_search_jobs";
/// compiler: busy-time utilization of the last parallel search fan-out,
/// percent of `workers x wall time` (wall clock only).
pub const COMPILER_PARALLEL_UTILIZATION_PCT: &str = "t10_compiler_parallel_utilization_pct";
/// compiler: cross-shape warm starts served from a family-level cache
/// entry (symbolic certificate validated, coverage + residual checks
/// passed).
pub const COMPILER_FAMILY_HITS_TOTAL: &str = "t10_compiler_family_hits_total";
/// compiler: family-level entries found but refused — certificate
/// validation, coverage, or the per-shape residual re-check failed.
pub const COMPILER_RESIDUAL_FAILURES_TOTAL: &str = "t10_compiler_residual_failures_total";

/// verify: boundary edges checked by the graph-level analysis pass.
pub const VERIFY_GRAPH_EDGES_TOTAL: &str = "t10_verify_graph_edges_total";
/// verify: fusion candidates surfaced by the FUSE lints.
pub const VERIFY_FUSE_CANDIDATES_TOTAL: &str = "t10_verify_fuse_candidates_total";
/// verify: estimated transition bytes fused chains would elide.
pub const VERIFY_FUSE_BYTES_SAVED_TOTAL: &str = "t10_verify_fuse_bytes_saved_total";

/// recovery: transient retries (rollback + replay).
pub const RECOVERY_RETRIES_TOTAL: &str = "t10_recovery_retries_total";
/// recovery: checkpoint rollbacks performed.
pub const RECOVERY_ROLLBACKS_TOTAL: &str = "t10_recovery_rollbacks_total";
/// recovery: persistent-fault recompiles.
pub const RECOVERY_RECOMPILES_TOTAL: &str = "t10_recovery_recompiles_total";
/// recovery: recompile latency in registry-clock microseconds.
pub const RECOVERY_RECOMPILE_US: &str = "t10_recovery_recompile_us";

/// Every name above, for exposition tests and scrapers.
pub const ALL: &[&str] = &[
    SERVE_ADMISSION_TOTAL,
    SERVE_RESPONSES_TOTAL,
    SERVE_QUEUE_WAIT_US,
    SERVE_COMPILE_US,
    SERVE_E2E_US,
    SERVE_QUEUE_DEPTH,
    SERVE_QUEUE_DEPTH_PEAK,
    SERVE_QUEUE_OCCUPANCY_PCT,
    STORE_LOOKUPS_TOTAL,
    STORE_QUARANTINED_TOTAL,
    STORE_RECORDED_TOTAL,
    STORE_WRITE_FAILURES_TOTAL,
    COMPILER_OPS_TOTAL,
    COMPILER_OP_SEARCH_US,
    COMPILER_SEARCH_JOBS,
    COMPILER_PARALLEL_UTILIZATION_PCT,
    COMPILER_FAMILY_HITS_TOTAL,
    COMPILER_RESIDUAL_FAILURES_TOTAL,
    VERIFY_GRAPH_EDGES_TOTAL,
    VERIFY_FUSE_CANDIDATES_TOTAL,
    VERIFY_FUSE_BYTES_SAVED_TOTAL,
    RECOVERY_RETRIES_TOTAL,
    RECOVERY_ROLLBACKS_TOTAL,
    RECOVERY_RECOMPILES_TOTAL,
    RECOVERY_RECOMPILE_US,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_scheme_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(name.starts_with("t10_"), "{name}: missing t10_ prefix");
            assert!(
                name.ends_with("_total")
                    || name.ends_with("_us")
                    || name.ends_with("_depth")
                    || name.ends_with("_peak")
                    || name.ends_with("_pct")
                    || name.ends_with("_jobs"),
                "{name}: unknown unit suffix"
            );
            assert!(seen.insert(name), "{name}: duplicate");
        }
        assert_eq!(ALL.len(), 25);
    }
}
