//! Property-based tests of the VGM tile model.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;
use t10_baselines::vgm::{lower_op_vgm, tile_plan};
use t10_device::ChipSpec;
use t10_ir::builders;

proptest! {
    /// Tile-plan invariants over arbitrary matmul tiles: round accounting
    /// covers every task, byte counts match the tile geometry, and the
    /// exchange summaries are internally consistent.
    #[test]
    fn tile_plan_invariants(
        m_pow in 4usize..9,
        k_pow in 4usize..9,
        n_pow in 4usize..9,
        tm_pow in 0usize..6,
        tk_pow in 0usize..6,
        tn_pow in 0usize..6,
        cores in 8usize..128,
    ) {
        let (m, k, n) = (1 << m_pow, 1 << k_pow, 1 << n_pow);
        let tile = vec![
            (1usize << tm_pow).min(m),
            (1usize << tk_pow).min(k),
            (1usize << tn_pow).min(n),
        ];
        let op = builders::matmul(0, 1, 2, m, k, n).unwrap();
        let spec = ChipSpec::ipu_with_cores(cores);
        let tp = tile_plan(&op, &[2, 2], 2, &tile, &spec);

        // Rounds cover all tasks and the last round is consistent.
        prop_assert!(tp.rounds * cores >= tp.tasks);
        prop_assert!((tp.rounds - 1) * cores < tp.tasks);
        prop_assert_eq!(tp.tasks - (tp.rounds - 1) * cores, tp.last_round_cores);

        // Byte geometry.
        let a_bytes = (tile[0] * tile[1] * 2) as u64;
        let b_bytes = (tile[1] * tile[2] * 2) as u64;
        prop_assert_eq!(tp.tile_in_bytes, a_bytes + b_bytes);
        prop_assert_eq!(tp.tile_out_bytes, (tile[0] * tile[2] * 2) as u64);
        prop_assert_eq!(tp.buffer_bytes as u64, tp.tile_in_bytes + tp.tile_out_bytes);

        // Lowered steps: one exchange + one compute per round; summaries
        // are consistent with per-core volumes.
        let steps = lower_op_vgm(&tp, &spec, Some(0));
        prop_assert_eq!(steps.len(), 2 * tp.rounds);
        for pair in steps.chunks(2) {
            let e = pair[0].exchange_summary.unwrap();
            prop_assert!(e.max_core_out >= e.max_core_in);
            prop_assert_eq!(
                e.total_bytes,
                (tp.tile_in_bytes + tp.tile_out_bytes) * e.active_cores as u64
            );
            prop_assert!(e.max_core_messages >= 1);
            let c = pair[1].compute_summary.unwrap();
            prop_assert_eq!(c.active_cores, e.active_cores);
        }
    }

    /// Smaller tiles never decrease the round count, and the serving
    /// hot-spot never exceeds the round's total traffic.
    #[test]
    fn smaller_tiles_more_rounds(t_pow in 0usize..5, cores in 8usize..64) {
        let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
        let spec = ChipSpec::ipu_with_cores(cores);
        let small = vec![1 << t_pow, 256, 1 << t_pow];
        let big = vec![(1 << t_pow) * 2, 256, (1 << t_pow) * 2];
        let tp_s = tile_plan(&op, &[2, 2], 2, &small, &spec);
        let tp_b = tile_plan(&op, &[2, 2], 2, &big, &spec);
        prop_assert!(tp_s.rounds >= tp_b.rounds);
        for step in lower_op_vgm(&tp_s, &spec, None) {
            if let Some(e) = step.exchange_summary {
                prop_assert!(e.max_core_out as u128 <= e.total_bytes as u128 + e.max_core_in as u128);
            }
        }
    }
}
