//! A Roller-style VGM compiler (Zhu et al., OSDI '22; paper baseline).
//!
//! Roller constructs *rTiles* — tile shapes aligned to the hardware quanta —
//! and greedily grows the tile along the axis that maximizes compute
//! intensity while the per-core memory budget (VGM stripe + tile buffers)
//! still fits. It always targets the fastest plan that uses the most local
//! memory (paper §6.3), with no memory/time trade-off curve.

use std::time::Instant;

use t10_device::{truth, ChipSpec};
use t10_ir::{AxisKind, Graph, Operator};

use crate::vgm::{
    assemble_program, fits, node_dtypes, tile_plan, vgm_bytes_per_core, TilePlan, VgmCompiled,
    VgmConfig,
};
use crate::Result;
use t10_core::compile_err;

/// Estimated execution time of one operator under a tile plan, using the
/// same hardware model the simulator charges.
pub fn op_time_estimate(tp: &TilePlan, spec: &ChipSpec) -> f64 {
    let steps = crate::vgm::lower_op_vgm(tp, spec, None);
    steps
        .iter()
        .map(|s| {
            let c = s
                .compute_summary
                .map(|cs| truth::vertex_time(spec, &cs.desc))
                .unwrap_or(0.0);
            let e = s
                .exchange_summary
                .map(|es| truth::exchange_time(spec, &es))
                .unwrap_or(0.0);
            c + e
        })
        .sum()
}

/// The aligned starting tile: hardware quanta clamped to the axis sizes.
fn base_tile(op: &Operator, spec: &ChipSpec) -> Vec<usize> {
    op.expr
        .axes
        .iter()
        .map(|a| {
            let q = match a.kind {
                AxisKind::Reduction => spec.amp_red,
                AxisKind::Spatial => 8,
            };
            a.size.min(q)
        })
        .collect()
}

/// Selects a tile for one operator, Roller style.
pub fn select_tile(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    vgm_bytes: usize,
    spec: &ChipSpec,
    cfg: &VgmConfig,
) -> Result<TilePlan> {
    let mut tile = base_tile(op, spec);
    let mut cur = tile_plan(op, dtype_bytes, out_dtype_bytes, &tile, spec);
    if !fits(&cur, vgm_bytes, spec, cfg) {
        return Err(compile_err!(
            "even the minimal aligned tile does not fit beside the VGM stripe"
        ));
    }
    let mut cur_time = op_time_estimate(&cur, spec);
    loop {
        let mut best: Option<(usize, TilePlan, f64)> = None;
        for a in 0..tile.len() {
            if tile[a] >= op.expr.axes[a].size {
                continue;
            }
            let mut t2 = tile.clone();
            t2[a] = (t2[a] * 2).min(op.expr.axes[a].size);
            let tp = tile_plan(op, dtype_bytes, out_dtype_bytes, &t2, spec);
            if !fits(&tp, vgm_bytes, spec, cfg) {
                continue;
            }
            // Roller ranks candidate rTiles with its micro performance
            // model and keeps the best; compute intensity breaks ties via
            // the model's bandwidth terms.
            let t = op_time_estimate(&tp, spec);
            if best.as_ref().map(|b| t < b.2).unwrap_or(true) {
                best = Some((a, tp, t));
            }
        }
        match best {
            // Keep growing while the model improves (or stays flat — larger
            // aligned tiles use the memory Roller wants to saturate).
            Some((a, tp, t)) if t <= cur_time * 1.001 => {
                tile[a] = (tile[a] * 2).min(op.expr.axes[a].size);
                cur = tp;
                cur_time = t;
            }
            _ => break,
        }
    }
    Ok(cur)
}

/// Compiles a whole graph Roller-style.
pub fn compile_graph_roller(graph: &Graph, spec: &ChipSpec) -> Result<VgmCompiled> {
    let t0 = Instant::now();
    let cfg = VgmConfig::default();
    let vgm = vgm_bytes_per_core(graph, spec, cfg.liveness_reuse);
    let mut plans = Vec::with_capacity(graph.nodes().len());
    for node in graph.nodes() {
        let (d, o) = node_dtypes(graph, &node.op);
        let tp = select_tile(&node.op, &d, o, vgm, spec, &cfg)
            .map_err(|e| compile_err!("{}: {}", node.name, e.message()))?;
        plans.push(tp);
    }
    let program = assemble_program(graph, &plans, spec)?;
    Ok(VgmCompiled {
        program,
        vgm_bytes_per_core: vgm,
        tiles: plans.iter().map(|p| p.tile.clone()).collect(),
        buffer_bytes: plans.iter().map(|p| p.buffer_bytes).collect(),
        compile_seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::{builders, DType, ValueKind};

    fn mm_graph(m: usize, k: usize, n: usize) -> Graph {
        let mut g = Graph::new("mm");
        let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![k, n], DType::F16, ValueKind::Weight);
        let c = g.add_value("c", vec![m, n], DType::F16, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, c, m, k, n).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn tile_growth_respects_memory() {
        let g = mm_graph(512, 512, 512);
        let spec = ChipSpec::ipu_with_cores(64);
        let out = compile_graph_roller(&g, &spec).unwrap();
        let tp = tile_plan(&g.nodes()[0].op, &[2, 2], 2, &out.tiles[0], &spec);
        assert!(fits(
            &tp,
            out.vgm_bytes_per_core,
            &spec,
            &VgmConfig::default()
        ));
        // Roller grows well past the minimal aligned tile.
        assert!(out.tiles[0].iter().product::<usize>() > 8 * 16 * 8);
    }

    #[test]
    fn vgm_stripe_shrinks_the_tile() {
        // The same operator with a fat VGM stripe must pick a smaller tile —
        // Figure 2 (b)'s effect.
        let op = builders::matmul(0, 1, 2, 1024, 1024, 1024).unwrap();
        let spec = ChipSpec::ipu_with_cores(64);
        let cfg = VgmConfig::default();
        let lean = select_tile(&op, &[2, 2], 2, 0, &spec, &cfg).unwrap();
        let fat = select_tile(&op, &[2, 2], 2, 400 * 1024, &spec, &cfg).unwrap();
        assert!(fat.buffer_bytes < lean.buffer_bytes);
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_rounds() {
        let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let small = tile_plan(&op, &[2, 2], 2, &[8, 256, 8], &spec);
        let big = tile_plan(&op, &[2, 2], 2, &[64, 256, 64], &spec);
        let ts = op_time_estimate(&small, &spec);
        let tb = op_time_estimate(&big, &spec);
        assert!(ts > 0.0 && tb > 0.0);
        assert!(ts > tb, "small tiles should be slower: {ts} vs {tb}");
    }

    #[test]
    fn oversized_model_is_rejected() {
        let g = mm_graph(4096, 4096, 4096);
        let mut spec = ChipSpec::ipu_with_cores(4);
        spec.sram_per_core = 32 * 1024;
        assert!(compile_graph_roller(&g, &spec).is_err());
    }
}
