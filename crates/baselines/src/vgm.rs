//! The Virtual Global Memory abstraction (paper §2.2, Figure 2 (a)).
//!
//! Existing compilers and libraries mimic a shared memory on inter-core
//! connected chips by reserving a slice of every core's scratchpad and
//! striping all model tensors across those slices. Operators execute
//! *load-compute-store*: each core fetches its sub-operator's tiles from the
//! VGM, computes locally, and stores results back.
//!
//! The two inefficiencies T10 removes are modeled explicitly:
//!
//! * **imbalanced accesses** — when `S` cores need the same tensor region in
//!   one round, the cores owning its shards serve `S×` traffic, and the
//!   round is bounded by the hottest server;
//! * **duplicated memory** — the VGM stripe occupies every core alongside
//!   the active sub-operator buffers, shrinking the feasible tile.

use serde::{Deserialize, Serialize};
use t10_device::program::{
    ComputeSummary, ExchangeSummary, Phase, Program, SubTaskDesc, Superstep,
};
use t10_device::ChipSpec;
use t10_ir::{AxisKind, Graph, Operator, ValueKind};

use crate::Result;
use t10_core::rtensor::dim_extent;

/// Knobs shared by the VGM-based compilers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VgmConfig {
    /// Whether activation memory is reused via liveness analysis (compilers
    /// do this; the vendor runtime keeps all activations resident).
    pub liveness_reuse: bool,
    /// Fraction of each core's scratchpad reserved for runtime structures.
    pub runtime_reserve: f64,
    /// Double-buffer the tile loads (costs memory, hides no time under the
    /// BSP execution model).
    pub double_buffer: bool,
}

impl Default for VgmConfig {
    fn default() -> Self {
        Self {
            liveness_reuse: true,
            runtime_reserve: 0.0,
            double_buffer: false,
        }
    }
}

/// Result of compiling a graph with a VGM-based compiler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VgmCompiled {
    /// Timing program.
    pub program: Program,
    /// VGM stripe bytes reserved on every core.
    pub vgm_bytes_per_core: usize,
    /// Per-node chosen tile (per-axis sizes).
    pub tiles: Vec<Vec<usize>>,
    /// Per-node per-core active buffer bytes (the "sub-operator" region of
    /// Figure 2).
    pub buffer_bytes: Vec<usize>,
    /// Wall-clock compile time, seconds.
    pub compile_seconds: f64,
}

/// Bytes each core contributes to the VGM stripe.
///
/// With liveness reuse the stripe holds all weights plus the peak of
/// simultaneously-live activations; without it, every tensor of the model.
pub fn vgm_bytes_per_core(graph: &Graph, spec: &ChipSpec, liveness_reuse: bool) -> usize {
    let weights: usize = graph
        .values()
        .iter()
        .filter(|v| matches!(v.kind, ValueKind::Weight | ValueKind::Input))
        .map(|v| v.bytes())
        .sum();
    let act_bytes = |v: &t10_ir::ValueInfo| {
        matches!(v.kind, ValueKind::Activation | ValueKind::Output).then_some(v.bytes())
    };
    let activations: usize = if liveness_reuse {
        // Peak live activation volume over the topological schedule.
        let mut peak = 0usize;
        for (i, _) in graph.nodes().iter().enumerate() {
            let mut live = 0usize;
            for (vid, v) in graph.values().iter().enumerate() {
                let Some(bytes) = act_bytes(v) else { continue };
                let Some(producer) = graph.producer(vid) else {
                    continue;
                };
                let last = graph.last_use(vid).unwrap_or(producer);
                if producer <= i && last >= i {
                    live += bytes;
                }
            }
            peak = peak.max(live);
        }
        peak
    } else {
        graph.values().iter().filter_map(act_bytes).sum()
    };
    (weights + activations).div_ceil(spec.num_cores)
}

/// Derived execution properties of one operator under a per-axis tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Per-axis tile sizes.
    pub tile: Vec<usize>,
    /// Per-round per-core sub-task.
    pub subtask: SubTaskDesc,
    /// Number of sub-tasks (grid cells).
    pub tasks: usize,
    /// Rounds needed (`ceil(tasks / cores)`).
    pub rounds: usize,
    /// Cores active in the last (possibly partial) round.
    pub last_round_cores: usize,
    /// Input tile bytes loaded per core per round.
    pub tile_in_bytes: u64,
    /// Output tile bytes stored per core per round.
    pub tile_out_bytes: u64,
    /// Per-core active buffer bytes (in + out tiles).
    pub buffer_bytes: usize,
    /// Per input slot: number of concurrent requesters of one region
    /// (`S`), the tensor's per-core shard size in bytes, and the slot's
    /// tile bytes.
    pub sharing: Vec<(usize, usize, u64)>,
}

/// Computes the tile plan of an operator under a per-axis tile.
pub fn tile_plan(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    tile: &[usize],
    spec: &ChipSpec,
) -> TilePlan {
    let expr = &op.expr;
    let grid: Vec<usize> = expr
        .axes
        .iter()
        .zip(tile)
        .map(|(a, &t)| a.size.div_ceil(t.max(1)))
        .collect();
    let tasks: usize = grid.iter().product();
    let cores = spec.num_cores;
    let rounds = tasks.div_ceil(cores);
    let last_round_cores = tasks - (rounds - 1) * cores;

    let out_elems: u64 = expr
        .axes
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AxisKind::Spatial)
        .map(|(i, _)| tile[i] as u64)
        .product();
    let red_elems: u64 = expr
        .axes
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AxisKind::Reduction)
        .map(|(i, _)| tile[i] as u64)
        .product();
    let mut in_compound = vec![false; expr.axes.len()];
    for dims in &expr.inputs {
        for e in dims {
            if e.terms.len() > 1 {
                for t in &e.terms {
                    in_compound[t.axis] = true;
                }
            }
        }
    }
    let window: u64 = expr
        .axes
        .iter()
        .enumerate()
        .filter(|(i, a)| a.kind == AxisKind::Reduction && in_compound[*i])
        .map(|(i, _)| tile[i] as u64)
        .product::<u64>()
        .max(1);

    let mut tile_in_bytes = 0u64;
    let mut sharing = Vec::with_capacity(expr.num_inputs());
    for (s, dims) in expr.inputs.iter().enumerate() {
        // A data-dependent (gather) dimension loads at most one row per
        // addressing element, i.e. the tile extent of the axes the input is
        // missing — not the whole table.
        let rows_needed: usize = expr
            .axes_missing_from_input(s)
            .iter()
            .map(|&a| tile[a])
            .product();
        let tile_elems: usize = dims
            .iter()
            .map(|e| {
                if e.is_indirect() {
                    e.indirect_size.unwrap_or(1).min(rows_needed)
                } else {
                    dim_extent(e, tile)
                }
            })
            .product();
        tile_in_bytes += (tile_elems * dtype_bytes[s]) as u64;
        // Requesters of the same region: grid cells that differ only along
        // axes missing from this tensor.
        let miss: usize = expr
            .axes_missing_from_input(s)
            .iter()
            .map(|&a| grid[a])
            .product();
        let tensor_bytes: usize = expr.input_shape(s).iter().product::<usize>() * dtype_bytes[s];
        let shard = tensor_bytes.div_ceil(cores).max(1);
        sharing.push((miss.min(cores), shard, (tile_elems * dtype_bytes[s]) as u64));
    }
    let tile_out_elems: usize = expr.output.iter().map(|e| dim_extent(e, tile)).product();
    let tile_out_bytes = (tile_out_elems * out_dtype_bytes) as u64;
    // Splitting a reduction axis across tiles means every output region is
    // stored (read-modify-write accumulated) by all its partial producers:
    // the owning shards serve `R ×` the output traffic.
    let red_splits: usize = expr
        .axes
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == AxisKind::Reduction)
        .map(|(i, _)| grid[i])
        .product();
    if red_splits > 1 {
        let out_total: usize = expr.output_shape().iter().product::<usize>() * out_dtype_bytes;
        let shard = out_total.div_ceil(cores).max(1);
        sharing.push((red_splits.min(cores), shard, 2 * tile_out_bytes));
    }

    TilePlan {
        tile: tile.to_vec(),
        subtask: SubTaskDesc {
            kind: op.kind,
            out_elems,
            red_elems,
            window,
            in_bytes: tile_in_bytes,
            out_bytes: tile_out_bytes,
        },
        tasks,
        rounds,
        last_round_cores,
        tile_in_bytes,
        tile_out_bytes,
        buffer_bytes: (tile_in_bytes + tile_out_bytes) as usize,
        sharing,
    }
}

/// Lowers one operator's VGM execution to timing supersteps.
///
/// Each round is one load-compute-store cycle: an exchange phase whose
/// serving hot spots follow the `S × shard` model, then a compute phase.
pub fn lower_op_vgm(tp: &TilePlan, spec: &ChipSpec, node: Option<usize>) -> Vec<Superstep> {
    let cores = spec.num_cores;
    let chips = spec.num_chips();
    let mut steps = Vec::with_capacity(tp.rounds);
    for round in 0..tp.rounds {
        let active = if round + 1 == tp.rounds {
            tp.last_round_cores
        } else {
            cores
        };
        let per_core_in = tp.tile_in_bytes + tp.tile_out_bytes;
        // Hottest server: `S` concurrent requesters of one region hammer the
        // cores owning its shards. The per-owner egress is bounded both by
        // `S × shard` (the shard fully re-served to every requester group)
        // and by the round's total demand for the slot.
        let serving: u64 = tp
            .sharing
            .iter()
            .map(|&(s, shard, tile_bytes)| {
                let s = s.min(active) as u64;
                (s * shard as u64).min(active as u64 * tile_bytes)
            })
            .max()
            .unwrap_or(0);
        let max_core_out = serving.max(per_core_in);
        let total = per_core_in * active as u64;
        // Each tile piece lives on a different shard owner: the requester
        // issues one message per owner contacted (paper §2.2, "redundant
        // inter-core communications"), plus the store-back.
        let messages: u64 = tp
            .sharing
            .iter()
            .map(|&(_, shard, tile_bytes)| (tile_bytes.div_ceil(shard as u64)).min(active as u64))
            .sum::<u64>()
            + 1;
        let cross = if chips > 1 {
            // VGM shards spread uniformly: most accesses cross chips.
            (total as f64 * (chips - 1) as f64 / chips as f64) as u64
        } else {
            0
        };
        let mut ss = Superstep::new(node, Phase::Execute);
        ss.exchange_summary = Some(ExchangeSummary {
            total_bytes: total,
            max_core_out,
            max_core_in: per_core_in,
            cross_chip_bytes: cross,
            offchip_bytes: 0,
            active_cores: active,
            max_core_messages: messages,
        });
        steps.push(ss);
        let mut cs = Superstep::new(node, Phase::Execute);
        cs.compute_summary = Some(ComputeSummary {
            desc: tp.subtask,
            active_cores: active,
        });
        steps.push(cs);
    }
    steps
}

/// Checks the per-core memory budget of a tile under the VGM layout.
pub fn fits(tp: &TilePlan, vgm_bytes: usize, spec: &ChipSpec, cfg: &VgmConfig) -> bool {
    let reserve = (spec.sram_per_core as f64 * cfg.runtime_reserve) as usize;
    let buffers = if cfg.double_buffer {
        tp.buffer_bytes * 2
    } else {
        tp.buffer_bytes
    };
    vgm_bytes + buffers + reserve + spec.shift_buffer <= spec.sram_per_core
}

/// Assembles a whole-graph VGM program from per-node tile plans.
/// Latency follows the paper's methodology: the model is resident on chip
/// and host I/O is excluded (inputs are warm; §6.1 measures on-chip
/// execution).
pub fn assemble_program(graph: &Graph, plans: &[TilePlan], spec: &ChipSpec) -> Result<Program> {
    let _ = graph;
    let mut program = Program::new();
    for (i, tp) in plans.iter().enumerate() {
        program.steps.extend(lower_op_vgm(tp, spec, Some(i)));
    }
    Ok(program)
}

/// Element sizes of an operator's inputs/output from the graph.
pub fn node_dtypes(graph: &Graph, op: &Operator) -> (Vec<usize>, usize) {
    t10_core::compiler::node_dtypes(graph, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::{builders, DType};

    fn fc_graph(m: usize, k: usize, n: usize, layers: usize) -> Graph {
        let mut g = Graph::new("fc");
        let mut cur = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let mut dim = k;
        for i in 0..layers {
            let w = g.add_value(format!("w{i}"), vec![dim, n], DType::F16, ValueKind::Weight);
            let kind = if i + 1 == layers {
                ValueKind::Output
            } else {
                ValueKind::Activation
            };
            let o = g.add_value(format!("h{i}"), vec![m, n], DType::F16, kind);
            g.add_node(
                format!("fc{i}"),
                builders::matmul(cur, w, o, m, dim, n).unwrap(),
            )
            .unwrap();
            cur = o;
            dim = n;
        }
        g
    }

    #[test]
    fn liveness_reuse_shrinks_vgm() {
        let g = fc_graph(256, 256, 256, 6);
        let spec = ChipSpec::ipu_with_cores(64);
        let with = vgm_bytes_per_core(&g, &spec, true);
        let without = vgm_bytes_per_core(&g, &spec, false);
        assert!(with < without, "with={with}, without={without}");
        // Weights are always resident either way.
        let weights: usize = g.parameter_bytes() / 64;
        assert!(with >= weights);
    }

    #[test]
    fn tile_plan_counts_rounds() {
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let tp = tile_plan(&op, &[2, 2], 2, &[16, 64, 16], &spec);
        // Grid = 4 × 1 × 4 = 16 cells on 16 cores → 1 round.
        assert_eq!(tp.tasks, 16);
        assert_eq!(tp.rounds, 1);
        assert_eq!(tp.last_round_cores, 16);
        // A tile [16,64] + B tile [64,16] both 2048 B; out 512 B.
        assert_eq!(tp.tile_in_bytes, 2 * 2048);
        assert_eq!(tp.tile_out_bytes, 512);
        // Each A region is requested by grid_n = 4 cells and vice versa.
        assert_eq!(tp.sharing[0].0, 4);
        assert_eq!(tp.sharing[1].0, 4);
    }

    #[test]
    fn smaller_tiles_mean_more_rounds() {
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let small = tile_plan(&op, &[2, 2], 2, &[8, 64, 8], &spec);
        let big = tile_plan(&op, &[2, 2], 2, &[32, 64, 32], &spec);
        assert!(small.rounds > big.rounds);
        assert!(small.buffer_bytes < big.buffer_bytes);
    }

    #[test]
    fn vgm_exchange_is_imbalanced() {
        // Small tiles over a large shared tensor: many cores request the
        // same weight regions concurrently and hammer the shard owners.
        let op = builders::matmul(0, 1, 2, 1024, 1024, 1024).unwrap();
        let spec = ChipSpec::ipu_with_cores(64);
        let tp = tile_plan(&op, &[2, 2], 2, &[16, 1024, 16], &spec);
        let steps = lower_op_vgm(&tp, &spec, Some(0));
        let e = steps[0].exchange_summary.unwrap();
        // The hottest server handles more than an average requester.
        assert!(e.max_core_out > e.max_core_in, "{e:?}");
    }

    #[test]
    fn fits_accounts_for_vgm_and_reserve() {
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let tp = tile_plan(&op, &[2, 2], 2, &[16, 64, 16], &spec);
        let cfg = VgmConfig::default();
        assert!(fits(&tp, 0, &spec, &cfg));
        assert!(!fits(&tp, spec.sram_per_core, &spec, &cfg));
        let reserved = VgmConfig {
            runtime_reserve: 0.99,
            ..cfg
        };
        assert!(!fits(&tp, 0, &spec, &reserved));
    }

    #[test]
    fn assemble_program_covers_all_nodes() {
        let g = fc_graph(64, 64, 64, 3);
        let spec = ChipSpec::ipu_with_cores(16);
        let plans: Vec<TilePlan> = g
            .nodes()
            .iter()
            .map(|n| {
                let (d, o) = node_dtypes(&g, &n.op);
                tile_plan(&n.op, &d, o, &[16, 64, 16], &spec)
            })
            .collect();
        let p = assemble_program(&g, &plans, &spec).unwrap();
        for i in 0..3 {
            assert!(p.steps.iter().any(|s| s.node == Some(i)));
        }
        // Host I/O is excluded from the latency methodology: no off-chip
        // steps appear in the program.
        assert!(p.steps.iter().all(|s| s
            .exchange_summary
            .map(|e| e.offchip_bytes == 0)
            .unwrap_or(true)));
    }
}
