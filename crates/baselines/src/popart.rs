//! A PopART-style vendor-runtime stand-in.
//!
//! The vendor library differs from the compiler baselines in three ways that
//! drive the paper's observations (Figures 12, 17):
//!
//! * **no tile search** — kernels use fixed, conservative tile shapes with
//!   untiled reduction dimensions (library GEMMs compute complete dot
//!   products), so sub-operators under-use local memory;
//! * **no liveness reuse** — the runtime keeps every activation of the model
//!   resident in the VGM, so memory runs out at much smaller batch sizes;
//! * **runtime reserve** — a fixed fraction of each core's scratchpad is
//!   held back for runtime structures and double buffering.

use std::time::Instant;

use t10_device::ChipSpec;
use t10_ir::{AxisKind, Graph, Operator};

use crate::vgm::{
    assemble_program, fits, node_dtypes, tile_plan, vgm_bytes_per_core, TilePlan, VgmCompiled,
    VgmConfig,
};
use crate::Result;
use t10_core::compile_err;

/// The vendor runtime's fixed memory policy.
pub fn popart_config() -> VgmConfig {
    VgmConfig {
        liveness_reuse: false,
        runtime_reserve: 0.01,
        double_buffer: false,
    }
}

/// The fixed vendor tile: small aligned spatial tiles; the reduction stays
/// untiled for 1-D contractions (library GEMMs compute whole dot products)
/// but windowed/channel reductions are clamped to keep halo buffers sane.
fn fixed_tile(op: &Operator, spec: &ChipSpec) -> Vec<usize> {
    let _ = spec;
    let multi_reduction = op
        .expr
        .axes
        .iter()
        .filter(|a| a.kind == AxisKind::Reduction)
        .count()
        > 1;
    op.expr
        .axes
        .iter()
        .map(|a| match a.kind {
            AxisKind::Reduction if multi_reduction => a.size.min(64),
            AxisKind::Reduction => a.size,
            AxisKind::Spatial => a.size.min(8),
        })
        .collect()
}

/// Compiles a whole graph with the vendor heuristic.
pub fn compile_graph_popart(graph: &Graph, spec: &ChipSpec) -> Result<VgmCompiled> {
    let t0 = Instant::now();
    let cfg = popart_config();
    let vgm = vgm_bytes_per_core(graph, spec, cfg.liveness_reuse);
    let mut plans: Vec<TilePlan> = Vec::with_capacity(graph.nodes().len());
    for node in graph.nodes() {
        let (d, o) = node_dtypes(graph, &node.op);
        let tile = fixed_tile(&node.op, spec);
        let tp = tile_plan(&node.op, &d, o, &tile, spec);
        if !fits(&tp, vgm, spec, &cfg) {
            return Err(compile_err!(
                "{}: model does not fit under the vendor memory policy",
                node.name
            ));
        }
        plans.push(tp);
    }
    let program = assemble_program(graph, &plans, spec)?;
    Ok(VgmCompiled {
        program,
        vgm_bytes_per_core: vgm,
        tiles: plans.iter().map(|p| p.tile.clone()).collect(),
        buffer_bytes: plans.iter().map(|p| p.buffer_bytes).collect(),
        compile_seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roller;
    use t10_ir::{builders, DType, ValueKind};

    fn fc_graph(m: usize, k: usize, n: usize, layers: usize) -> Graph {
        let mut g = Graph::new("fc");
        let mut cur = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let mut dim = k;
        for i in 0..layers {
            let w = g.add_value(format!("w{i}"), vec![dim, n], DType::F16, ValueKind::Weight);
            let kind = if i + 1 == layers {
                ValueKind::Output
            } else {
                ValueKind::Activation
            };
            let o = g.add_value(format!("h{i}"), vec![m, n], DType::F16, kind);
            g.add_node(
                format!("fc{i}"),
                builders::matmul(cur, w, o, m, dim, n).unwrap(),
            )
            .unwrap();
            cur = o;
            dim = n;
        }
        g
    }

    #[test]
    fn popart_is_slower_than_roller() {
        let g = fc_graph(512, 512, 512, 2);
        let spec = ChipSpec::ipu_with_cores(64);
        let p = compile_graph_popart(&g, &spec).unwrap();
        let r = roller::compile_graph_roller(&g, &spec).unwrap();
        let run = |prog| {
            let mut sim = t10_sim::Simulator::new(spec.clone(), t10_sim::SimulatorMode::Timing);
            sim.run(prog).unwrap().total_time
        };
        let tp = run(&p.program);
        let tr = run(&r.program);
        assert!(tp > tr, "popart={tp}, roller={tr}");
    }

    #[test]
    fn popart_runs_out_of_memory_first() {
        // Scale the batch until the vendor policy OOMs while Roller fits.
        let spec = ChipSpec::ipu_with_cores(64);
        let mut popart_failed_at = None;
        let mut roller_failed_at = None;
        for bs_pow in 0..12 {
            let m = 64 << bs_pow;
            let g = fc_graph(m, 512, 512, 8);
            if popart_failed_at.is_none() && compile_graph_popart(&g, &spec).is_err() {
                popart_failed_at = Some(bs_pow);
            }
            if roller_failed_at.is_none() && roller::compile_graph_roller(&g, &spec).is_err() {
                roller_failed_at = Some(bs_pow);
            }
        }
        let p = popart_failed_at.expect("popart eventually OOMs");
        if let Some(r) = roller_failed_at {
            assert!(p < r, "popart at {p}, roller at {r}");
        }
    }

    #[test]
    fn fixed_tile_keeps_full_reduction() {
        let op = builders::matmul(0, 1, 2, 512, 384, 512).unwrap();
        let spec = ChipSpec::ipu_with_cores(64);
        let t = fixed_tile(&op, &spec);
        assert_eq!(t[1], 384);
        assert!(t[0] <= 32 && t[2] <= 32);
    }
}
