//! Baseline compilers for the T10 evaluation.
//!
//! The paper compares T10 against the vendor runtime (PopART) and two DL
//! compilers adapted to the IPU (Roller, Ansor). All three support the
//! distributed on-chip memory by mimicking a shared memory: a **virtual
//! global memory** (VGM) reserved across every core's scratchpad, with a
//! *load-compute-store* execution model (paper §2.2, Figure 2 (a)).
//!
//! * [`vgm`] — the shared VGM abstraction: sharded tensor placement, the
//!   imbalanced access/serving model, per-core memory accounting;
//! * [`roller`] — an rTile-style compiler: aligned tiles grown to saturate
//!   per-core memory, ranked by compute intensity (Zhu et al., OSDI '22);
//! * [`ansor`] — a measurement-driven tile search (Zheng et al., OSDI '20):
//!   random candidate sampling evaluated on the hardware model — similar
//!   final performance to Roller at much higher compile time (§6.2);
//! * [`popart`] — a vendor-library stand-in: fixed conservative tiling plus
//!   per-core replication of non-contraction activations, which makes it
//!   slower and earlier to run out of memory (Figures 12, 17).

// Baseline planners index their own candidate tables and the shapes
// validated at IR construction. The analysis crates (`t10-verify`,
// `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod ansor;
pub mod popart;
pub mod roller;
pub mod vgm;

pub use ansor::compile_graph_ansor;
pub use popart::compile_graph_popart;
pub use roller::compile_graph_roller;
pub use vgm::{VgmCompiled, VgmConfig};

/// Result alias reusing the compiler error type.
pub type Result<T> = std::result::Result<T, t10_core::CompileError>;
