//! An Ansor-style measurement-driven tile search (Zheng et al., OSDI '20).
//!
//! Ansor samples candidate schedules and ranks them by measured performance.
//! Our stand-in samples random power-of-two tiles over the same VGM space as
//! Roller, "measures" each candidate on the hardware model (the role the
//! physical IPU plays in the paper), and evolves the best candidates by
//! mutation. It reaches plans comparable to Roller's while spending far more
//! compile time on measurements (paper §6.2: "they have similar performance
//! by exploring the same optimization space").

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use t10_device::ChipSpec;
use t10_ir::Graph;

use crate::roller::op_time_estimate;
use crate::vgm::{
    assemble_program, fits, node_dtypes, tile_plan, vgm_bytes_per_core, TilePlan, VgmCompiled,
    VgmConfig,
};
use crate::Result;
use t10_core::compile_err;

/// Number of random candidates sampled per operator.
const SAMPLES: usize = 48;
/// Number of evolution rounds applied to the best candidates.
const EVOLUTION_ROUNDS: usize = 4;

fn random_tile(sizes: &[usize], rng: &mut StdRng) -> Vec<usize> {
    sizes
        .iter()
        .map(|&l| {
            let max_pow = (usize::BITS - l.leading_zeros()) as usize;
            let p = rng.random_range(0..=max_pow);
            (1usize << p).min(l)
        })
        .collect()
}

fn mutate_tile(tile: &[usize], sizes: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let mut t = tile.to_vec();
    let a = rng.random_range(0..t.len());
    if rng.random_range(0..2) == 0 {
        t[a] = (t[a] * 2).min(sizes[a]);
    } else {
        t[a] = (t[a] / 2).max(1);
    }
    t
}

/// Searches a tile for one operator by sampled measurement.
pub fn select_tile(
    op: &t10_ir::Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    vgm_bytes: usize,
    spec: &ChipSpec,
    cfg: &VgmConfig,
    seed: u64,
) -> Result<TilePlan> {
    let sizes: Vec<usize> = op.expr.axes.iter().map(|a| a.size).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(TilePlan, f64)> = None;
    let consider = |tile: &[usize], best: &mut Option<(TilePlan, f64)>| {
        let tp = tile_plan(op, dtype_bytes, out_dtype_bytes, tile, spec);
        if !fits(&tp, vgm_bytes, spec, cfg) {
            return;
        }
        let t = op_time_estimate(&tp, spec);
        if best.as_ref().map(|b| t < b.1).unwrap_or(true) {
            *best = Some((tp, t));
        }
    };
    for _ in 0..SAMPLES {
        let tile = random_tile(&sizes, &mut rng);
        consider(&tile, &mut best);
    }
    for _ in 0..EVOLUTION_ROUNDS {
        if let Some((tp, _)) = best.clone() {
            for _ in 0..SAMPLES / 4 {
                let tile = mutate_tile(&tp.tile, &sizes, &mut rng);
                consider(&tile, &mut best);
            }
        }
    }
    best.map(|(tp, _)| tp)
        .ok_or_else(|| compile_err!("no sampled tile fits beside the VGM stripe"))
}

/// Compiles a whole graph Ansor-style.
pub fn compile_graph_ansor(graph: &Graph, spec: &ChipSpec) -> Result<VgmCompiled> {
    let t0 = Instant::now();
    let cfg = VgmConfig::default();
    let vgm = vgm_bytes_per_core(graph, spec, cfg.liveness_reuse);
    let mut plans = Vec::with_capacity(graph.nodes().len());
    for (i, node) in graph.nodes().iter().enumerate() {
        let (d, o) = node_dtypes(graph, &node.op);
        let tp = select_tile(&node.op, &d, o, vgm, spec, &cfg, 0x5eed ^ i as u64)
            .map_err(|e| compile_err!("{}: {}", node.name, e.message()))?;
        plans.push(tp);
    }
    let program = assemble_program(graph, &plans, spec)?;
    Ok(VgmCompiled {
        program,
        vgm_bytes_per_core: vgm,
        tiles: plans.iter().map(|p| p.tile.clone()).collect(),
        buffer_bytes: plans.iter().map(|p| p.buffer_bytes).collect(),
        compile_seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roller;
    use t10_ir::{builders, DType, ValueKind};

    fn mm_graph(m: usize, k: usize, n: usize) -> Graph {
        let mut g = Graph::new("mm");
        let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![k, n], DType::F16, ValueKind::Weight);
        let c = g.add_value("c", vec![m, n], DType::F16, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, c, m, k, n).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn ansor_finds_roller_class_plans() {
        let g = mm_graph(512, 512, 512);
        let spec = ChipSpec::ipu_with_cores(64);
        let ansor = compile_graph_ansor(&g, &spec).unwrap();
        let roller = roller::compile_graph_roller(&g, &spec).unwrap();
        let ta = op_time_estimate(
            &tile_plan(&g.nodes()[0].op, &[2, 2], 2, &ansor.tiles[0], &spec),
            &spec,
        );
        let tr = op_time_estimate(
            &tile_plan(&g.nodes()[0].op, &[2, 2], 2, &roller.tiles[0], &spec),
            &spec,
        );
        // Same optimization space → within 2.5x of each other.
        assert!(ta / tr < 2.5 && tr / ta < 2.5, "ansor={ta}, roller={tr}");
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let a = select_tile(&op, &[2, 2], 2, 0, &spec, &VgmConfig::default(), 9).unwrap();
        let b = select_tile(&op, &[2, 2], 2, 0, &spec, &VgmConfig::default(), 9).unwrap();
        assert_eq!(a.tile, b.tile);
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = vec![64, 16, 4];
        let mut tile = vec![8, 16, 1];
        for _ in 0..100 {
            tile = mutate_tile(&tile, &sizes, &mut rng);
            for (t, s) in tile.iter().zip(&sizes) {
                assert!(*t >= 1 && t <= s);
            }
        }
    }
}
