//! Ablation studies of T10's design choices (beyond the paper's figures):
//!
//! 1. rotation vs replication (the Figure 3 (b)/(c) trade-off, swept);
//! 2. inter-operator reconciliation on/off;
//! 3. tree vs linear cross-core reduction;
//! 4. sensitivity of the T10-vs-Roller gap to the modeled per-message
//!    exchange overhead (honesty check for the hardware substitution).

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_core::cost::CostModel;
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_device::ChipSpec;
use t10_ir::builders;

fn main() {
    rotation_vs_replication();
    reconciliation_value();
    tree_vs_linear_reduce();
    message_overhead_sensitivity();
}

/// Figure 3's trade-off, quantified: the same matmul with the weight fully
/// replicated vs rotated at increasing temporal factors.
fn rotation_vs_replication() {
    println!("== Ablation 1: rotation vs replication (Fig. 3 trade-off) ==");
    let spec = ChipSpec::ipu_with_cores(64);
    let cost = CostModel::calibrate(&spec, 192, 7).unwrap();
    let op = builders::matmul(0, 1, 2, 512, 512, 512).unwrap();
    let mut t = Table::new(vec!["f_t (weight)", "mem/core", "exec", "shift bytes/core"]);
    for f in [1usize, 2, 4, 8] {
        let temporal = if f == 1 {
            TemporalChoice::none()
        } else {
            TemporalChoice::rotate(0, f)
        };
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![8, 1, 8],
                temporal: vec![TemporalChoice::none(), temporal],
            },
        )
        .unwrap();
        let c = cost.estimate_plan(&op, &plan);
        t.row(vec![
            f.to_string(),
            fmt_bytes(c.mem_per_core),
            fmt_time(c.exec_time),
            fmt_bytes(plan.total_shift_bytes_per_core() as usize),
        ]);
    }
    t.print();
    println!("(higher f_t: less memory, more communication — paper §3)\n");
}

/// How much Algorithm 1 buys over the naive all-minimal-idle schedule.
fn reconciliation_value() {
    println!("== Ablation 2: inter-operator reconciliation on/off ==");
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let mut t = Table::new(vec!["model", "naive (min idle)", "reconciled", "gain"]);
    for (name, g) in [
        ("BERT-BS1", t10_models::transformer::bert_large(1).unwrap()),
        ("ResNet-BS8", t10_models::resnet::resnet18(8).unwrap()),
    ] {
        let Some((compiled, _)) = platform.t10_full(&g, bench_search_config()) else {
            continue;
        };
        let naive = compiled
            .reconciled
            .trajectory
            .first()
            .map(|p| p.total_time)
            .unwrap_or(f64::NAN);
        let best = compiled.reconciled.total_time;
        t.row(vec![
            name.to_string(),
            fmt_time(naive),
            fmt_time(best),
            format!("{:.2}x", naive / best),
        ]);
    }
    t.print();
    println!("(the greedy -ΔTs/ΔMi policy converts idle memory into setup savings)\n");
}

/// Tree vs linear accumulation of partial outputs across a reduction group.
fn tree_vs_linear_reduce() {
    println!("== Ablation 3: tree vs linear cross-core reduction ==");
    let spec = ChipSpec::ipu_with_cores(1472);
    let cost = CostModel::calibrate(&spec, 192, 7).unwrap();
    let mut t = Table::new(vec![
        "reduce group",
        "linear rounds",
        "tree rounds",
        "linear time",
        "tree time",
    ]);
    let bytes = 2048u64;
    for group in [4usize, 16, 64] {
        let per_round = cost.predict_exchange(bytes);
        let linear = (group - 1) as f64 * per_round;
        let rounds = (usize::BITS - (group - 1).leading_zeros()) as usize;
        let tree = rounds as f64 * per_round;
        t.row(vec![
            group.to_string(),
            (group - 1).to_string(),
            rounds.to_string(),
            fmt_time(linear),
            fmt_time(tree),
        ]);
    }
    t.print();
    println!("(layer-norm/softmax reductions over many cores need the tree)\n");
}

/// The modeled per-message overhead drives how badly VGM's scattered reads
/// hurt; sweep it to show the conclusion is not knife-edge.
fn message_overhead_sensitivity() {
    println!("== Ablation 4: sensitivity to the per-message exchange overhead ==");
    let g = t10_models::transformer::vit_base(1).unwrap();
    let mut t = Table::new(vec!["msg overhead", "Roller", "T10", "speedup"]);
    for ns in [0.0f64, 75.0, 150.0, 300.0] {
        let mut spec = ChipSpec::ipu_mk2();
        spec.exchange_msg_overhead = ns * 1e-9;
        let platform = Platform::new(spec);
        let roller = platform.roller(&g);
        let t10 = platform.t10(&g, bench_search_config());
        t.row(vec![
            format!("{ns:.0} ns"),
            fmt_time(roller.latency),
            fmt_time(t10.latency),
            format!("{:.2}x", roller.latency / t10.latency),
        ]);
    }
    t.print();
    println!("(T10 wins even with free messages; the margin grows with overhead)");
}
