//! Figure 2 (b): per-core memory footprint of representative operators
//! under the VGM abstraction, and the potential sub-operator growth from
//! removing the VGM ("Ratio").

#![allow(clippy::unwrap_used)]

use t10_baselines::roller::select_tile;
use t10_baselines::vgm::{vgm_bytes_per_core, VgmConfig};
use t10_bench::table::fmt_bytes;
use t10_bench::Table;
use t10_core::compiler::node_dtypes;
use t10_device::ChipSpec;
use t10_ir::OpKind;

fn main() {
    let spec = ChipSpec::ipu_mk2();
    let cfg = VgmConfig::default();
    println!("== Figure 2 (b): per-core memory footprint under VGM ==");
    let mut t = Table::new(vec![
        "operator",
        "model",
        "VGM stripe",
        "sub-operator",
        "ratio (growth w/o VGM)",
    ]);
    let cases: Vec<(&str, &str, t10_ir::Graph)> = vec![
        (
            "MatMul",
            "BERT",
            t10_models::transformer::bert_large(1).unwrap(),
        ),
        ("Conv", "ResNet", t10_models::resnet::resnet18(8).unwrap()),
        (
            "MatMul",
            "ViT",
            t10_models::transformer::vit_base(1).unwrap(),
        ),
        (
            "MatMul",
            "OPT-13B layer",
            t10_models::zoo::build_llm("opt13b", t10_models::llm::DecoderCfg::opt_13b(), 1, 8)
                .unwrap(),
        ),
    ];
    for (opname, model, g) in cases {
        let vgm = vgm_bytes_per_core(&g, &spec, cfg.liveness_reuse);
        // Pick the largest operator of the requested kind.
        let kind = match opname {
            "Conv" => OpKind::Conv2d,
            _ => OpKind::MatMul,
        };
        let node = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind == kind)
            .max_by_key(|n| n.op.flops())
            .expect("node");
        let (d, o) = node_dtypes(&g, &node.op);
        // Sub-operator size under the VGM, and the growth from merging the
        // active operator's own VGM share into the sub-operator region
        // (Figure 2 (c)): the active op's tensors occupy
        // `bytes / cores` of every core's stripe.
        let with_vgm = select_tile(&node.op, &d, o, vgm, &spec, &cfg)
            .map(|tp| tp.buffer_bytes)
            .unwrap_or(0);
        let active_share: usize = node
            .op
            .inputs
            .iter()
            .chain(std::iter::once(&node.op.output))
            .map(|&v| g.value(v).bytes())
            .sum::<usize>()
            / spec.num_cores;
        let ratio = if with_vgm > 0 {
            format!("+{:.0}%", active_share as f64 / with_vgm as f64 * 100.0)
        } else {
            "n/a (does not fit)".to_string()
        };
        t.row(vec![
            opname.to_string(),
            model.to_string(),
            fmt_bytes(vgm),
            fmt_bytes(with_vgm),
            ratio,
        ]);
    }
    t.print();
    println!("(paper reports 22%-180% potential sub-operator growth)");
}
