//! Figure 8: cost-model accuracy — measured vs predicted execution time of
//! random sub-tasks, per operator type.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_bench::Table;
use t10_core::cost::CostModel;
use t10_device::ChipSpec;
use t10_ir::OpKind;

fn main() {
    let spec = ChipSpec::ipu_mk2();
    let model = CostModel::calibrate(&spec, 256, 42).expect("calibrate");
    println!("== Figure 8: cost model accuracy (measured vs predicted) ==");
    let mut t = Table::new(vec![
        "operator",
        "samples",
        "R^2",
        "mean abs err",
        "p95 rel err",
    ]);
    for kind in [
        OpKind::MatMul,
        OpKind::Conv2d,
        OpKind::Elementwise,
        OpKind::Reduce,
        OpKind::Pool,
        OpKind::Gather,
    ] {
        let pairs = model.accuracy_eval(kind, 300, 99);
        let n = pairs.len() as f64;
        let mean = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let ss_tot: f64 = pairs.iter().map(|p| (p.0 - mean).powi(2)).sum();
        let ss_res: f64 = pairs.iter().map(|p| (p.0 - p.1).powi(2)).sum();
        let r2 = 1.0 - ss_res / ss_tot;
        let mae = pairs.iter().map(|p| (p.0 - p.1).abs()).sum::<f64>() / n;
        let mut rel: Vec<f64> = pairs.iter().map(|p| (p.0 - p.1).abs() / p.0).collect();
        rel.sort_by(f64::total_cmp);
        let p95 = rel[(rel.len() * 95) / 100];
        t.row(vec![
            format!("{kind}"),
            format!("{}", pairs.len()),
            format!("{r2:.4}"),
            format!("{:.2} us", mae * 1e6),
            format!("{:.1}%", p95 * 100.0),
        ]);
    }
    t.print();
    println!(
        "(paper: near-perfect accuracy for all types except conv, whose\n\
         vendor kernel applies black-box optimizations)"
    );
}
