//! Figure 14: average inter-core bandwidth utilized by each core during
//! inter-core data transfers (the 5.5 GB/s link is the roofline).

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::Table;
use t10_device::ChipSpec;
use t10_models::all_models;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 14: average utilized inter-core bandwidth per core ==");
    let mut t = Table::new(vec!["model", "Roller (GB/s)", "T10 (GB/s)"]);
    for spec in all_models() {
        let Ok(g) = (spec.build)(1) else { continue };
        let roller = platform.roller(&g);
        let t10 = platform.t10(&g, bench_search_config());
        let bw = |o: &t10_bench::Outcome| {
            o.report
                .as_ref()
                .map(|r| format!("{:.2}", r.avg_link_bandwidth() / 1e9))
                .unwrap_or_else(|| "OOM".to_string())
        };
        t.row(vec![spec.name.to_string(), bw(&roller), bw(&t10)]);
    }
    t.print();
    println!("(paper: T10 4.42-4.73 GB/s, Roller 2.61-3.87 GB/s; link = 5.5)");
}
