//! Figure 16: T10 compilation time for different models and batch sizes.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{batch_doubling, bench_search_config, Platform};
use t10_bench::Table;
use t10_device::ChipSpec;
use t10_models::all_models;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 16: T10 compilation time ==");
    let mut t = Table::new(vec!["model", "batch", "compile time (s)", "distinct ops"]);
    for spec in all_models() {
        for bs in batch_doubling(4) {
            let Ok(g) = (spec.build)(bs) else { continue };
            let compiler = platform.compiler(bench_search_config());
            let start = std::time::Instant::now();
            let ok = compiler.compile_graph(&g).is_ok();
            let secs = start.elapsed().as_secs_f64();
            t.row(vec![
                spec.name.to_string(),
                bs.to_string(),
                if ok {
                    format!("{secs:.2}")
                } else {
                    format!("{secs:.2} (OOM)")
                },
                format!("{}", g.nodes().len()),
            ]);
        }
    }
    t.print();
    println!(
        "(identical operators share cached searches — §6.3; absolute times\n\
         are not comparable to the paper's CPU, but growth with batch is)"
    );
}
