//! Figure 23: LLM decode-layer latency, IPU+T10 vs A100 (roofline), across
//! batch sizes — the aggregated-SRAM-bandwidth argument of §6.7.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{batch_doubling, bench_search_config, Platform};
use t10_bench::table::fmt_time;
use t10_bench::Table;
use t10_device::{ChipSpec, GpuSpec};
use t10_models::zoo;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let gpu = GpuSpec::a100();
    println!("== Figure 23: LLM decode layers, IPU+T10 vs A100 ==");
    let mut t = Table::new(vec!["model", "batch", "A100", "IPU+T10", "IPU vs A100"]);
    for (name, cfg, layers) in zoo::llm_models() {
        let max_bs = if quick { 4 } else { 8 };
        for bs in batch_doubling(max_bs) {
            let Ok(g) = zoo::build_llm(name, cfg, layers, bs) else {
                continue;
            };
            let gpu_time = gpu.graph_time(&g);
            let t10 = platform.t10(&g, bench_search_config());
            let ratio = if t10.latency.is_finite() {
                format!("{:.2}x", gpu_time / t10.latency)
            } else {
                "-".to_string()
            };
            t.row(vec![
                name.to_string(),
                bs.to_string(),
                fmt_time(gpu_time),
                fmt_time(t10.latency),
                ratio,
            ]);
        }
    }
    t.print();
    println!(
        "(paper: up to 16.38x lower latency, 3.10x on average; the gap\n\
         narrows at large batch where both become compute-bound)"
    );
}
