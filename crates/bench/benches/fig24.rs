//! Figure 24: emulated execution with off-chip HBM at different bandwidths,
//! comparing Roller vs T10 under Single-Op and Inter-Op prefetch
//! scheduling (paper §6.8).

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::fmt_time;
use t10_bench::Table;
use t10_core::hbm::{schedule_inter_op, schedule_single_op, HbmOp};
use t10_device::ChipSpec;
use t10_ir::ValueKind;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    // An OPT-13B layer pair at batch 8: the LLM workload of §6.8.
    let g = t10_models::zoo::build_llm("opt-13b", t10_models::llm::DecoderCfg::opt_13b(), 1, 8)
        .unwrap();
    // Per-op exec time from each compiler + per-op weight bytes.
    let weights_of = |i: usize| -> u64 {
        g.node(i)
            .op
            .inputs
            .iter()
            .filter(|&&v| g.value(v).kind == ValueKind::Weight)
            .map(|&v| g.value(v).bytes() as u64)
            .sum()
    };
    let per_op = |report: &t10_sim::RunReport| -> Vec<HbmOp> {
        (0..g.nodes().len())
            .map(|i| HbmOp {
                exec_time: report.per_node.get(&i).map(|n| n.total()).unwrap_or(0.0),
                weight_bytes: weights_of(i),
            })
            .collect()
    };
    let t10 = platform.t10(&g, bench_search_config());
    let roller = platform.roller(&g);
    let (Some(rt), Some(rr)) = (&t10.report, &roller.report) else {
        println!("workload does not fit");
        return;
    };
    let t10_ops = per_op(rt);
    let roller_ops = per_op(rr);
    // 596 MB execute / 298 MB prefetch double buffering (§6.8).
    let prefetch_buffer: u64 = 298 << 20;
    println!("== Figure 24: emulated HBM bandwidth sweep (OPT-13B layers, BS8) ==");
    let mut t = Table::new(vec![
        "HBM GB/s",
        "Roller Single-Op",
        "Roller Inter-Op",
        "T10 Single-Op",
        "T10 Inter-Op",
    ]);
    for gbps in [100.0f64, 200.0, 450.0, 900.0, 1940.0] {
        let bw = gbps * 1e9;
        t.row(vec![
            format!("{gbps:.0}"),
            fmt_time(schedule_single_op(&roller_ops, bw)),
            fmt_time(schedule_inter_op(&roller_ops, bw, prefetch_buffer)),
            fmt_time(schedule_single_op(&t10_ops, bw)),
            fmt_time(schedule_inter_op(&t10_ops, bw, prefetch_buffer)),
        ]);
    }
    t.print();
    println!(
        "(paper: at low bandwidth all schedules are HBM-bound and grouping\n\
         helps; at high bandwidth execution dominates and T10 wins)"
    );
}
