//! Figure 19: trade-off between compilation time and resulting execution
//! latency under different intra-operator constraint settings.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::Platform;
use t10_bench::table::fmt_time;
use t10_bench::Table;
use t10_core::search::SearchConfig;
use t10_device::ChipSpec;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 19: constraint settings vs compile time & latency ==");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let settings = [
        (
            "strict (u=0.95, pad=0.95, 10 cand)",
            0.95,
            0.95,
            10usize,
            10_000usize,
        ),
        ("default (u=0.9, pad=0.9, 24 cand)", 0.9, 0.9, 24, 40_000),
        ("loose (u=0.7, pad=0.8, 32 cand)", 0.7, 0.8, 32, 120_000),
    ];
    let mut t = Table::new(vec!["setting", "model", "compile (s)", "latency"]);
    for (name, builder) in [
        ("ViT-BS1", t10_models::transformer::vit_base(1).unwrap()),
        ("ResNet-BS1", t10_models::resnet::resnet18(1).unwrap()),
    ] {
        for (label, util, pad, cand, max_cfg) in settings {
            let cfg = SearchConfig {
                min_core_utilization: util,
                padding_threshold: pad,
                max_candidates_per_axis: cand,
                max_configs: max_cfg,
                threads,
                collect_samples: false,
                ..SearchConfig::default()
            };
            let start = std::time::Instant::now();
            let o = platform.t10(&builder, cfg);
            let secs = start.elapsed().as_secs_f64();
            t.row(vec![
                label.to_string(),
                name.to_string(),
                format!("{secs:.2}"),
                fmt_time(o.latency),
            ]);
        }
    }
    t.print();
    println!("(paper: a strict setting compiling in a minute is near-optimal)");
}
