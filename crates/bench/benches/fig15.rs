//! Figure 15: distribution of T10's per-operator speedup over Roller.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::Table;
use t10_device::ChipSpec;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 15: per-operator speedup distribution (T10 vs Roller) ==");
    let mut t = Table::new(vec![
        "model",
        "batch",
        "ops",
        ">1x (improved)",
        "<0.9x (slowed)",
        "median speedup",
        "max speedup",
    ]);
    for (name, g) in [
        ("BERT", t10_models::transformer::bert_large(1).unwrap()),
        ("ResNet", t10_models::resnet::resnet18(1).unwrap()),
        ("ResNet", t10_models::resnet::resnet18(8).unwrap()),
    ] {
        let bs = g.name().rsplit("bs").next().unwrap_or("?").to_string();
        let roller = platform.roller(&g);
        let t10 = platform.t10(&g, bench_search_config());
        let (Some(rr), Some(rt)) = (&roller.report, &t10.report) else {
            continue;
        };
        let mut speedups: Vec<f64> = Vec::new();
        for (node, nb) in &rt.per_node {
            if let Some(rb) = rr.per_node.get(node) {
                if rb.total() > 0.0 && nb.total() > 0.0 {
                    speedups.push(rb.total() / nb.total());
                }
            }
        }
        speedups.sort_by(f64::total_cmp);
        let n = speedups.len();
        let improved = speedups.iter().filter(|&&s| s > 1.0).count();
        let slowed = speedups.iter().filter(|&&s| s < 0.9).count();
        t.row(vec![
            name.to_string(),
            bs,
            n.to_string(),
            format!("{:.0}%", improved as f64 / n as f64 * 100.0),
            format!("{:.0}%", slowed as f64 / n as f64 * 100.0),
            format!("{:.2}x", speedups[n / 2]),
            format!("{:.2}x", speedups[n - 1]),
        ]);
    }
    t.print();
    println!("(paper: >80% of operators improved, <10% slowed; max 10.79x)");
}
