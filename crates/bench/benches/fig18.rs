//! Figure 18: intra-operator search-space sizes — complete space, the
//! filtered space after the §5 constraints, and the Pareto-optimal space.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::Platform;
use t10_bench::Table;
use t10_core::search::{search_operator, SearchConfig};
use t10_device::ChipSpec;
use t10_ir::OpKind;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 18: search-space size reduction ==");
    let mut t = Table::new(vec![
        "operator (model)",
        "complete space",
        "filtered space",
        "Pareto-optimal",
    ]);
    let mut cfg = SearchConfig::strict();
    cfg.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cfg.max_candidates_per_axis = 20;
    cfg.max_configs = 60_000;

    // Conv from ResNet, MatMul from BERT, GatherV2 from BERT's embedding —
    // the three largest spaces of the paper's Figure 18.
    let resnet = t10_models::resnet::resnet18(8).unwrap();
    let conv = resnet
        .nodes()
        .iter()
        .filter(|n| n.op.kind == OpKind::Conv2d)
        .max_by_key(|n| n.op.flops())
        .unwrap();
    let bert = t10_models::transformer::bert_large(1).unwrap();
    let mm = bert
        .nodes()
        .iter()
        .filter(|n| n.op.kind == OpKind::MatMul)
        .max_by_key(|n| n.op.flops())
        .unwrap();
    let gather = bert
        .nodes()
        .iter()
        .find(|n| n.op.kind == OpKind::Gather)
        .unwrap();

    for (label, graph, node) in [
        ("Conv (ResNet-BS8)", &resnet, conv),
        ("MatMul (BERT-BS1)", &bert, mm),
        ("GatherV2 (BERT-BS1)", &bert, gather),
    ] {
        let (d, o) = t10_core::compiler::node_dtypes(graph, &node.op);
        let (pareto, stats) =
            search_operator(&node.op, &d, o, platform.cost_model(), &cfg).unwrap();
        t.row(vec![
            label.to_string(),
            format!(
                "{:.2e}{}",
                stats.complete_space,
                if stats.truncated { " (trunc)" } else { "" }
            ),
            format!("{}", stats.filtered_space),
            format!("{}", pareto.len()),
        ]);
    }
    t.print();
    println!(
        "(paper: complete up to 1e19, filtered < 1e4, Pareto < 50;\n\
         the complete space grows exponentially with operator dimensions)"
    );
}
