//! Figure 22: IPU MK2 + T10 vs A100 + TensorRT (roofline model) across
//! batch sizes.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{batch_doubling, bench_search_config, Platform};
use t10_bench::table::fmt_time;
use t10_bench::Table;
use t10_device::{ChipSpec, GpuSpec};
use t10_models::all_models;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let gpu = GpuSpec::a100();
    println!("== Figure 22: IPU+T10 vs A100 (roofline) ==");
    let mut t = Table::new(vec!["model", "batch", "A100", "IPU+T10", "IPU vs A100"]);
    for spec in all_models() {
        let max_bs = if quick { 2 } else { 4 };
        for bs in batch_doubling(max_bs) {
            let Ok(g) = (spec.build)(bs) else { continue };
            let gpu_time = gpu.graph_time(&g);
            let t10 = platform.t10(&g, bench_search_config());
            let ratio = if t10.latency.is_finite() {
                format!("{:.2}x", gpu_time / t10.latency)
            } else {
                "-".to_string()
            };
            t.row(vec![
                spec.name.to_string(),
                bs.to_string(),
                fmt_time(gpu_time),
                fmt_time(t10.latency),
                ratio,
            ]);
        }
    }
    t.print();
    println!(
        "(paper: IPU+T10 wins at small batch — up to 2.44x — and loses at\n\
         large batch where peak FLOPS dominates)"
    );
}
