//! Tables 2 and 3 of the paper: the model zoo and hardware specifications.

#![allow(clippy::unwrap_used)]

use t10_bench::Table;
use t10_device::{ChipSpec, GpuSpec};
use t10_models::{all_models, zoo};

fn main() {
    println!("== Table 2: DNN models used in the evaluation ==");
    let mut t = Table::new(vec!["Name", "Description", "# Parameters (built)"]);
    for spec in all_models() {
        let g = (spec.build)(1).expect("build");
        let params = g.parameter_count();
        let shown = if params >= 1_000_000 {
            format!("{:.0}M", params as f64 / 1e6)
        } else {
            format!("{:.0}K", params as f64 / 1e3)
        };
        t.row(vec![
            spec.name.to_string(),
            spec.description.to_string(),
            format!("{shown} (paper: {})", spec.params),
        ]);
    }
    for (name, cfg, layers) in zoo::llm_models() {
        let g = zoo::build_llm(name, cfg, layers, 1).expect("build");
        t.row(vec![
            name.to_string(),
            format!("LLM decode, {layers} layers/chip"),
            format!(
                "{:.2}B full model (layer params x total layers)",
                cfg.layer_params() as f64 * full_layers(name) as f64 / 1e9
            ),
        ]);
        drop(g);
    }
    t.print();

    println!("\n== Table 3: hardware specifications ==");
    let ipu = ChipSpec::ipu_mk2();
    let gpu = GpuSpec::a100();
    let mut t = Table::new(vec!["", "A100 GPU", "IPU MK2"]);
    t.row(vec![
        "Local cache (total)".to_string(),
        "20.25 MB".to_string(),
        format!("{:.0} MB", ipu.total_sram() as f64 / (1024.0 * 1024.0)),
    ]);
    t.row(vec![
        "Global cache".to_string(),
        format!("{} MB", gpu.l2_bytes / (1024 * 1024)),
        "N/A".to_string(),
    ]);
    t.row(vec![
        "Off-chip B/W".to_string(),
        format!("{:.0} GB/s", gpu.hbm_bw / 1e9),
        format!("{:.0} GB/s", ipu.offchip_bw / 1e9),
    ]);
    t.row(vec![
        "Inter-core B/W".to_string(),
        "N/A".to_string(),
        format!("{:.1} GB/s per link", ipu.link_bw / 1e9),
    ]);
    t.row(vec![
        "Number of cores".to_string(),
        "108".to_string(),
        format!("{}", ipu.num_cores),
    ]);
    t.row(vec![
        "Total FP16 FLOPS".to_string(),
        format!("{:.0} TFLOPS", gpu.peak_flops / 1e12),
        format!("{:.0} TFLOPS", ipu.peak_flops() / 1e12),
    ]);
    t.print();
}

fn full_layers(name: &str) -> usize {
    match name {
        "OPT-1.3B" | "RetNet-1.3B" => 24,
        "OPT-13B" | "Llama2-13B" => 40,
        "Llama2-7B" => 32,
        _ => 24,
    }
}
