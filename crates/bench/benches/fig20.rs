//! Figure 20: the inter-operator memory-reconciliation search trajectory —
//! end-to-end time as idle-state memory is traded for setup time.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_device::ChipSpec;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    for (name, g) in [
        ("BERT-BS1", t10_models::transformer::bert_large(1).unwrap()),
        ("ResNet-BS8", t10_models::resnet::resnet18(8).unwrap()),
    ] {
        println!("\n== Figure 20: inter-operator search trajectory, {name} ==");
        let Some((compiled, _)) = platform.t10_full(&g, bench_search_config()) else {
            println!("does not fit");
            continue;
        };
        let cap = platform.spec.sram_per_core - platform.spec.shift_buffer;
        let mut t = Table::new(vec![
            "step",
            "idle mem/core",
            "idle % of SRAM",
            "setup time",
            "exec time",
            "total",
        ]);
        let traj = &compiled.reconciled.trajectory;
        let stride = (traj.len() / 12).max(1);
        for (i, p) in traj.iter().enumerate() {
            if i % stride != 0 && i + 1 != traj.len() {
                continue;
            }
            t.row(vec![
                i.to_string(),
                fmt_bytes(p.idle_mem),
                format!("{:.0}%", p.idle_mem as f64 / cap as f64 * 100.0),
                fmt_time(p.setup_time),
                fmt_time(p.exec_time),
                fmt_time(p.total_time),
            ]);
        }
        t.print();
        println!(
            "selected: idle {} ({:.0}% of SRAM), total {}",
            fmt_bytes(compiled.reconciled.idle_mem),
            compiled.reconciled.idle_mem as f64 / cap as f64 * 100.0,
            fmt_time(compiled.reconciled.total_time)
        );
    }
    println!("\n(paper: the chosen plan expands idle memory to cut setup time)");
}
