//! Figure 21: scalability with the number of cores, including multi-chip
//! V-IPU devices (2,944 and 5,888 cores) whose inter-chip IPU-Link caps
//! the effective inter-core bandwidth.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::fmt_time;
use t10_bench::Table;
use t10_device::ChipSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("== Figure 21: performance vs number of cores ==");
    let mut t = Table::new(vec![
        "model",
        "cores",
        "Roller",
        "Roller transfer%",
        "T10",
        "T10 transfer%",
    ]);
    let core_counts: Vec<ChipSpec> = if quick {
        vec![ChipSpec::ipu_with_cores(736), ChipSpec::ipu_mk2()]
    } else {
        vec![
            ChipSpec::ipu_with_cores(368),
            ChipSpec::ipu_with_cores(736),
            ChipSpec::ipu_mk2(),
            ChipSpec::vipu(2),
            ChipSpec::vipu(4),
        ]
    };
    for spec in &core_counts {
        let platform = Platform::new(spec.clone());
        for (name, g) in [
            ("ResNet-BS1", t10_models::resnet::resnet18(1).unwrap()),
            ("NeRF-BS1", t10_models::nerf::nerf(1).unwrap()),
        ] {
            let roller = platform.roller(&g);
            let t10 = platform.t10(&g, bench_search_config());
            let pct = |o: &t10_bench::Outcome| {
                o.report
                    .as_ref()
                    .map(|r| format!("{:.0}%", r.transfer_fraction() * 100.0))
                    .unwrap_or_default()
            };
            t.row(vec![
                name.to_string(),
                spec.num_cores.to_string(),
                fmt_time(roller.latency),
                pct(&roller),
                fmt_time(t10.latency),
                pct(&t10),
            ]);
        }
    }
    t.print();
    println!(
        "(paper: T10 always outperforms Roller and keeps scaling across\n\
         chips, while Roller's VGM traffic hits the inter-chip IPU-Link)"
    );
}
