//! Figure 17: candidate execution plans of representative operators — the
//! (memory, latency) scatter, T10's Pareto frontier, and the single points
//! PopART-style and Roller-style compilers pick.

#![allow(clippy::unwrap_used)]

use t10_baselines::roller;
use t10_baselines::vgm::VgmConfig;
use t10_bench::harness::Platform;
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_core::search::{search_operator, SearchConfig};
use t10_device::ChipSpec;
use t10_ir::OpKind;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let mut cfg = SearchConfig::strict();
    cfg.collect_samples = true;
    cfg.max_candidates_per_axis = 20;
    cfg.max_configs = 30_000;
    cfg.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let resnet = t10_models::resnet::resnet18(32).unwrap();
    let bert = t10_models::transformer::bert_large(1).unwrap();
    let nerf = t10_models::nerf::nerf(1).unwrap();
    let pick = |g: &t10_ir::Graph, kind: OpKind| {
        g.nodes()
            .iter()
            .filter(|n| n.op.kind == kind)
            .max_by_key(|n| n.op.flops())
            .unwrap()
            .clone()
    };
    let cases = vec![
        ("Conv (ResNet-BS32)", &resnet, pick(&resnet, OpKind::Conv2d)),
        ("MatMul (BERT-BS1)", &bert, pick(&bert, OpKind::MatMul)),
        ("MatMul (NeRF-BS1)", &nerf, pick(&nerf, OpKind::MatMul)),
    ];
    for (label, graph, node) in cases {
        println!("\n== Figure 17: {label} ==");
        let (d, o) = t10_core::compiler::node_dtypes(graph, &node.op);
        let (pareto, stats) =
            search_operator(&node.op, &d, o, platform.cost_model(), &cfg).unwrap();
        println!(
            "explored {} plans; Pareto frontier ({} stars):",
            stats.filtered_space,
            pareto.len()
        );
        let mut t = Table::new(vec!["mem/core", "latency", "cores", "steps"]);
        for sp in pareto.plans().iter().take(12) {
            t.row(vec![
                fmt_bytes(sp.cost.mem_per_core),
                fmt_time(sp.cost.exec_time),
                sp.plan.cores_used.to_string(),
                sp.plan.total_steps.to_string(),
            ]);
        }
        t.print();
        // The Roller triangle: its single tile choice priced the same way.
        let vgm_cfg = VgmConfig::default();
        let vgm = t10_baselines::vgm::vgm_bytes_per_core(graph, &platform.spec, true);
        if let Ok(tp) = roller::select_tile(&node.op, &d, o, vgm, &platform.spec, &vgm_cfg) {
            let time = roller::op_time_estimate(&tp, &platform.spec);
            println!(
                "Roller picks: {} buffers + {} VGM stripe, {} (triangle)",
                fmt_bytes(tp.buffer_bytes),
                fmt_bytes(vgm),
                fmt_time(time)
            );
        }
    }
    println!("\n(paper: T10's space contains plans both faster and leaner than the baselines')");
}
