//! Figure 12: end-to-end inference latency of T10 vs PopART/Ansor/Roller on
//! the IPU MK2, sweeping batch size until the model no longer fits ("OOM").

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{batch_doubling, bench_search_config, Platform};
use t10_bench::table::fmt_time;
use t10_bench::{Outcome, Table};
use t10_device::ChipSpec;
use t10_models::all_models;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 12: DNN inference latency on IPU MK2 (simulated) ==");
    let mut t = Table::new(vec![
        "model",
        "batch",
        "PopART",
        "Ansor",
        "Roller",
        "T10",
        "T10 vs Roller",
    ]);
    for spec in all_models() {
        let max_bs = match (spec.name, quick) {
            (_, true) => 2,
            ("BERT", _) => 8,
            ("ViT", _) => 8,
            ("ResNet", _) => 16,
            ("NeRF", _) => 4,
            _ => 8,
        };
        let mut t10_dead = false;
        for bs in batch_doubling(max_bs) {
            let g = match (spec.build)(bs) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{}-bs{bs}: build failed: {e}", spec.name);
                    continue;
                }
            };
            let popart = platform.popart(&g);
            let ansor = platform.ansor(&g);
            let roller = platform.roller(&g);
            let t10 = if t10_dead {
                // Once T10 OOMs at a batch size, larger ones cannot fit.
                Outcome {
                    system: "T10",
                    latency: f64::INFINITY,
                    report: None,
                    compile_seconds: 0.0,
                }
            } else {
                platform.t10(&g, bench_search_config())
            };
            if !t10.latency.is_finite() {
                t10_dead = true;
            }
            let speedup = if t10.latency.is_finite() && roller.latency.is_finite() {
                format!("{:.2}x", roller.latency / t10.latency)
            } else {
                "-".to_string()
            };
            t.row(vec![
                spec.name.to_string(),
                bs.to_string(),
                fmt_time(popart.latency),
                fmt_time(ansor.latency),
                fmt_time(roller.latency),
                fmt_time(t10.latency),
                speedup,
            ]);
            // Stop the sweep once every system is out of memory.
            if !popart.latency.is_finite()
                && !ansor.latency.is_finite()
                && !roller.latency.is_finite()
                && !t10.latency.is_finite()
            {
                break;
            }
        }
    }
    t.print();
    println!("(OOM = the program cannot fit into the chip, the paper's '*')");
}
