//! Criterion micro-benchmarks of the compiler's own hot paths: plan
//! derivation, cost-model evaluation, intra-operator search, functional
//! simulation, and the timing simulator's superstep throughput.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t10_core::cost::CostModel;
use t10_core::lower::{lower_functional, lower_timing};
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_core::search::{search_operator, SearchConfig};
use t10_device::ChipSpec;
use t10_ir::builders;
use t10_sim::{Simulator, SimulatorMode};

fn bench_plan_build(c: &mut Criterion) {
    let op = builders::matmul(0, 1, 2, 512, 512, 512).unwrap();
    let config = PlanConfig {
        f_op: vec![8, 2, 8],
        temporal: vec![TemporalChoice::rotate(1, 4), TemporalChoice::rotate(0, 2)],
    };
    c.bench_function("plan_build_matmul", |b| {
        b.iter(|| Plan::build(black_box(&op), &[2, 2], 2, black_box(config.clone())).unwrap())
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let spec = ChipSpec::ipu_with_cores(64);
    let cost = CostModel::calibrate(&spec, 128, 3).unwrap();
    let op = builders::matmul(0, 1, 2, 512, 512, 512).unwrap();
    let plan = Plan::build(
        &op,
        &[2, 2],
        2,
        PlanConfig {
            f_op: vec![8, 2, 4],
            temporal: vec![TemporalChoice::rotate(1, 4), TemporalChoice::none()],
        },
    )
    .unwrap();
    c.bench_function("cost_estimate_plan", |b| {
        b.iter(|| cost.estimate_plan(black_box(&op), black_box(&plan)))
    });
    c.bench_function("cost_calibrate_64c", |b| {
        b.iter(|| CostModel::calibrate(black_box(&spec), 64, 3).unwrap())
    });
}

fn bench_search(c: &mut Criterion) {
    let spec = ChipSpec::ipu_with_cores(64);
    let cost = CostModel::calibrate(&spec, 128, 3).unwrap();
    let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
    let cfg = SearchConfig::fast();
    c.bench_function("search_matmul_256_64c", |b| {
        b.iter(|| search_operator(black_box(&op), &[2, 2], 2, &cost, &cfg).unwrap())
    });
}

fn bench_lowering(c: &mut Criterion) {
    let spec = ChipSpec::ipu_with_cores(16);
    let op = builders::matmul(0, 1, 2, 16, 32, 16).unwrap();
    let plan = Plan::build(
        &op,
        &[4, 4],
        4,
        PlanConfig {
            f_op: vec![4, 1, 4],
            temporal: vec![TemporalChoice::rotate(1, 4), TemporalChoice::rotate(0, 4)],
        },
    )
    .unwrap();
    c.bench_function("lower_functional_16c", |b| {
        b.iter(|| lower_functional(black_box(&op), black_box(&plan)).unwrap())
    });
    c.bench_function("lower_timing_16c", |b| {
        b.iter(|| lower_timing(black_box(&op), black_box(&plan), &spec, Some(0)))
    });
    let f = lower_functional(&op, &plan).unwrap();
    c.bench_function("functional_sim_16c", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(spec.clone(), SimulatorMode::Functional);
            sim.run(black_box(&f.program)).unwrap()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_plan_build, bench_cost_model, bench_search, bench_lowering
);
criterion_main!(benches);
