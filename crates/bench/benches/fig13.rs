//! Figure 13: breakdown of compute vs inter-core data-transfer time for
//! Roller and T10 across the DNN models.

#![allow(clippy::unwrap_used)]

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::Table;
use t10_device::ChipSpec;
use t10_models::all_models;

fn main() {
    let platform = Platform::new(ChipSpec::ipu_mk2());
    println!("== Figure 13: data-transfer overhead (fraction of runtime) ==");
    let mut t = Table::new(vec![
        "model",
        "batch",
        "Roller transfer %",
        "T10 transfer %",
    ]);
    for spec in all_models() {
        for bs in [1usize, 4] {
            let Ok(g) = (spec.build)(bs) else { continue };
            let roller = platform.roller(&g);
            let t10 = platform.t10(&g, bench_search_config());
            let pct = |o: &t10_bench::Outcome| {
                o.report
                    .as_ref()
                    .map(|r| format!("{:.0}%", r.transfer_fraction() * 100.0))
                    .unwrap_or_else(|| "OOM".to_string())
            };
            t.row(vec![
                spec.name.to_string(),
                bs.to_string(),
                pct(&roller),
                pct(&t10),
            ]);
        }
    }
    t.print();
    println!("(paper: Roller 50%-74%, T10 8%-43%)");
}
