//! A minimal aligned-column table printer for bench output.

/// An aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.chars().count()..*w {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds as an adaptive human-readable latency.
pub fn fmt_time(s: f64) -> String {
    if s == f64::INFINITY || s.is_nan() {
        return "OOM".to_string();
    }
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats bytes as KB/MB.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["model", "latency"]);
        t.row(vec!["BERT", "1.2 ms"]);
        t.row(vec!["NeRF-verylongname", "800 us"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[3].contains("800 us"));
        // All data lines have the latency column aligned.
        let col = lines[2].find("1.2").unwrap();
        assert_eq!(lines[3].find("800").unwrap(), col);
    }

    #[test]
    fn fmt_time_ranges() {
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(2e-3), "2.00 ms");
        assert_eq!(fmt_time(5e-6), "5.0 us");
        assert_eq!(fmt_time(f64::INFINITY), "OOM");
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
    }
}
