//! Benchmark harness reproducing every table and figure of the T10 paper.
//!
//! Each evaluation artifact is a `harness = false` bench target (see
//! `Cargo.toml`), so `cargo bench` regenerates the full evaluation:
//!
//! | Target   | Paper artifact |
//! |----------|----------------|
//! | `tables` | Tables 2 & 3 (model zoo, hardware specs) |
//! | `fig02b` | Figure 2 (b): per-core VGM memory footprint & ratio |
//! | `fig08`  | Figure 8: cost-model accuracy scatter |
//! | `fig12`  | Figure 12: end-to-end inference latency |
//! | `fig13`  | Figure 13: data-transfer overhead breakdown |
//! | `fig14`  | Figure 14: inter-core bandwidth utilization |
//! | `fig15`  | Figure 15: per-operator speedup distribution |
//! | `fig16`  | Figure 16: compilation time |
//! | `fig17`  | Figure 17: intra-operator plan candidates |
//! | `fig18`  | Figure 18: search-space sizes |
//! | `fig19`  | Figure 19: constraint settings vs compile time |
//! | `fig20`  | Figure 20: inter-operator search trajectory |
//! | `fig21`  | Figure 21: core-count scalability |
//! | `fig22`  | Figure 22: IPU+T10 vs A100+TensorRT |
//! | `fig23`  | Figure 23: LLM decode latency vs A100 |
//! | `fig24`  | Figure 24: emulated HBM bandwidth sweep |
//! | `microbench` | Criterion micro-benchmarks of the compiler itself |
//!
//! The measured numbers come from the timing simulator (the hardware-gate
//! substitution documented in `DESIGN.md`); `EXPERIMENTS.md` records how the
//! shapes compare with the paper's.

// Harness code: tables and figure series are indexed by the loops that
// build them. The analysis crates (`t10-verify`, `t10-prove`) stay
// index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod harness;
pub mod table;

pub use harness::{Outcome, Platform};
pub use table::Table;
