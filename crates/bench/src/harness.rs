//! Shared evaluation plumbing: compile with each system, run on the timing
//! simulator, report.

use t10_baselines::{compile_graph_ansor, compile_graph_popart, compile_graph_roller};
use t10_core::compiler::{CompiledGraph, Compiler};
use t10_core::cost::CostModel;
use t10_core::search::SearchConfig;
use t10_device::program::Program;
use t10_device::ChipSpec;
use t10_ir::Graph;
use t10_sim::{RunReport, Simulator, SimulatorMode};

/// Result of compiling and simulating one model with one system.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// System name ("T10", "Roller", ...).
    pub system: &'static str,
    /// Simulated end-to-end latency, seconds (`f64::INFINITY` = OOM).
    pub latency: f64,
    /// Full simulator report (empty on OOM).
    pub report: Option<RunReport>,
    /// Compile wall-clock seconds.
    pub compile_seconds: f64,
}

impl Outcome {
    fn oom(system: &'static str) -> Self {
        Self {
            system,
            latency: f64::INFINITY,
            report: None,
            compile_seconds: 0.0,
        }
    }
}

/// One chip plus a calibrated cost model, shared across bench runs.
pub struct Platform {
    /// The chip under evaluation.
    pub spec: ChipSpec,
    cost: CostModel,
}

impl Platform {
    /// Calibrates a platform for a chip.
    pub fn new(spec: ChipSpec) -> Self {
        let cost = CostModel::calibrate(&spec, 192, 7).expect("calibration");
        Self { spec, cost }
    }

    /// The calibrated cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// A T10 compiler sharing this platform's cost model.
    pub fn compiler(&self, cfg: SearchConfig) -> Compiler {
        Compiler::with_cost_model(self.cost.clone(), cfg)
    }

    /// Runs a program on the timing simulator.
    pub fn run(&self, program: &Program) -> RunReport {
        let mut sim = Simulator::new(self.spec.clone(), SimulatorMode::Timing);
        sim.run(program).expect("timing simulation")
    }

    /// Compiles with T10 and simulates. `None` report means OOM.
    pub fn t10(&self, graph: &Graph, cfg: SearchConfig) -> Outcome {
        match self.compiler(cfg).compile_graph(graph) {
            Ok(compiled) => self.finish("T10", compiled.compile_seconds, &compiled.program),
            Err(_) => Outcome::oom("T10"),
        }
    }

    /// Compiles with T10 and also returns the compilation artifacts.
    pub fn t10_full(&self, graph: &Graph, cfg: SearchConfig) -> Option<(CompiledGraph, Outcome)> {
        match self.compiler(cfg).compile_graph(graph) {
            Ok(compiled) => {
                let o = self.finish("T10", compiled.compile_seconds, &compiled.program);
                Some((compiled, o))
            }
            Err(_) => None,
        }
    }

    /// Compiles with the Roller baseline and simulates.
    pub fn roller(&self, graph: &Graph) -> Outcome {
        match compile_graph_roller(graph, &self.spec) {
            Ok(c) => self.finish("Roller", c.compile_seconds, &c.program),
            Err(_) => Outcome::oom("Roller"),
        }
    }

    /// Compiles with the Ansor baseline and simulates.
    pub fn ansor(&self, graph: &Graph) -> Outcome {
        match compile_graph_ansor(graph, &self.spec) {
            Ok(c) => self.finish("Ansor", c.compile_seconds, &c.program),
            Err(_) => Outcome::oom("Ansor"),
        }
    }

    /// Compiles with the PopART stand-in and simulates.
    pub fn popart(&self, graph: &Graph) -> Outcome {
        match compile_graph_popart(graph, &self.spec) {
            Ok(c) => self.finish("PopART", c.compile_seconds, &c.program),
            Err(_) => Outcome::oom("PopART"),
        }
    }

    fn finish(&self, system: &'static str, compile_seconds: f64, program: &Program) -> Outcome {
        let report = self.run(program);
        Outcome {
            system,
            latency: report.total_time,
            report: Some(report),
            compile_seconds,
        }
    }
}

/// The search configuration used for the figure benches: sized so a whole
/// model compiles in seconds on one CPU while keeping the paper's default
/// 90% parallelism/padding constraints.
pub fn bench_search_config() -> SearchConfig {
    SearchConfig {
        min_core_utilization: 0.9,
        padding_threshold: 0.9,
        max_candidates_per_axis: 24,
        max_configs: 40_000,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        collect_samples: false,
        ..SearchConfig::default()
    }
}

/// Doubling batch sizes `1, 2, 4, ...` up to `max`.
pub fn batch_doubling(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut b = 1;
    while b <= max {
        v.push(b);
        b *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::{builders, DType, ValueKind};

    fn small_graph() -> Graph {
        let mut g = Graph::new("small");
        let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![64, 64], DType::F16, ValueKind::Weight);
        let c = g.add_value("c", vec![64, 64], DType::F16, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, c, 64, 64, 64).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn platform_runs_all_systems() {
        let p = Platform::new(ChipSpec::ipu_with_cores(16));
        let g = small_graph();
        for o in [
            p.t10(&g, SearchConfig::fast()),
            p.roller(&g),
            p.ansor(&g),
            p.popart(&g),
        ] {
            assert!(o.latency.is_finite(), "{} OOMed", o.system);
            assert!(o.latency > 0.0);
        }
    }

    #[test]
    fn batch_doubling_sequence() {
        assert_eq!(batch_doubling(8), vec![1, 2, 4, 8]);
        assert_eq!(batch_doubling(1), vec![1]);
        assert_eq!(batch_doubling(6), vec![1, 2, 4]);
    }
}
