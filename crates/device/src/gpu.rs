//! A100 GPU roofline executor for the paper's §6.6/§6.7 comparisons.
//!
//! The paper compares an IPU MK2 against an A100 running TensorRT. We model
//! the GPU with the roofline methodology the paper itself uses for its HBM
//! emulation (§6.8, citing Williams et al.): per-operator time is the
//! maximum of a compute bound and a memory bound, plus a launch overhead.
//! Working sets that fit in the 40 MB L2 are charged at L2 bandwidth, which
//! captures TensorRT's warm-cache behaviour for small operators.

use serde::{Deserialize, Serialize};
use t10_ir::{Graph, Operator, ValueKind};

/// Datasheet-level GPU description (Table 3 for the A100).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device name.
    pub name: String,
    /// Peak FP16 tensor-core FLOPS.
    pub peak_flops: f64,
    /// HBM bandwidth, bytes/second.
    pub hbm_bw: f64,
    /// L2 ("global cache") capacity in bytes.
    pub l2_bytes: usize,
    /// L2 bandwidth, bytes/second.
    pub l2_bw: f64,
    /// Per-kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// Sustained fraction of peak FLOPS achieved by tuned kernels.
    pub compute_efficiency: f64,
}

impl GpuSpec {
    /// The A100 (40 GB SXM) of the paper's Table 3.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            peak_flops: 312e12,
            hbm_bw: 1.94e12,
            l2_bytes: 40 * 1024 * 1024,
            l2_bw: 4.5e12,
            launch_overhead: 4.0e-6,
            compute_efficiency: 0.72,
        }
    }

    /// Roofline time of one operator, in seconds.
    ///
    /// `graph` supplies value roles: weights stream from HBM unless the
    /// whole working set fits in L2; activations are assumed L2/HBM resident
    /// according to the same working-set test.
    pub fn op_time(&self, graph: &Graph, op: &Operator) -> f64 {
        let mut bytes = graph.value(op.output).bytes();
        for &v in &op.inputs {
            bytes += graph.value(v).bytes();
        }
        let mem_time = if bytes <= self.l2_bytes {
            bytes as f64 / self.l2_bw
        } else {
            bytes as f64 / self.hbm_bw
        };
        let compute_time = op.flops() as f64 / (self.peak_flops * self.compute_efficiency);
        self.launch_overhead + compute_time.max(mem_time)
    }

    /// Roofline time of a whole graph (sum of per-operator times).
    pub fn graph_time(&self, graph: &Graph) -> f64 {
        graph
            .nodes()
            .iter()
            .map(|n| self.op_time(graph, &n.op))
            .sum()
    }

    /// Bytes of persistent weights read by one operator.
    pub fn op_weight_bytes(&self, graph: &Graph, op: &Operator) -> usize {
        op.inputs
            .iter()
            .filter(|&&v| graph.value(v).kind == ValueKind::Weight)
            .map(|&v| graph.value(v).bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::{builders, DType, Graph, ValueKind};

    fn fc_graph(m: usize, k: usize, n: usize) -> Graph {
        let mut g = Graph::new("fc");
        let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![k, n], DType::F16, ValueKind::Weight);
        let c = g.add_value("c", vec![m, n], DType::F16, ValueKind::Output);
        g.add_node("fc", builders::matmul(a, w, c, m, k, n).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn small_batch_is_memory_bound() {
        let spec = GpuSpec::a100();
        // One decode-style row against a large weight: memory dominates.
        let g = fc_graph(1, 8192, 8192);
        let op = &g.nodes()[0].op;
        let t = spec.op_time(&g, op);
        let weight_bytes = 2.0 * 8192.0 * 8192.0;
        let mem = weight_bytes / spec.hbm_bw;
        assert!(t > mem, "t={t}, mem bound={mem}");
        let compute = op.flops() as f64 / (spec.peak_flops * spec.compute_efficiency);
        assert!(mem > 10.0 * compute);
    }

    #[test]
    fn large_batch_is_compute_bound() {
        let spec = GpuSpec::a100();
        let g = fc_graph(8192, 8192, 8192);
        let op = &g.nodes()[0].op;
        let t = spec.op_time(&g, op);
        let compute = op.flops() as f64 / (spec.peak_flops * spec.compute_efficiency);
        assert!(t >= compute);
        let mem = (3.0 * 2.0 * 8192.0 * 8192.0) / spec.hbm_bw;
        assert!(compute > mem);
    }

    #[test]
    fn tiny_op_hits_l2() {
        let spec = GpuSpec::a100();
        let g = fc_graph(64, 64, 64);
        let t = spec.op_time(&g, &g.nodes()[0].op);
        // Launch overhead dominates a tiny op.
        assert!(t < 1.2 * spec.launch_overhead + 1e-6);
    }

    #[test]
    fn graph_time_sums_ops() {
        let spec = GpuSpec::a100();
        let g = fc_graph(256, 256, 256);
        assert!((spec.graph_time(&g) - spec.op_time(&g, &g.nodes()[0].op)).abs() < 1e-12);
    }

    #[test]
    fn weight_bytes_counts_weights_only() {
        let spec = GpuSpec::a100();
        let g = fc_graph(4, 8, 16);
        assert_eq!(spec.op_weight_bytes(&g, &g.nodes()[0].op), 8 * 16 * 2);
    }
}
