//! Hardware models for the T10 compiler.
//!
//! T10 abstracts an inter-core connected AI chip as "multiple cores, each
//! equipped with dedicated local memory and interconnected via a high-speed
//! on-chip network" (paper §4.4). This crate provides:
//!
//! * [`spec::ChipSpec`] — datasheet-level chip descriptions (Graphcore IPU
//!   MK2, core-scaled variants, multi-chip V-IPU boards);
//! * [`truth`] — the *ground-truth* vertex timing function used in place of
//!   profiling a physical core (our hardware-gate substitution: the paper
//!   profiles sub-tasks on a real IPU core; we evaluate the same sub-tasks
//!   against a deterministic, mildly nonlinear hardware model);
//! * [`program`] — the abstract compute-shift program a compiler emits and a
//!   simulator executes: supersteps of homogeneous vertex tasks and shifts,
//!   following the `allocate` / `compute` / `shift` interface of §4.4;
//! * [`iface::DeviceInterface`] — the three-primitive device trait;
//! * [`gpu`] — an A100 roofline executor for the §6.6/§6.7 comparisons.

// Chip geometry tables are fixed-size constants indexed by validated
// core ids. The analysis crates (`t10-verify`, `t10-prove`) stay
// index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod boundary;
pub mod gpu;
pub mod iface;
pub mod program;
pub mod spec;
pub mod truth;

pub use boundary::{BoundaryContract, GraphEdge, OpClass};
pub use gpu::GpuSpec;
pub use iface::DeviceInterface;
pub use program::{
    BufferDecl, BufferId, ComputeSummary, ExchangeSummary, Program, ShiftOp, SubTaskDesc,
    Superstep, VertexTask,
};
pub use spec::ChipSpec;
