//! The abstracted device interface of paper §4.4.
//!
//! T10 is "designed to be extensible for general distributed on-chip
//! memory-based accelerators" through three primitives: `allocate` (a
//! compile-time memory interface), `compute` (a per-core code-generation
//! interface), and `shift` (a runtime communication primitive). Compilers in
//! this workspace target the trait; `t10-sim` provides the implementation.

use crate::program::{BufferDecl, BufferId, ExchangeSummary, ShiftOp, VertexTask};

/// Error type for device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceError {
    message: String,
}

impl DeviceError {
    /// Creates a new error.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device error: {}", self.message)
    }
}

impl std::error::Error for DeviceError {}

/// The three-primitive device abstraction (paper §4.4).
pub trait DeviceInterface {
    /// Allocates a buffer in a core's scratchpad (compile-time interface).
    ///
    /// Fails if the core's memory capacity would be exceeded.
    fn allocate(&mut self, decl: BufferDecl) -> Result<BufferId, DeviceError>;

    /// Frees a buffer (tensor liveness reuse, §4.4).
    fn free(&mut self, id: BufferId) -> Result<(), DeviceError>;

    /// Runs one homogeneous compute set; returns the phase time in seconds.
    fn compute(&mut self, tasks: &[VertexTask]) -> Result<f64, DeviceError>;

    /// Runs one exchange phase; returns the phase time in seconds.
    ///
    /// `summary` lets timing-only callers price an exchange without
    /// materializing the individual shifts.
    fn shift(
        &mut self,
        shifts: &[ShiftOp],
        summary: Option<&ExchangeSummary>,
    ) -> Result<f64, DeviceError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DeviceError::new("core 3 out of memory");
        assert_eq!(e.to_string(), "device error: core 3 out of memory");
        assert_eq!(e.message(), "core 3 out of memory");
    }
}
