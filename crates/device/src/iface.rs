//! The abstracted device interface of paper §4.4.
//!
//! T10 is "designed to be extensible for general distributed on-chip
//! memory-based accelerators" through three primitives: `allocate` (a
//! compile-time memory interface), `compute` (a per-core code-generation
//! interface), and `shift` (a runtime communication primitive). Compilers in
//! this workspace target the trait; `t10-sim` provides the implementation.

use crate::program::{BufferDecl, BufferId, ExchangeSummary, ShiftOp, VertexTask};

/// Error type for device operations.
///
/// Structured variants carry the fields callers need to react programmatically
/// (e.g. the compiler's fallback chain keys on [`DeviceError::OutOfMemory`]);
/// everything else is classified by kind with a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation exceeded a core's scratchpad capacity.
    OutOfMemory {
        core: usize,
        needed: usize,
        available: usize,
    },
    /// A lowered program violated a structural invariant (misaligned shift,
    /// shape mismatch, payload/kind confusion).
    MisalignedPlan { detail: String },
    /// A program referenced an unknown or unmaterialized buffer/op.
    InvalidReference { detail: String },
    /// An injected hardware fault made the operation impossible.
    Fault { detail: String },
    /// A fault event fired mid-run at a superstep boundary. `transient`
    /// faults clear on their own (a retry from the last checkpoint
    /// suffices); persistent faults require re-planning for the surviving
    /// machine. Recovery controllers key on this variant.
    RuntimeFault {
        /// Global superstep the fault surfaced at.
        step: usize,
        /// True when the fault clears after firing once.
        transient: bool,
        detail: String,
    },
    /// Uncategorized device-level failure.
    Other { detail: String },
}

impl DeviceError {
    /// Creates an uncategorized error (legacy constructor kept for the
    /// `sim_err!` macro and ad-hoc call sites).
    pub fn new(message: impl Into<String>) -> Self {
        Self::Other {
            detail: message.into(),
        }
    }

    /// Creates an out-of-memory error for `core`.
    pub fn out_of_memory(core: usize, needed: usize, available: usize) -> Self {
        Self::OutOfMemory {
            core,
            needed,
            available,
        }
    }

    /// Creates a structural-invariant violation.
    pub fn misaligned(detail: impl Into<String>) -> Self {
        Self::MisalignedPlan {
            detail: detail.into(),
        }
    }

    /// Creates a dangling-reference error.
    pub fn invalid_reference(detail: impl Into<String>) -> Self {
        Self::InvalidReference {
            detail: detail.into(),
        }
    }

    /// Creates an injected-fault error.
    pub fn fault(detail: impl Into<String>) -> Self {
        Self::Fault {
            detail: detail.into(),
        }
    }

    /// Creates a mid-run fault-event error.
    pub fn runtime_fault(step: usize, transient: bool, detail: impl Into<String>) -> Self {
        Self::RuntimeFault {
            step,
            transient,
            detail: detail.into(),
        }
    }

    /// The human-readable message (without the "device error:" prefix).
    pub fn message(&self) -> String {
        match self {
            Self::OutOfMemory {
                core,
                needed,
                available,
            } => format!("core {core} out of memory: need {needed} B, {available} B available"),
            Self::RuntimeFault {
                step,
                transient,
                detail,
            } => {
                let class = if *transient {
                    "transient"
                } else {
                    "persistent"
                };
                format!("{class} fault at superstep {step}: {detail}")
            }
            Self::MisalignedPlan { detail }
            | Self::InvalidReference { detail }
            | Self::Fault { detail }
            | Self::Other { detail } => detail.clone(),
        }
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device error: {}", self.message())
    }
}

impl std::error::Error for DeviceError {}

/// The three-primitive device abstraction (paper §4.4).
pub trait DeviceInterface {
    /// Allocates a buffer in a core's scratchpad (compile-time interface).
    ///
    /// Fails if the core's memory capacity would be exceeded.
    fn allocate(&mut self, decl: BufferDecl) -> Result<BufferId, DeviceError>;

    /// Frees a buffer (tensor liveness reuse, §4.4).
    fn free(&mut self, id: BufferId) -> Result<(), DeviceError>;

    /// Runs one homogeneous compute set; returns the phase time in seconds.
    fn compute(&mut self, tasks: &[VertexTask]) -> Result<f64, DeviceError>;

    /// Runs one exchange phase; returns the phase time in seconds.
    ///
    /// `summary` lets timing-only callers price an exchange without
    /// materializing the individual shifts.
    fn shift(
        &mut self,
        shifts: &[ShiftOp],
        summary: Option<&ExchangeSummary>,
    ) -> Result<f64, DeviceError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DeviceError::new("link 3 went dark");
        assert_eq!(e.to_string(), "device error: link 3 went dark");
        assert_eq!(e.message(), "link 3 went dark");
    }

    #[test]
    fn out_of_memory_is_structured() {
        let e = DeviceError::out_of_memory(3, 1024, 512);
        match &e {
            DeviceError::OutOfMemory {
                core,
                needed,
                available,
            } => {
                assert_eq!((*core, *needed, *available), (3, 1024, 512));
            }
            other => panic!("unexpected variant {other:?}"),
        }
        assert!(e.message().contains("out of memory"));
        assert!(e.message().contains("core 3"));
    }
}
