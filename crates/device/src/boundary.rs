//! Inter-operator boundary contracts.
//!
//! At every operator boundary the compiler inserts an all-to-all layout
//! transition (paper §5): the producer's stationary output partitions are
//! scattered into the partitioning the consumer's plan expects. That
//! handoff used to be an implicit convention between `lower` and the
//! assembly loop; a [`BoundaryContract`] states it as typed, checkable
//! data. The graph-level verifier (`t10-verify::graph`) proves every
//! contract against the program and the graph's dataflow edges.
//!
//! Contracts live in `t10-device` (next to [`crate::program::Program`])
//! so the compiler can construct them and the verifier can consume them
//! without either crate depending on the other.

use serde::{Deserialize, Serialize};

/// Coarse fusion-relevant classification of an operator.
///
/// The graph verifier's FUSE lints look for chains of [`ComputeIntensive`]
/// anchors joined through [`Elementwise`] interiors; [`MemoryBound`] ops
/// (gathers, data-dependent access) break chains because their operands
/// cannot ride a rotation ring.
///
/// [`ComputeIntensive`]: OpClass::ComputeIntensive
/// [`Elementwise`]: OpClass::Elementwise
/// [`MemoryBound`]: OpClass::MemoryBound
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// Matmul/conv family: high arithmetic intensity, worth fusing around.
    ComputeIntensive,
    /// Cheap elementwise/reduction glue that can sit between anchors.
    Elementwise,
    /// Gather-style data-dependent access; never part of a fused chain.
    MemoryBound,
}

/// One dataflow edge of the operator graph, as the graph-level verifier
/// needs it: which node produced the value, which node consumes it, and
/// how many logical bytes the tensor holds. Derived once from the IR
/// graph and carried alongside the contracts so recovery re-certification
/// does not need the graph itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Producer node index.
    pub producer: usize,
    /// Consumer node index.
    pub consumer: usize,
    /// The value (tensor) id flowing across the edge.
    pub value: usize,
    /// Which of the consumer's input slots receives the value. Part of the
    /// edge identity: one node may consume the same value in two slots
    /// (e.g. squaring via `mul(x, x)`), and each slot is its own handoff.
    pub consumer_slot: usize,
    /// Logical tensor size in bytes.
    pub tensor_bytes: u64,
}

/// The typed handoff agreement for one producer→consumer boundary.
///
/// Everything the graph verifier proves (layout-handoff compatibility,
/// byte conservation, transition-window residency) is stated here in
/// plain numbers derived from the two plans and the lowered transition,
/// so the check needs no access to the plans themselves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryContract {
    /// Producer node index.
    pub producer: usize,
    /// Consumer node index.
    pub consumer: usize,
    /// The value (tensor) id handed off.
    pub value: usize,
    /// Logical tensor size in bytes.
    pub tensor_bytes: u64,
    /// Element size on the producer side.
    pub producer_dtype_bytes: usize,
    /// Element size the consumer's slot expects.
    pub consumer_dtype_bytes: usize,
    /// Cores holding producer output partitions.
    pub producer_cores: usize,
    /// Producer output partition size per core, bytes (padding included).
    pub producer_partition_bytes: usize,
    /// Rotation rings on the producer side (0 = fully stationary plan).
    pub producer_rings: usize,
    /// Producer rotating pace `rp` (0 when nothing rotates).
    pub producer_pace: usize,
    /// Cores the consumer's plan spreads this input over.
    pub consumer_cores: usize,
    /// Which of the consumer's input slots receives the value.
    pub consumer_slot: usize,
    /// Consumer input partition size per core, bytes (padding included).
    pub consumer_partition_bytes: usize,
    /// Rotation rings of the consumer slot (0 = stationary operand).
    pub consumer_rings: usize,
    /// Consumer slot rotating pace `rp` (0 when stationary).
    pub consumer_pace: usize,
    /// Ring traffic quantum of the consumer slot, bytes per shift.
    pub consumer_per_shift_bytes: usize,
    /// Consumer setup bytes per core (weights prefetched at the boundary).
    pub consumer_setup_bytes: usize,
    /// Index of the superstep whose exchange carries this transition.
    pub transition_step: usize,
    /// True when the transition rode the producer's final execute step
    /// instead of a dedicated `Phase::Transition` superstep.
    pub piggybacked: bool,
    /// Bytes the lowered transition claims to move, in aggregate.
    pub transition_bytes: u64,
    /// Whether both placements are affine-dense (no windowed/compound or
    /// data-dependent dims). Only then is per-byte coverage arithmetic
    /// exact, so the tensor-size conservation rules apply; windowed
    /// placements (conv halos) are proved at placement granularity.
    pub dense_layout: bool,
    /// Fusion class of the producer operator.
    pub producer_class: OpClass,
    /// Fusion class of the consumer operator.
    pub consumer_class: OpClass,
}

impl BoundaryContract {
    /// The edge this contract covers.
    #[must_use]
    pub fn edge(&self) -> (usize, usize) {
        (self.producer, self.consumer)
    }

    /// Aggregate bytes the producer side presents for the handoff.
    #[must_use]
    pub fn producer_coverage_bytes(&self) -> u64 {
        self.producer_partition_bytes as u64 * self.producer_cores as u64
    }

    /// Aggregate bytes the consumer side expects to receive.
    #[must_use]
    pub fn consumer_coverage_bytes(&self) -> u64 {
        self.consumer_partition_bytes as u64 * self.consumer_cores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_aggregates_per_core_partitions() {
        let c = BoundaryContract {
            producer: 0,
            consumer: 1,
            value: 7,
            tensor_bytes: 4096,
            producer_dtype_bytes: 2,
            consumer_dtype_bytes: 2,
            producer_cores: 4,
            producer_partition_bytes: 1024,
            producer_rings: 0,
            producer_pace: 0,
            consumer_cores: 8,
            consumer_slot: 0,
            consumer_partition_bytes: 512,
            consumer_rings: 8,
            consumer_pace: 1,
            consumer_per_shift_bytes: 512,
            consumer_setup_bytes: 0,
            transition_step: 3,
            piggybacked: true,
            transition_bytes: 4096,
            dense_layout: true,
            producer_class: OpClass::ComputeIntensive,
            consumer_class: OpClass::ComputeIntensive,
        };
        assert_eq!(c.producer_coverage_bytes(), 4096);
        assert_eq!(c.consumer_coverage_bytes(), 4096);
        assert_eq!(c.edge(), (0, 1));
    }

    #[test]
    fn edge_is_copy_and_comparable() {
        let e = GraphEdge {
            producer: 2,
            consumer: 3,
            value: 9,
            consumer_slot: 1,
            tensor_bytes: 128,
        };
        let e2 = e;
        assert_eq!(e, e2);
    }
}
