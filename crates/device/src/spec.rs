//! Chip specifications.
//!
//! Numbers for the Graphcore IPU MK2 come from the paper (Table 3, §2.1):
//! 1,472 cores, 624 KB scratchpad per core, 5.5 GB/s per-core inter-core
//! bandwidth (≈ 8 TB/s all-to-all aggregate), 250 TFLOPS FP16, 8 GB/s
//! off-chip bandwidth, and an 8 KB default shift buffer (§5). V-IPU boards
//! (§6.5) expose 2 or 4 chips as one device with 160 GB/s inter-chip
//! IPU-Link bandwidth.

use serde::{Deserialize, Serialize};

/// Datasheet-level description of an inter-core connected chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Human-readable device name.
    pub name: String,
    /// Total cores exposed to the compiler.
    pub num_cores: usize,
    /// Cores per physical chip (== `num_cores` for a single chip).
    pub cores_per_chip: usize,
    /// Local scratchpad bytes per core.
    pub sram_per_core: usize,
    /// Per-core inter-core link bandwidth, bytes/second.
    pub link_bw: f64,
    /// Aggregate inter-chip bandwidth per chip boundary, bytes/second
    /// (relevant only when `num_cores > cores_per_chip`).
    pub interchip_bw: f64,
    /// BSP superstep synchronization latency, seconds.
    pub sync_latency: f64,
    /// Peak FP16 FLOPS of one core (AMP engaged).
    pub flops_per_core: f64,
    /// Local scratchpad bandwidth of one core, bytes/second.
    pub local_mem_bw: f64,
    /// Fixed per-vertex launch overhead, seconds.
    pub vertex_overhead: f64,
    /// Off-chip (host/DRAM or emulated HBM) bandwidth, bytes/second.
    pub offchip_bw: f64,
    /// AMP output-tile quantum: output elements are processed in blocks of
    /// this size.
    pub amp_out: usize,
    /// AMP reduction quantum: reduction length is processed in blocks of
    /// this size.
    pub amp_red: usize,
    /// Per-core temporary buffer reserved for the pseudo-shift mechanism
    /// (paper §5; 8 KB by default).
    pub shift_buffer: usize,
    /// Per-message exchange overhead, seconds: each distinct peer transfer
    /// a core performs in one exchange phase pays this setup cost.
    pub exchange_msg_overhead: f64,
}

impl ChipSpec {
    /// The Graphcore IPU MK2 used throughout the paper's evaluation.
    pub fn ipu_mk2() -> Self {
        Self {
            name: "IPU-MK2".to_string(),
            num_cores: 1472,
            cores_per_chip: 1472,
            sram_per_core: 624 * 1024,
            link_bw: 5.5e9,
            interchip_bw: 160e9,
            // On-chip BSP synchronization is sub-microsecond on the IPU.
            sync_latency: 0.5e-6,
            // 250 TFLOPS FP16 spread over 1,472 cores.
            flops_per_core: 250e12 / 1472.0,
            local_mem_bw: 32e9,
            vertex_overhead: 3.0e-7,
            offchip_bw: 8e9,
            amp_out: 64,
            amp_red: 16,
            shift_buffer: 8 * 1024,
            exchange_msg_overhead: 0.15e-6,
        }
    }

    /// An MK2 restricted to `cores` cores (paper §6.5 emulates smaller chips
    /// "by restricting the number of cores in our compiler").
    pub fn ipu_with_cores(cores: usize) -> Self {
        let mut s = Self::ipu_mk2();
        s.name = format!("IPU-{cores}c");
        s.num_cores = cores;
        s.cores_per_chip = cores.min(1472);
        s
    }

    /// A V-IPU board exposing `chips` MK2 chips as one device (§6.5).
    ///
    /// Inter-core links that cross a chip boundary share the 160 GB/s
    /// IPU-Link, which is what caps effective bandwidth at scale.
    pub fn vipu(chips: usize) -> Self {
        let mut s = Self::ipu_mk2();
        s.name = format!("V-IPU-{chips}x");
        s.num_cores = 1472 * chips;
        s.cores_per_chip = 1472;
        s
    }

    /// The same chip with a different off-chip bandwidth (the §6.8 emulated
    /// HBM experiments sweep this).
    pub fn with_offchip_bw(mut self, bw: f64) -> Self {
        self.offchip_bw = bw;
        self
    }

    /// Number of physical chips in the device.
    pub fn num_chips(&self) -> usize {
        self.num_cores.div_ceil(self.cores_per_chip)
    }

    /// Chip index that owns a core.
    pub fn chip_of(&self, core: usize) -> usize {
        core / self.cores_per_chip
    }

    /// Total on-chip memory across all cores.
    pub fn total_sram(&self) -> usize {
        self.num_cores * self.sram_per_core
    }

    /// Aggregate all-to-all inter-core bandwidth (the 8 TB/s headline).
    pub fn aggregate_bw(&self) -> f64 {
        self.num_cores as f64 * self.link_bw
    }

    /// Peak chip FLOPS.
    pub fn peak_flops(&self) -> f64 {
        self.num_cores as f64 * self.flops_per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk2_matches_paper_table3() {
        let s = ChipSpec::ipu_mk2();
        assert_eq!(s.num_cores, 1472);
        assert_eq!(s.sram_per_core, 624 * 1024);
        // 896 MB total on-chip memory (Table 3 / §2.1).
        let mb = s.total_sram() as f64 / (1024.0 * 1024.0);
        assert!((mb - 897.0).abs() < 2.0, "total sram = {mb} MB");
        // ≈ 8 TB/s aggregate inter-core bandwidth (§2.1).
        assert!((s.aggregate_bw() - 8.096e12).abs() < 1e10);
        // ≈ 250 TFLOPS peak.
        assert!((s.peak_flops() - 250e12).abs() < 1e9);
    }

    #[test]
    fn vipu_scales_cores_not_chip_size() {
        let s = ChipSpec::vipu(4);
        assert_eq!(s.num_cores, 5888);
        assert_eq!(s.cores_per_chip, 1472);
        assert_eq!(s.num_chips(), 4);
        assert_eq!(s.chip_of(0), 0);
        assert_eq!(s.chip_of(1472), 1);
        assert_eq!(s.chip_of(5887), 3);
    }

    #[test]
    fn restricted_core_count() {
        let s = ChipSpec::ipu_with_cores(368);
        assert_eq!(s.num_cores, 368);
        assert_eq!(s.num_chips(), 1);
    }

    #[test]
    fn offchip_override() {
        let s = ChipSpec::ipu_mk2().with_offchip_bw(450e9);
        assert_eq!(s.offchip_bw, 450e9);
    }
}
