//! Abstract device programs: what a compiler emits and a simulator runs.
//!
//! T10 lowers an execution plan to interleaved *compute* and *shift* stages
//! (paper §4.4, Figure 11): each superstep runs one homogeneous `ComputeSet`
//! (one vertex per core) and then a set of inter-core shifts. This module is
//! the machine-independent representation of such programs.
//!
//! Programs carry two levels of detail:
//!
//! * **summaries** ([`ComputeSummary`], [`ExchangeSummary`]) — enough to
//!   price a superstep on the timing model; always present; and
//! * **explicit tasks** ([`VertexTask`] with a functional payload,
//!   [`ShiftOp`]) — enough to actually move f32 data and verify numerics,
//!   emitted by the functional lowering used in tests.

use serde::{Deserialize, Serialize};
use t10_ir::{OpKind, Operator};

/// Identifier of a per-core buffer within a [`Program`].
pub type BufferId = usize;

/// Shape-level description of one sub-task, the input to cost models and the
/// ground-truth timing function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubTaskDesc {
    /// Operator family (cost models are fit per family, §4.3.1).
    pub kind: OpKind,
    /// Output elements produced by the sub-task.
    pub out_elems: u64,
    /// Reduction length folded into each output element (1 if none).
    pub red_elems: u64,
    /// Sliding-window size for conv/pool kernels (`kh*kw`), 1 otherwise.
    pub window: u64,
    /// Bytes of input operands read.
    pub in_bytes: u64,
    /// Bytes of output written.
    pub out_bytes: u64,
}

impl SubTaskDesc {
    /// Multiply-accumulate count of the sub-task.
    pub fn macs(&self) -> u64 {
        self.out_elems * self.red_elems
    }

    /// FLOP count (2 per MAC for contraction kinds, 1 otherwise).
    pub fn flops(&self) -> u64 {
        match self.kind {
            OpKind::MatMul | OpKind::Conv2d => 2 * self.macs(),
            _ => self.macs(),
        }
    }
}

/// Global coordinates covered by a buffer, per dimension, in storage order.
///
/// Rotating partitions keep their coordinate lists in FIFO order: a shift
/// retires coordinates from the front and appends newly received ones at the
/// back, so the list order always mirrors physical storage order.
pub type Coords = Vec<Vec<usize>>;

/// A per-core buffer declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferDecl {
    /// Core that owns the buffer.
    pub core: usize,
    /// Debug label.
    pub label: String,
    /// Bytes occupied in the core's scratchpad.
    pub bytes: usize,
    /// Global coordinates covered, per dimension (functional programs).
    /// Empty for timing-only programs.
    pub coords: Coords,
    /// Initial element value (the reduction identity for output buffers:
    /// 0 for sum, -inf for max).
    pub init: f32,
}

impl BufferDecl {
    /// Elements held (product of per-dimension coordinate counts).
    pub fn elements(&self) -> usize {
        self.coords.iter().map(Vec::len).product()
    }
}

/// Functional payload of a vertex: which axis sub-ranges to iterate and
/// which buffers to touch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncTask {
    /// Index into [`Program::ops`].
    pub op: usize,
    /// Per-axis global iteration coordinates of the sub-task. Explicit
    /// lists rather than ranges because rotating windows wrap around their
    /// ring extent (e.g. a window `{10, 11, 0, 1}` mid-rotation).
    pub axis_coords: Vec<Vec<usize>>,
    /// Input buffers, one per operator input slot.
    pub inputs: Vec<BufferId>,
    /// Output buffer (accumulated in place across steps).
    pub output: BufferId,
    /// When true the vertex applies the operator's unary epilogue to its
    /// whole output buffer instead of iterating `axis_coords`. Lowering
    /// emits one epilogue vertex after all accumulation has finished.
    pub apply_unary: bool,
}

/// One vertex (per-core compute task) of a superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexTask {
    /// Core running the vertex.
    pub core: usize,
    /// Shape description used for timing.
    pub desc: SubTaskDesc,
    /// Functional payload; `None` in timing-only programs.
    pub func: Option<FuncTask>,
}

/// How a shift moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftKind {
    /// Rotate `count` coordinate slices along `dim` from the front of the
    /// source into the back of the destination (the compute-shift rotation,
    /// rotating pace `rp = count`).
    RotateSlices {
        /// Buffer dimension being rotated.
        dim: usize,
        /// Number of coordinate slices moved (the rotating pace).
        count: usize,
    },
    /// Replace the destination's entire contents and coordinates (layout
    /// setup and inter-operator transitions).
    Copy,
    /// Merge the source into a destination covering the same coordinates,
    /// element-wise, using the given reduction (cross-core reduction of
    /// partial outputs when a reduction axis is spatially partitioned).
    Accumulate {
        /// Reduction used to merge elements.
        reduce: t10_ir::Reduce,
    },
}

/// One inter-core data movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftOp {
    /// Source buffer.
    pub src: BufferId,
    /// Destination buffer (on the receiving core).
    pub dst: BufferId,
    /// Movement semantics.
    pub kind: ShiftKind,
}

/// Timing summary of a homogeneous compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeSummary {
    /// Representative per-core sub-task.
    pub desc: SubTaskDesc,
    /// Number of cores running the vertex this step.
    pub active_cores: usize,
}

/// Timing summary of an exchange phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExchangeSummary {
    /// Total bytes moved between cores.
    pub total_bytes: u64,
    /// Largest egress at any single core (serialization bound).
    pub max_core_out: u64,
    /// Largest ingress at any single core (serialization bound).
    pub max_core_in: u64,
    /// Bytes crossing a chip boundary (V-IPU IPU-Link traffic).
    pub cross_chip_bytes: u64,
    /// Bytes streamed from off-chip memory this step (HBM prefetch).
    pub offchip_bytes: u64,
    /// Number of cores participating in the exchange.
    pub active_cores: usize,
    /// Distinct peer transfers the busiest core performs this phase. Bulk
    /// neighbour shifts need one message; VGM tile gathers contact every
    /// shard owner separately ("a core must fetch each piece from a
    /// different core", paper §2.2).
    #[serde(default)]
    pub max_core_messages: u64,
}

/// Which schedule phase a superstep belongs to, for latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Steady-state compute-shift execution of an operator.
    Execute,
    /// Idle-to-active plan setup (paper §4.3.2, Figure 9).
    Setup,
    /// Inter-operator layout transition (all-to-all, §5).
    Transition,
    /// Off-chip prefetch of operator data (§6.8).
    Prefetch,
}

/// One BSP superstep: a compute phase followed by an exchange phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Superstep {
    /// Explicit per-core vertices (functional programs; may be empty).
    pub compute: Vec<VertexTask>,
    /// Homogeneous compute summary (timing programs; preferred if present).
    pub compute_summary: Option<ComputeSummary>,
    /// Explicit shifts (functional programs; may be empty).
    pub exchange: Vec<ShiftOp>,
    /// Exchange summary (timing programs; preferred if present).
    pub exchange_summary: Option<ExchangeSummary>,
    /// Graph node this step belongs to, if any.
    pub node: Option<usize>,
    /// Schedule phase for attribution.
    pub phase: Phase,
}

impl Superstep {
    /// An empty superstep attached to a node and phase.
    pub fn new(node: Option<usize>, phase: Phase) -> Self {
        Self {
            compute: Vec::new(),
            compute_summary: None,
            exchange: Vec::new(),
            exchange_summary: None,
            node,
            phase,
        }
    }
}

/// A complete device program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Operator table referenced by functional tasks.
    pub ops: Vec<Operator>,
    /// Buffer declarations.
    pub buffers: Vec<BufferDecl>,
    /// Supersteps in execution order.
    pub steps: Vec<Superstep>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operator, returning its table index.
    pub fn add_op(&mut self, op: Operator) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Declares a buffer, returning its id.
    pub fn add_buffer(&mut self, decl: BufferDecl) -> BufferId {
        self.buffers.push(decl);
        self.buffers.len() - 1
    }

    /// Peak scratchpad bytes used on any single core, from declarations.
    /// Buffers declared on out-of-range cores (a malformed program the
    /// verifier reports as CAP01) still count toward the peak rather than
    /// panicking here.
    pub fn peak_core_bytes(&self, num_cores: usize) -> usize {
        let mut per_core = vec![0usize; num_cores];
        let mut stray = 0usize;
        for b in &self.buffers {
            match per_core.get_mut(b.core) {
                Some(slot) => *slot += b.bytes,
                None => stray += b.bytes,
            }
        }
        per_core.into_iter().max().unwrap_or(0).max(stray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtask_flops() {
        let d = SubTaskDesc {
            kind: OpKind::MatMul,
            out_elems: 8,
            red_elems: 4,
            window: 1,
            in_bytes: 0,
            out_bytes: 0,
        };
        assert_eq!(d.macs(), 32);
        assert_eq!(d.flops(), 64);
        let e = SubTaskDesc {
            kind: OpKind::Elementwise,
            ..d
        };
        assert_eq!(e.flops(), 32);
    }

    #[test]
    fn buffer_elements() {
        let b = BufferDecl {
            core: 0,
            label: "a".into(),
            bytes: 24,
            coords: vec![vec![0, 1, 2], vec![4, 5]],
            init: 0.0,
        };
        assert_eq!(b.elements(), 6);
    }

    #[test]
    fn peak_core_bytes_sums_per_core() {
        let mut p = Program::new();
        p.add_buffer(BufferDecl {
            core: 0,
            label: "x".into(),
            bytes: 100,
            coords: vec![],
            init: 0.0,
        });
        p.add_buffer(BufferDecl {
            core: 0,
            label: "y".into(),
            bytes: 50,
            coords: vec![],
            init: 0.0,
        });
        p.add_buffer(BufferDecl {
            core: 1,
            label: "z".into(),
            bytes: 120,
            coords: vec![],
            init: 0.0,
        });
        assert_eq!(p.peak_core_bytes(2), 150);
    }
}
