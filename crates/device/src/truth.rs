//! Ground-truth vertex timing: the stand-in for profiling a physical core.
//!
//! The paper builds its cost model by running randomly-shaped sub-tasks on a
//! single IPU core and fitting a linear regression (§4.3.1). Without the
//! chip, we substitute a deterministic hardware model with the properties
//! that matter for reproducing Figure 8:
//!
//! * near-linear behaviour in the sub-task shape for MatMul and
//!   element-wise/reduce vertices (the linear fit is near-perfect), and
//! * a mildly nonlinear "black-box vendor kernel" term for convolution (the
//!   linear fit shows visible scatter, as in the paper).
//!
//! The nonlinearities are physical: AMP tiles quantize work to hardware
//! blocks, and the conv vertex pays a data-rearrangement cost that depends
//! non-linearly on the window geometry.

use t10_ir::OpKind;

use crate::program::SubTaskDesc;
use crate::spec::ChipSpec;

/// Rounds `x` up to a multiple of `q`.
fn ceil_mul(x: u64, q: u64) -> u64 {
    x.div_ceil(q) * q
}

/// Ground-truth execution time of one vertex on one core, in seconds.
///
/// This is what the simulator charges for a compute phase, and what the
/// calibration pass in `t10-core` "profiles" to fit the compiler's linear
/// cost model.
pub fn vertex_time(spec: &ChipSpec, d: &SubTaskDesc) -> f64 {
    let mem = (d.in_bytes + d.out_bytes) as f64 / spec.local_mem_bw;
    match d.kind {
        OpKind::MatMul => {
            // AMP quantization: output elements in blocks of `amp_out`,
            // reduction length in blocks of `amp_red`.
            let eff = ceil_mul(d.out_elems, spec.amp_out as u64)
                * ceil_mul(d.red_elems, spec.amp_red as u64);
            let flops = 2.0 * eff as f64;
            spec.vertex_overhead + flops / spec.flops_per_core + 0.3 * mem
        }
        OpKind::Conv2d => {
            let eff = ceil_mul(d.out_elems, spec.amp_out as u64)
                * ceil_mul(d.red_elems, spec.amp_red as u64);
            let flops = 2.0 * eff as f64;
            let base = spec.vertex_overhead + flops / spec.flops_per_core + 0.3 * mem;
            // Black-box vendor-kernel behaviour: an implicit-im2col style
            // rearrangement whose efficiency depends non-linearly on the
            // window geometry and tile shape. Deterministic, but not
            // expressible as a linear function of the features the cost
            // model sees.
            let jitter = 0.12
                * (0.13 * d.out_elems as f64 + 0.71 * d.window as f64 + 0.041 * d.red_elems as f64)
                    .sin();
            let rearrange = (d.window as f64).sqrt() * d.out_elems as f64 * 4.0 / spec.local_mem_bw;
            base * (1.15 + jitter) + rearrange
        }
        OpKind::Elementwise => {
            // One ALU op per element; bandwidth-dominated.
            let flops = d.macs() as f64;
            spec.vertex_overhead + flops / (spec.flops_per_core * 0.05) + mem
        }
        OpKind::Reduce | OpKind::Pool => {
            let flops = d.macs() as f64;
            spec.vertex_overhead + flops / (spec.flops_per_core * 0.08) + mem
        }
        OpKind::Gather => {
            // Address generation plus copy: two passes over the output.
            spec.vertex_overhead + 2.0 * d.out_bytes as f64 / spec.local_mem_bw + mem
        }
    }
}

/// Ground-truth time of one exchange phase, in seconds.
///
/// Every core sends and receives concurrently; a core's link serializes its
/// own ingress and its own egress separately at `link_bw` (§2.1: cores
/// contending for one core's 5.5 GB/s link stall the execution — captured by
/// the `max_core_in`/`max_core_out` terms). Cross-chip traffic additionally
/// shares the IPU-Link.
pub fn exchange_time(spec: &ChipSpec, summary: &crate::program::ExchangeSummary) -> f64 {
    if summary.total_bytes == 0 && summary.offchip_bytes == 0 {
        return 0.0;
    }
    // On multi-chip V-IPU devices even intra-ring traffic pays a routing
    // penalty: the paper measures the average effective inter-core bandwidth
    // dropping by 26%-33% when crossing to 2/4 chips (§6.5).
    let chips = spec.num_chips() as f64;
    let chip_penalty = 1.0 - 0.35 * (1.0 - 1.0 / chips);
    let intra =
        summary.max_core_in.max(summary.max_core_out) as f64 / (spec.link_bw * chip_penalty);
    let cross = if summary.cross_chip_bytes > 0 {
        summary.cross_chip_bytes as f64 / spec.interchip_bw
    } else {
        0.0
    };
    let offchip = summary.offchip_bytes as f64 / spec.offchip_bw;
    let messages = summary.max_core_messages.saturating_sub(1) as f64 * spec.exchange_msg_overhead;
    intra.max(cross).max(offchip) + messages + spec.sync_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ExchangeSummary;

    fn desc(kind: OpKind, out: u64, red: u64) -> SubTaskDesc {
        SubTaskDesc {
            kind,
            out_elems: out,
            red_elems: red,
            window: 9,
            in_bytes: 2 * (out + red),
            out_bytes: 2 * out,
        }
    }

    #[test]
    fn matmul_time_scales_with_work() {
        let s = ChipSpec::ipu_mk2();
        let t1 = vertex_time(&s, &desc(OpKind::MatMul, 1024, 256));
        let t2 = vertex_time(&s, &desc(OpKind::MatMul, 4096, 256));
        assert!(t2 > t1 * 2.0, "t1={t1}, t2={t2}");
        assert!(t2 < t1 * 8.0);
    }

    #[test]
    fn quantization_is_a_stair_step() {
        let s = ChipSpec::ipu_mk2();
        // Within one AMP block the time is flat.
        let a = vertex_time(&s, &desc(OpKind::MatMul, 65, 17));
        let b = vertex_time(&s, &desc(OpKind::MatMul, 128, 32));
        assert!((a - b).abs() / b < 0.2, "a={a}, b={b}");
    }

    #[test]
    fn conv_deviates_from_linear_model() {
        let s = ChipSpec::ipu_mk2();
        // Two conv sub-tasks with identical linear features (same flops,
        // bytes) but different window geometry take different times.
        let mut d1 = desc(OpKind::Conv2d, 4096, 144);
        let mut d2 = d1;
        d1.window = 9;
        d2.window = 16;
        let t1 = vertex_time(&s, &d1);
        let t2 = vertex_time(&s, &d2);
        assert!((t1 - t2).abs() / t1 > 0.005, "t1={t1}, t2={t2}");
    }

    #[test]
    fn vertex_time_is_positive_and_deterministic() {
        let s = ChipSpec::ipu_mk2();
        for kind in [
            OpKind::MatMul,
            OpKind::Conv2d,
            OpKind::Elementwise,
            OpKind::Reduce,
            OpKind::Pool,
            OpKind::Gather,
        ] {
            let d = desc(kind, 777, 33);
            let t = vertex_time(&s, &d);
            assert!(t > 0.0);
            assert_eq!(t, vertex_time(&s, &d));
        }
    }

    #[test]
    fn exchange_zero_bytes_is_free() {
        let s = ChipSpec::ipu_mk2();
        assert_eq!(exchange_time(&s, &ExchangeSummary::default()), 0.0);
    }

    #[test]
    fn exchange_bounded_by_busiest_core() {
        let s = ChipSpec::ipu_mk2();
        let e = ExchangeSummary {
            total_bytes: 1_000_000,
            max_core_out: 5_500,
            max_core_in: 11_000,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: 100,
            max_core_messages: 1,
        };
        let t = exchange_time(&s, &e);
        // 11 KB at 5.5 GB/s = 2 us, plus 0.5 us sync.
        assert!((t - 2.5e-6).abs() < 1e-7, "t={t}");
    }

    #[test]
    fn cross_chip_traffic_can_dominate() {
        let s = ChipSpec::vipu(2);
        let e = ExchangeSummary {
            total_bytes: 320_000_000,
            max_core_out: 10_000,
            max_core_in: 10_000,
            cross_chip_bytes: 160_000_000,
            offchip_bytes: 0,
            active_cores: 2944,
            max_core_messages: 1,
        };
        let t = exchange_time(&s, &e);
        // 160 MB over 160 GB/s = 1 ms, far above the 1.8 us intra bound.
        assert!(t > 0.9e-3, "t={t}");
    }

    #[test]
    fn offchip_prefetch_uses_offchip_bw() {
        let s = ChipSpec::ipu_mk2().with_offchip_bw(100e9);
        let e = ExchangeSummary {
            offchip_bytes: 100_000_000,
            ..Default::default()
        };
        let t = exchange_time(&s, &e);
        assert!((t - 1.0e-3 - s.sync_latency).abs() < 1e-6, "t={t}");
    }
}
