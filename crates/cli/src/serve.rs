//! `t10 serve` — the resilient, long-lived compile service — and
//! `t10 compilebench`, the cold/warm compile-latency benchmark.
//!
//! The service accepts a batch of compile requests (one per line, from
//! `--requests FILE` or stdin), pushes them through **bounded-queue
//! admission control**, and drains the accepted queue with a pool of
//! worker threads, each compile fanning its per-operator Pareto searches
//! out across `--jobs` threads. Every response is a single JSON line
//! keyed by request id, emitted in request order:
//!
//! * admitted + compiled → `"status":"ok"` with latency estimate,
//!   cache-hit counters, and the degradation flag;
//! * the queue was full → `"status":"rejected"` with a typed reason and a
//!   capped, deterministically-jittered `retry_after_ms` backoff hint;
//! * the compile failed → `"status":"error"` with the same typed exit
//!   code the `t10 compile` command would have returned.
//!
//! Failure isolation is the point: a request that panics a search worker,
//! misses its deadline, or doesn't fit on the chip fails *that request*;
//! the service and every other request carry on. Under pressure (queue ≥
//! 3/4 full at admission — the cache-miss-storm case) new requests are
//! admitted in **degraded mode**: they compile with the fast search
//! preset, trading plan quality for latency. Degraded compiles use a
//! different cache key (the key digests the search config), so they can
//! never poison the full-quality plan cache.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use t10_bench::harness::bench_search_config;
use t10_core::cache::fnv64;
use t10_core::search::SearchConfig;
use t10_core::{CompileOptions, Compiler, PlanCache};
use t10_device::ChipSpec;
use t10_metrics::{names, Registry};
use t10_sim::FaultPlan;
use t10_store::DiskPlanCache;
use t10_trace::Trace;

use crate::{compile_exit_code, resolve_model, CliError};

/// How often the background flusher rewrites `--metrics-flush` while the
/// batch is running (a final snapshot always lands at completion).
const METRICS_FLUSH_PERIOD: Duration = Duration::from_millis(500);

/// Ceiling for the backoff hint's exponential component, in milliseconds.
const RETRY_CAP_MS: u64 = 3_200;
/// First-rejection backoff hint, in milliseconds.
const RETRY_BASE_MS: u64 = 50;

/// `t10 serve` options (parsed from the command line).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Request file (`-` / absent = stdin).
    pub requests: Option<String>,
    /// Plan-cache directory, if persistent caching is wanted.
    pub cache: Option<String>,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Per-compile operator-search parallelism (`CompileOptions::op_parallelism`).
    pub jobs: usize,
    /// Admission-queue capacity; requests beyond it are rejected.
    pub queue: usize,
    /// Default chip size for requests that don't pass `--cores`.
    pub cores: usize,
    /// Default per-request compile deadline.
    pub deadline_ms: Option<u64>,
    /// Metrics exposition address (`host:port`); `None` = no endpoint.
    /// Serves Prometheus text at `/metrics` and the `t10.metrics.v1` JSON
    /// snapshot at `/metrics.json`, live while the batch runs.
    pub metrics_addr: Option<String>,
    /// Snapshot file path: rewritten every [`METRICS_FLUSH_PERIOD`] while
    /// running and once more at completion.
    pub metrics_flush: Option<String>,
    /// Run the registry on the deterministic logical clock. The service
    /// then processes the batch **single-threaded** in a fixed
    /// admit-all-then-drain order, so every duration is a tick delta and
    /// same-input runs produce byte-identical snapshots (admission
    /// rejections and degraded mode still exercise: the whole batch is
    /// admitted before any request compiles).
    pub metrics_logical: bool,
    /// Keep the `--metrics-addr` endpoint alive this many milliseconds
    /// after the responses are written, so a scraper can collect the
    /// final state of a short batch.
    pub metrics_linger_ms: u64,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request id (line number, 0-based over non-comment lines).
    pub id: usize,
    /// Zoo model name or `.t10` path.
    pub target: String,
    /// Batch size.
    pub batch: usize,
    /// Chip size override.
    pub cores: Option<usize>,
    /// Fault spec, compiled against the degraded chip.
    pub faults: Option<String>,
    /// Per-request deadline override.
    pub deadline_ms: Option<u64>,
}

/// One response line; rendered as a single JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request compiled.
    Ok {
        /// Request id.
        id: usize,
        /// Resolved model name.
        model: String,
        /// Operator count after any transforms.
        operators: usize,
        /// Compiler-estimated execution latency, microseconds.
        estimated_us: f64,
        /// Wall-clock compile time, milliseconds.
        compile_ms: f64,
        /// Plan-cache disk hits during this compile.
        disk_hits: usize,
        /// Frontiers recorded to the cache during this compile.
        recorded: usize,
        /// Whether the request was admitted in degraded (fast-search) mode.
        degraded: bool,
        /// Time spent waiting in the admission queue, milliseconds
        /// (registry-clock: wall by default, tick deltas under
        /// `--metrics-clock logical`).
        queue_wait_ms: f64,
    },
    /// Admission control turned the request away: the queue was full.
    Rejected {
        /// Request id.
        id: usize,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The request was admitted but its compile failed.
    Error {
        /// Request id.
        id: usize,
        /// The exit code `t10 compile` would have returned for this error.
        code: i32,
        /// Human-readable failure description.
        message: String,
        /// Queue wait before the failing compile, milliseconds (0 for
        /// requests that never queued, e.g. parse errors).
        queue_wait_ms: f64,
        /// Whether the request had been admitted in degraded mode.
        degraded: bool,
    },
}

impl Response {
    /// The request id this response answers.
    pub fn id(&self) -> usize {
        match self {
            Response::Ok { id, .. }
            | Response::Rejected { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Ok {
                id,
                model,
                operators,
                estimated_us,
                compile_ms,
                disk_hits,
                recorded,
                degraded,
                queue_wait_ms,
            } => {
                out.push_str(&format!("{{\"id\":{id},\"status\":\"ok\",\"model\":\""));
                t10_trace::json::escape_into(&mut out, model);
                out.push_str(&format!(
                    "\",\"operators\":{operators},\"estimated_us\":{estimated_us:.3},\
                     \"compile_ms\":{compile_ms:.3},\"queue_wait_ms\":{queue_wait_ms:.3},\
                     \"cache\":{{\"disk_hits\":{disk_hits},\
                     \"recorded\":{recorded}}},\"degraded\":{degraded}}}"
                ));
            }
            Response::Rejected { id, retry_after_ms } => {
                out.push_str(&format!(
                    "{{\"id\":{id},\"status\":\"rejected\",\"reason\":\"queue-full\",\
                     \"retry_after_ms\":{retry_after_ms}}}"
                ));
            }
            Response::Error {
                id,
                code,
                message,
                queue_wait_ms,
                degraded,
            } => {
                out.push_str(&format!(
                    "{{\"id\":{id},\"status\":\"error\",\"code\":{code},\"message\":\""
                ));
                t10_trace::json::escape_into(&mut out, message);
                out.push_str(&format!(
                    "\",\"queue_wait_ms\":{queue_wait_ms:.3},\"degraded\":{degraded}}}"
                ));
            }
        }
        out
    }
}

/// Parses one request line: `compile <model|file.t10> [--batch N]
/// [--cores N] [--faults SPEC] [--deadline-ms N]`.
pub fn parse_request(line: &str, id: usize) -> Result<Request, String> {
    let mut it = line.split_whitespace();
    match it.next() {
        Some("compile") => {}
        Some(other) => return Err(format!("unknown request verb `{other}` (only `compile`)")),
        None => return Err("empty request".to_string()),
    }
    let target = it.next().ok_or("compile needs a model")?.to_string();
    let mut req = Request {
        id,
        target,
        batch: 1,
        cores: None,
        faults: None,
        deadline_ms: None,
    };
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag {
            "--batch" => req.batch = val()?.parse().map_err(|_| "bad --batch value")?,
            "--cores" => req.cores = Some(val()?.parse().map_err(|_| "bad --cores value")?),
            "--faults" => req.faults = Some(val()?.to_string()),
            "--deadline-ms" => {
                req.deadline_ms = Some(val()?.parse().map_err(|_| "bad --deadline-ms value")?);
            }
            other => return Err(format!("unknown request flag {other}")),
        }
    }
    Ok(req)
}

/// The backoff hint attached to the `consecutive`-th rejection in a row
/// (0-based): capped doubling from [`RETRY_BASE_MS`], plus a deterministic
/// per-request jitter (≤ 25% of the slot) so a rejected fleet does not
/// retry in lockstep.
pub fn retry_after_ms(consecutive: u32, id: u64) -> u64 {
    let slot = RETRY_BASE_MS
        .saturating_mul(1u64 << consecutive.min(6))
        .min(RETRY_CAP_MS);
    let jitter = fnv64(&id.to_le_bytes()) % (slot / 4 + 1);
    slot + jitter
}

/// A compiler pool keyed by (chip size, degraded tier): calibration is paid
/// once per distinct chip, then shared by every request and worker.
struct CompilerPool {
    compilers: Mutex<HashMap<(usize, bool), Arc<Compiler>>>,
}

impl CompilerPool {
    fn new() -> Self {
        Self {
            compilers: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, cores: usize, degraded: bool) -> Result<Arc<Compiler>, CliError> {
        let mut map = self
            .compilers
            .lock()
            .map_err(|_| CliError::internal("compiler pool poisoned"))?;
        if let Some(c) = map.get(&(cores, degraded)) {
            return Ok(c.clone());
        }
        let cfg = if degraded {
            SearchConfig::fast()
        } else {
            bench_search_config()
        };
        let spec = crate::chip(cores);
        let compiler = Arc::new(Compiler::try_new(spec, cfg).map_err(CliError::from)?);
        map.insert((cores, degraded), compiler.clone());
        Ok(compiler)
    }
}

/// One admitted job: the request, its admission-time degradation flag, and
/// its arrival timestamp in registry-clock microseconds (for queue-wait and
/// end-to-end latency histograms).
struct Job {
    req: Request,
    degraded: bool,
    arrival_us: u64,
}

/// The bounded admission queue: jobs + a closed flag under one lock, and a
/// condvar workers sleep on.
struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    /// Tries to admit a job; `Err(len)` when the queue is at capacity.
    /// On success reports whether the service is under pressure (≥ 3/4
    /// full after the push) — the admission-time degradation signal — and
    /// the queue depth after the push (for the depth gauges).
    fn try_push(
        &self,
        req: Request,
        capacity: usize,
        arrival_us: u64,
    ) -> Result<(bool, usize), usize> {
        let Ok(mut st) = self.state.lock() else {
            return Err(capacity);
        };
        if st.0.len() >= capacity {
            return Err(st.0.len());
        }
        let degraded = 4 * (st.0.len() + 1) >= 3 * capacity && capacity > 1;
        st.0.push_back(Job {
            req,
            degraded,
            arrival_us,
        });
        self.ready.notify_one();
        Ok((degraded, st.0.len()))
    }

    fn close(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.1 = true;
        }
        self.ready.notify_all();
    }

    /// Waits for a job; returns it with the queue depth left behind.
    fn pop(&self) -> Option<(Job, usize)> {
        let mut st = self.state.lock().ok()?;
        loop {
            if let Some(job) = st.0.pop_front() {
                let remaining = st.0.len();
                return Some((job, remaining));
            }
            if st.1 {
                return None;
            }
            st = self.ready.wait(st).ok()?;
        }
    }
}

/// Compiles one admitted job into its response. Every failure path becomes
/// a typed [`Response::Error`]; nothing here can take the service down.
fn handle(
    job: &Job,
    o: &ServeOptions,
    pool: &CompilerPool,
    store: Option<&Arc<DiskPlanCache>>,
    metrics: &Registry,
    queue_wait_ms: f64,
) -> Response {
    let id = job.req.id;
    let fail = |e: CliError| Response::Error {
        id,
        code: e.code,
        message: e.message,
        queue_wait_ms,
        degraded: job.degraded,
    };
    let graph = match resolve_model(&job.req.target, job.req.batch) {
        Ok(g) => g,
        Err(e) => return fail(e),
    };
    let cores = job.req.cores.unwrap_or(o.cores);
    let spec: ChipSpec = crate::chip(cores);
    let faults = match &job.req.faults {
        Some(s) => match FaultPlan::parse(s, spec.num_cores) {
            Ok(f) => Some(f),
            Err(e) => return fail(CliError::usage(e)),
        },
        None => None,
    };
    let compiler = match pool.get(cores, job.degraded) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let opts = CompileOptions {
        deadline: job
            .req
            .deadline_ms
            .or(o.deadline_ms)
            .map(Duration::from_millis),
        faults,
        warm_start: None,
        trace: Trace::disabled(),
        prove: false,
        cache: store.map(|s| s.clone() as Arc<dyn PlanCache>),
        op_parallelism: o.jobs,
        metrics: metrics.clone(),
    };
    match compiler.compile_graph_with(&graph, &opts) {
        Ok(compiled) => Response::Ok {
            id,
            model: graph.name().to_string(),
            operators: graph.nodes().len(),
            estimated_us: compiled.estimated_time * 1e6,
            compile_ms: compiled.compile_seconds * 1e3,
            disk_hits: compiled.cache_stats.disk_hits,
            recorded: compiled.cache_stats.recorded,
            degraded: job.degraded,
            queue_wait_ms,
        },
        Err(e) => Response::Error {
            id,
            code: compile_exit_code(&e),
            message: e.to_string(),
            queue_wait_ms,
            degraded: job.degraded,
        },
    }
}

/// Per-session gauge handles plus the registry, shared by admission and
/// the drain path.
struct ServeMetrics {
    registry: Registry,
    depth: t10_metrics::Gauge,
    peak: t10_metrics::Gauge,
    occupancy: t10_metrics::Gauge,
    capacity: usize,
}

impl ServeMetrics {
    fn new(registry: &Registry, capacity: usize) -> Self {
        Self {
            registry: registry.clone(),
            depth: registry.gauge(names::SERVE_QUEUE_DEPTH, &[]),
            peak: registry.gauge(names::SERVE_QUEUE_DEPTH_PEAK, &[]),
            occupancy: registry.gauge(names::SERVE_QUEUE_OCCUPANCY_PCT, &[]),
            capacity: capacity.max(1),
        }
    }

    /// Publishes a queue-depth observation to all three gauges.
    fn queue_level(&self, len: usize) {
        self.depth.set(len as i64);
        self.peak.set_max(len as i64);
        self.occupancy.set((100 * len / self.capacity) as i64);
    }

    fn admission(&self, outcome: &str) {
        self.registry
            .counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", outcome)])
            .inc();
    }

    fn response(&self, resp: &Response) {
        let status = match resp {
            Response::Ok { .. } => "ok",
            Response::Rejected { .. } => "rejected",
            Response::Error { .. } => "error",
        };
        self.registry
            .counter(names::SERVE_RESPONSES_TOTAL, &[("status", status)])
            .inc();
    }
}

/// Dequeues, times, and compiles one job: queue-wait, per-tier compile,
/// and end-to-end histograms all land here, on the registry clock —
/// wall microseconds normally, deterministic tick deltas under the
/// logical clock (where this runs single-threaded in a fixed order).
fn process_job(
    job: &Job,
    remaining: usize,
    o: &ServeOptions,
    pool: &CompilerPool,
    store: Option<&Arc<DiskPlanCache>>,
    m: &ServeMetrics,
) -> Response {
    m.queue_level(remaining);
    let reg = &m.registry;
    let tier = if job.degraded { "fast" } else { "full" };
    let dequeued_us = reg.now_us();
    let wait_us = dequeued_us.saturating_sub(job.arrival_us);
    reg.histogram(names::SERVE_QUEUE_WAIT_US, &[("tier", tier)])
        .observe(wait_us);
    let resp = handle(job, o, pool, store, reg, wait_us as f64 / 1e3);
    let done_us = reg.now_us();
    reg.histogram(names::SERVE_COMPILE_US, &[("tier", tier)])
        .observe(done_us.saturating_sub(dequeued_us));
    reg.histogram(names::SERVE_E2E_US, &[])
        .observe(done_us.saturating_sub(job.arrival_us));
    m.response(&resp);
    resp
}

/// Runs the service over `input` (the request lines), returning every
/// response in request order. Library entry point so tests can drive the
/// whole pipeline — admission, workers, degradation, metrics — without a
/// process. Pass [`Registry::disabled`] when telemetry is not wanted.
///
/// With a **logical-clock** registry the batch runs single-threaded in a
/// fixed order: the whole input is admitted first (so a full queue still
/// rejects and a ≥ 3/4-full queue still degrades), then drained in
/// admission order. Every clock read is then a deterministic tick, so
/// same-input runs produce byte-identical snapshots.
pub fn serve_requests(
    input: &str,
    o: &ServeOptions,
    metrics: &Registry,
) -> Result<Vec<Response>, CliError> {
    let store = match &o.cache {
        Some(dir) => Some(Arc::new(
            DiskPlanCache::open(dir)
                .map_err(|e| CliError::file_io_msg(e.to_string()))?
                .with_metrics(metrics.clone()),
        )),
        None => None,
    };
    let requests: Vec<Result<Request, String>> = input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .enumerate()
        .map(|(id, line)| parse_request(line, id))
        .collect();
    let n = requests.len();
    let slots: Vec<Mutex<Option<Response>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue = JobQueue::new();
    let pool = CompilerPool::new();
    let workers = o.workers.max(1);
    let capacity = o.queue.max(1);
    let m = ServeMetrics::new(metrics, capacity);
    let deterministic = metrics.enabled() && !metrics.is_wall();

    // Admission: parse failures answer immediately; full queue rejects
    // with a backoff hint that doubles (capped) while the queue stays
    // full and resets on the first successful admission.
    let admit_all = |consecutive_rejections: &mut u32| {
        for (id, parsed) in requests.iter().enumerate() {
            let resp = match parsed {
                Err(msg) => {
                    m.admission("parse-error");
                    Some(Response::Error {
                        id,
                        code: 2,
                        message: msg.clone(),
                        queue_wait_ms: 0.0,
                        degraded: false,
                    })
                }
                Ok(req) => {
                    let arrival_us = metrics.now_us();
                    match queue.try_push(req.clone(), capacity, arrival_us) {
                        Ok((degraded, len)) => {
                            m.queue_level(len);
                            m.admission(if degraded {
                                "accepted-degraded"
                            } else {
                                "accepted"
                            });
                            *consecutive_rejections = 0;
                            None
                        }
                        Err(_len) => {
                            m.admission("rejected-queue-full");
                            let hint = retry_after_ms(*consecutive_rejections, id as u64);
                            *consecutive_rejections = consecutive_rejections.saturating_add(1);
                            Some(Response::Rejected {
                                id,
                                retry_after_ms: hint,
                            })
                        }
                    }
                }
            };
            if let Some(resp) = resp {
                m.response(&resp);
                if let Ok(mut slot) = slots[id].lock() {
                    *slot = Some(resp);
                }
            }
        }
        queue.close();
    };

    if deterministic {
        // Logical clock: admit the full burst, then drain in-line. One
        // thread, fixed clock-read order, byte-identical snapshots.
        let mut consecutive = 0u32;
        admit_all(&mut consecutive);
        while let Some((job, remaining)) = queue.pop() {
            let resp = process_job(&job, remaining, o, &pool, store.as_ref(), &m);
            if let Ok(mut slot) = slots[resp.id()].lock() {
                *slot = Some(resp);
            }
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some((job, remaining)) = queue.pop() {
                        let resp = process_job(&job, remaining, o, &pool, store.as_ref(), &m);
                        if let Ok(mut slot) = slots[resp.id()].lock() {
                            *slot = Some(resp);
                        }
                    }
                });
            }
            let mut consecutive = 0u32;
            admit_all(&mut consecutive);
        });
    }

    let mut responses = Vec::with_capacity(n);
    for (id, slot) in slots.into_iter().enumerate() {
        let resp = slot
            .into_inner()
            .ok()
            .flatten()
            .unwrap_or_else(|| Response::Error {
                id,
                code: 1,
                message: "internal: request produced no response".to_string(),
                queue_wait_ms: 0.0,
                degraded: false,
            });
        responses.push(resp);
    }
    Ok(responses)
}

/// The `t10 serve` command: run the service, print one JSON line per
/// response plus a summary, and exit 0 only if every request compiled
/// (13 otherwise, so scripts can tell a degraded batch from a clean one).
///
/// The metric registry is always on — wall clock by default, logical
/// under `--metrics-clock logical` — and exposed three ways: live HTTP
/// (`--metrics-addr`, `/metrics` + `/metrics.json`), periodic + final
/// file snapshots (`--metrics-flush`), and the `t10 stats` summarizer
/// over either snapshot source.
pub fn serve(o: &ServeOptions) -> Result<i32, CliError> {
    let metrics = if o.metrics_logical {
        Registry::logical()
    } else {
        Registry::wall()
    };
    let endpoint = match &o.metrics_addr {
        Some(addr) => {
            let server = crate::metrics_http::spawn(addr, metrics.clone())?;
            eprintln!(
                "serve: metrics on http://{}/metrics (and /metrics.json)",
                server.addr
            );
            Some(server)
        }
        None => None,
    };
    // Background flusher: rewrite the snapshot file periodically while the
    // batch runs so an operator can watch a long batch fill in; stopped
    // (and joined) before the authoritative final write below.
    let flush_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flusher = o.metrics_flush.clone().map(|path| {
        let registry = metrics.clone();
        let stop = flush_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = std::fs::write(&path, registry.snapshot().to_json());
                std::thread::sleep(METRICS_FLUSH_PERIOD);
            }
        })
    });

    let input = match o.requests.as_deref() {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                .map_err(|e| CliError::file_io("stdin", &e.to_string()))?;
            buf
        }
        Some(path) => crate::read_file(path)?,
    };
    let served = serve_requests(&input, o, &metrics);

    flush_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = flusher {
        let _ = h.join();
    }
    if let Some(path) = &o.metrics_flush {
        crate::write_file(path, &metrics.snapshot().to_json())?;
        eprintln!("serve: metrics snapshot -> {path}");
    }

    let responses = served?;
    let (mut ok, mut rejected, mut failed, mut degraded) = (0usize, 0usize, 0usize, 0usize);
    for r in &responses {
        println!("{}", r.to_json());
        match r {
            Response::Ok {
                degraded: was_degraded,
                ..
            } => {
                ok += 1;
                degraded += usize::from(*was_degraded);
            }
            Response::Rejected { .. } => rejected += 1,
            Response::Error { .. } => failed += 1,
        }
    }
    eprintln!(
        "serve: {} request(s): {ok} ok ({degraded} degraded), {rejected} rejected, {failed} failed",
        responses.len(),
    );
    if endpoint.is_some() && o.metrics_linger_ms > 0 {
        eprintln!(
            "serve: metrics endpoint lingering {} ms for final scrapes",
            o.metrics_linger_ms
        );
        std::thread::sleep(Duration::from_millis(o.metrics_linger_ms));
    }
    Ok(if rejected + failed > 0 { 13 } else { 0 })
}

/// `t10 compilebench` options.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileBenchOptions {
    /// Targets to measure (zoo names or `.t10` files); empty = the zoo.
    pub targets: Vec<String>,
    /// Output JSON path (`BENCH_compile.json` convention); stdout summary
    /// is always printed.
    pub out: Option<String>,
    /// Chip size.
    pub cores: usize,
    /// Parallel-search thread count for the speedup measurement.
    pub jobs: usize,
    /// Cache directory (a unique temp directory when absent).
    pub cache: Option<String>,
    /// Also measure cross-shape family reuse: each target is re-resolved at
    /// batch 4 and compiled once cold (no cache) and once against the
    /// family entries the batch-1 pass recorded, plus the standalone
    /// symbolic-certification latency (`t10 check --symbolic`).
    pub cross_shape: bool,
}

/// One model's cold/warm measurement.
struct BenchRow {
    name: String,
    operators: usize,
    cold_ms: f64,
    warm_ms: f64,
    /// Standalone whole-graph verification latency (boundary contracts +
    /// fusion lints) over the released artifact.
    graph_check_ms: f64,
    disk_hits: usize,
    recorded: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The `t10 compilebench` command: cold-vs-warm compile latency over the
/// model zoo, cache hit rates, and the parallel-search speedup, written as
/// a `t10.bench.compile.v1` document.
pub fn compile_bench(o: &CompileBenchOptions) -> Result<i32, CliError> {
    let cache_dir = match &o.cache {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("t10-compilebench-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&cache_dir);
    let store = Arc::new(
        DiskPlanCache::open(&cache_dir).map_err(|e| CliError::file_io_msg(e.to_string()))?,
    );
    let compiler = Compiler::try_new(crate::chip(o.cores), bench_search_config())?;

    let targets: Vec<String> = if o.targets.is_empty() {
        t10_models::all_models()
            .into_iter()
            .map(|m| m.name.to_string())
            .collect()
    } else {
        o.targets.clone()
    };
    let graphs: Vec<t10_ir::Graph> = targets
        .iter()
        .map(|t| resolve_model(t, 1))
        .collect::<Result<_, _>>()?;

    let mut rows: Vec<BenchRow> = Vec::new();
    let compile_with = |opts: &CompileOptions, g: &t10_ir::Graph| {
        let t0 = std::time::Instant::now();
        let compiled = compiler.compile_graph_with(g, opts)?;
        Ok::<_, CliError>((t0.elapsed().as_secs_f64() * 1e3, compiled))
    };
    for g in &graphs {
        let opts = CompileOptions {
            cache: Some(store.clone() as Arc<dyn PlanCache>),
            op_parallelism: o.jobs,
            ..CompileOptions::default()
        };
        let (cold_ms, cold) = compile_with(&opts, g)?;
        let (warm_ms, warm) = compile_with(&opts, g)?;
        // Re-run the graph-level pass standalone (the compile above
        // already ran it as a post-pass) so the bench isolates its cost:
        // the `t10 check --graph` latency CI gates on.
        let verifier = t10_verify::Verifier::new(compiler.spec());
        let t0 = std::time::Instant::now();
        let analysis = t10_verify::graph::check(
            &verifier,
            &warm.program,
            &warm.graph_edges,
            &warm.boundaries,
        );
        let graph_check_ms = t0.elapsed().as_secs_f64() * 1e3;
        if !analysis.report.is_ok() {
            return Err(CliError::internal(format!(
                "{}: graph re-check refuted a released artifact",
                g.name()
            )));
        }
        rows.push(BenchRow {
            name: g.name().to_string(),
            operators: g.nodes().len(),
            cold_ms,
            warm_ms,
            graph_check_ms,
            disk_hits: warm.cache_stats.disk_hits,
            recorded: cold.cache_stats.recorded,
        });
    }

    // Cross-shape family reuse (`--cross-shape`): the batch-1 pass above
    // recorded one family-level entry (symbolic certificate + frontier)
    // per fresh operator. Re-resolving each target at batch 4 misses every
    // exact cache key but lands inside the recorded validity regions, so
    // the compile warm-starts from the family cache — re-building,
    // re-costing and re-certifying the cached configurations instead of
    // searching — and only the residual rules re-run per shape. The
    // standalone symbolic-certification latency (`t10 check --symbolic`)
    // is timed on the served artifact.
    struct CrossShapeRow {
        cold_ms: f64,
        family_ms: f64,
        symbolic_check_ms: f64,
        hit_rate: f64,
    }
    let mut cross: Vec<CrossShapeRow> = Vec::new();
    if o.cross_shape {
        for (ti, t) in targets.iter().enumerate() {
            let g4 = resolve_model(t, 4)?;
            // The cold leg compiles against an *empty* store so both legs
            // pay identical recording costs and the comparison isolates
            // what the family warm start saves: the per-operator search.
            let cold_store = Arc::new(
                DiskPlanCache::open(cache_dir.join(format!("cross-cold-{ti}")))
                    .map_err(|e| CliError::file_io_msg(e.to_string()))?,
            );
            let cold_opts = CompileOptions {
                cache: Some(cold_store as Arc<dyn PlanCache>),
                op_parallelism: o.jobs,
                ..CompileOptions::default()
            };
            let (cold_ms, _) = compile_with(&cold_opts, &g4)?;
            let opts = CompileOptions {
                cache: Some(store.clone() as Arc<dyn PlanCache>),
                op_parallelism: o.jobs,
                ..CompileOptions::default()
            };
            let (family_ms, warm) = compile_with(&opts, &g4)?;
            let hit_rate = warm.cache_stats.cross_shape_hit_rate().unwrap_or(0.0);
            let spec = compiler.spec();
            let capacity = spec.sram_per_core.saturating_sub(spec.shift_buffer) as u64;
            let t0 = std::time::Instant::now();
            for (i, node) in g4.nodes().iter().enumerate() {
                let Some(pareto) = warm.node_pareto.get(i) else {
                    continue;
                };
                let configs: Vec<_> = pareto
                    .plans()
                    .iter()
                    .map(|sp| sp.plan.config.clone())
                    .collect();
                if configs.is_empty() {
                    continue;
                }
                let (dtypes, out_dtype) = t10_core::compiler::node_dtypes(&g4, &node.op);
                if let Ok(cert) = t10_core::symbolic::derive_cert(
                    &node.op, &dtypes, out_dtype, &configs, capacity,
                ) {
                    let valid = t10_core::symbolic::validate_cert(
                        &cert, &node.op, &dtypes, out_dtype, &configs, capacity,
                    );
                    let covered = t10_core::symbolic::check_coverage(&cert, &node.op);
                    if !valid.is_ok() || !covered.is_ok() {
                        return Err(CliError::internal(format!(
                            "{}: symbolic re-check refuted a released artifact",
                            g4.name()
                        )));
                    }
                }
            }
            let symbolic_check_ms = t0.elapsed().as_secs_f64() * 1e3;
            cross.push(CrossShapeRow {
                cold_ms,
                family_ms,
                symbolic_check_ms,
                hit_rate,
            });
        }
    }

    // Parallel-search speedup over the same targets, uncached: 1 thread vs
    // `--jobs` threads over the per-operator axis.
    let speedup_input = &graphs;
    let timed = |par: usize| -> Result<f64, CliError> {
        let opts = CompileOptions {
            op_parallelism: par,
            ..CompileOptions::default()
        };
        let t0 = std::time::Instant::now();
        for g in speedup_input.iter() {
            compiler.compile_graph_with(g, &opts)?;
        }
        Ok(t0.elapsed().as_secs_f64() * 1e3)
    };
    let seq_ms = timed(1)?;
    let par_ms = timed(o.jobs.max(1))?;
    let speedup = if par_ms > 0.0 { seq_ms / par_ms } else { 1.0 };

    let mut cold: Vec<f64> = rows.iter().map(|r| r.cold_ms).collect();
    let mut warm: Vec<f64> = rows.iter().map(|r| r.warm_ms).collect();
    let mut graph_check: Vec<f64> = rows.iter().map(|r| r.graph_check_ms).collect();
    cold.sort_by(f64::total_cmp);
    warm.sort_by(f64::total_cmp);
    graph_check.sort_by(f64::total_cmp);
    let hits: usize = rows.iter().map(|r| r.disk_hits).sum();
    let recorded: usize = rows.iter().map(|r| r.recorded).sum();
    let hit_rate = if hits + recorded > 0 {
        // Warm compiles re-resolve every recorded frontier from disk.
        hits as f64 / recorded as f64
    } else {
        0.0
    };

    let mut doc = String::from("{\n  \"schema\": \"t10.bench.compile.v1\",\n");
    doc.push_str(&format!("  \"cores\": {},\n", o.cores));
    doc.push_str(&format!("  \"search_threads\": {},\n", o.jobs.max(1)));
    doc.push_str(&format!("  \"models\": {},\n", rows.len()));
    doc.push_str(&format!(
        "  \"cold_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}},\n",
        percentile(&cold, 0.5),
        percentile(&cold, 0.9),
        percentile(&cold, 1.0),
    ));
    doc.push_str(&format!(
        "  \"warm_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}},\n",
        percentile(&warm, 0.5),
        percentile(&warm, 0.9),
        percentile(&warm, 1.0),
    ));
    doc.push_str(&format!(
        "  \"graph_check_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}},\n",
        percentile(&graph_check, 0.5),
        percentile(&graph_check, 0.9),
        percentile(&graph_check, 1.0),
    ));
    doc.push_str(&format!("  \"warm_hit_rate\": {hit_rate:.4},\n"));
    if o.cross_shape {
        let mut sym: Vec<f64> = cross.iter().map(|r| r.symbolic_check_ms).collect();
        sym.sort_by(f64::total_cmp);
        let cold4: f64 = cross.iter().map(|r| r.cold_ms).sum();
        let fam4: f64 = cross.iter().map(|r| r.family_ms).sum();
        let xs_rate = if cross.is_empty() {
            0.0
        } else {
            cross.iter().map(|r| r.hit_rate).sum::<f64>() / cross.len() as f64
        };
        doc.push_str(&format!(
            "  \"symbolic_check_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}},\n",
            percentile(&sym, 0.5),
            percentile(&sym, 0.9),
            percentile(&sym, 1.0),
        ));
        doc.push_str(&format!("  \"cross_shape_hit_rate\": {xs_rate:.4},\n"));
        doc.push_str(&format!(
            "  \"cross_shape\": {{\"batch\": 4, \"cold_ms\": {cold4:.3}, \
             \"family_warm_ms\": {fam4:.3}, \"speedup\": {:.3}}},\n",
            if fam4 > 0.0 { cold4 / fam4 } else { 1.0 },
        ));
    }
    doc.push_str(&format!(
        "  \"parallel_search\": {{\"threads\": {}, \"sequential_ms\": {seq_ms:.3}, \
         \"parallel_ms\": {par_ms:.3}, \"speedup\": {speedup:.3}}},\n",
        o.jobs.max(1),
    ));
    doc.push_str("  \"per_model\": [\n");
    for (i, r) in rows.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"name\": \"{}\", \"operators\": {}, \"cold_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"graph_check_ms\": {:.3}, \"disk_hits\": {}, \
             \"recorded\": {}}}{}\n",
            r.name,
            r.operators,
            r.cold_ms,
            r.warm_ms,
            r.graph_check_ms,
            r.disk_hits,
            r.recorded,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    doc.push_str("  ]\n}\n");

    println!(
        "compilebench: {} model(s) at {} cores: cold p50 {:.1} ms, warm p50 {:.1} ms, \
         warm hit rate {:.0}%, parallel x{} speedup {:.2}",
        rows.len(),
        o.cores,
        percentile(&cold, 0.5),
        percentile(&warm, 0.5),
        hit_rate * 100.0,
        o.jobs.max(1),
        speedup,
    );
    if o.cross_shape && !cross.is_empty() {
        let cold4: f64 = cross.iter().map(|r| r.cold_ms).sum();
        let fam4: f64 = cross.iter().map(|r| r.family_ms).sum();
        let xs_rate = cross.iter().map(|r| r.hit_rate).sum::<f64>() / cross.len() as f64;
        println!(
            "cross-shape (batch 1 -> 4): cold {cold4:.1} ms, family-warm {fam4:.1} ms \
             (x{:.2}), family hit rate {:.0}%",
            if fam4 > 0.0 { cold4 / fam4 } else { 1.0 },
            xs_rate * 100.0,
        );
    }
    if let Some(path) = &o.out {
        crate::write_file(path, &doc)?;
        println!("compile bench -> {path}");
    }
    if o.cache.is_none() {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    Ok(0)
}

/// Concurrency model tests of the admission queue: the real [`JobQueue`]
/// state machine driven by real threads, with no clocks, no IO, and no
/// model compilation, so the same tests run under plain `cargo test` and
/// under Miri's data-race/UB checker in CI
/// (`cargo +nightly miri test -p t10-cli concurrency_model`).
#[cfg(test)]
mod concurrency_model {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn req(id: usize) -> Request {
        Request {
            id,
            target: "m".to_string(),
            batch: 1,
            cores: None,
            faults: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn admission_never_overfills_and_drains_exactly_once() {
        const CAP: usize = 4;
        const PRODUCERS: usize = 3;
        const PER_PRODUCER: usize = 8;
        let q = Arc::new(JobQueue::new());
        let admitted = Arc::new(AtomicUsize::new(0));
        let drained: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let drained = Arc::clone(&drained);
                s.spawn(move || {
                    while let Some((job, _left)) = q.pop() {
                        drained.lock().unwrap().push(job.req.id);
                    }
                });
            }
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let q = Arc::clone(&q);
                    let admitted = Arc::clone(&admitted);
                    s.spawn(move || {
                        for k in 0..PER_PRODUCER {
                            match q.try_push(req(p * 100 + k), CAP, 0) {
                                Ok((_, depth)) => {
                                    assert!(depth <= CAP, "queue overfilled to {depth}");
                                    admitted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(len) => assert!(len >= CAP, "rejected below capacity"),
                            }
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
        });
        // Every admitted job was drained exactly once, none invented.
        let mut ids = drained.lock().unwrap().clone();
        assert_eq!(ids.len(), admitted.load(Ordering::Relaxed));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), admitted.load(Ordering::Relaxed));
    }

    #[test]
    fn pressure_flag_trips_at_three_quarters() {
        let q = JobQueue::new();
        // Capacity 4: pushes land at depths 1..=4; 3/4 pressure starts at 3.
        let flags: Vec<bool> = (0..4)
            .map(|i| q.try_push(req(i), 4, 0).unwrap().0)
            .collect();
        assert_eq!(flags, [false, false, true, true]);
        assert!(q.try_push(req(9), 4, 0).is_err(), "fifth push must reject");
    }

    #[test]
    fn pop_is_fifo_and_reports_remaining_depth() {
        let q = JobQueue::new();
        for i in 0..3 {
            q.try_push(req(i), 8, 0).unwrap();
        }
        q.close();
        for expect in 0..3 {
            let (job, left) = q.pop().unwrap();
            assert_eq!(job.req.id, expect);
            assert_eq!(left, 2 - expect);
        }
        assert!(q.pop().is_none(), "closed and empty");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::new());
        std::thread::scope(|s| {
            // Workers block on the empty queue; close() must wake them all
            // (a lost notify here deadlocks the scope join).
            for _ in 0..3 {
                let q = Arc::clone(&q);
                s.spawn(move || assert!(q.pop().is_none()));
            }
            q.close();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_lines() {
        let r = parse_request(
            "compile resnet --batch 2 --cores 64 --faults seed=1 --deadline-ms 250",
            3,
        )
        .unwrap();
        assert_eq!(
            r,
            Request {
                id: 3,
                target: "resnet".to_string(),
                batch: 2,
                cores: Some(64),
                faults: Some("seed=1".to_string()),
                deadline_ms: Some(250),
            }
        );
        assert!(parse_request("", 0).is_err());
        assert!(parse_request("decompile x", 0).is_err());
        assert!(parse_request("compile", 0).is_err());
        assert!(parse_request("compile x --batch", 0).is_err());
        assert!(parse_request("compile x --warp 9", 0).is_err());
    }

    #[test]
    fn retry_hints_double_to_a_cap_with_bounded_jitter() {
        // Slot sequence 50, 100, ..., capped at 3200; jitter ≤ slot/4.
        let mut prev_slot = 0u64;
        for consecutive in 0..10u32 {
            let slot = (RETRY_BASE_MS << consecutive.min(6)).min(RETRY_CAP_MS);
            let hint = retry_after_ms(consecutive, 42);
            assert!(
                hint >= slot && hint <= slot + slot / 4,
                "{consecutive}: {hint}"
            );
            assert!(slot >= prev_slot);
            prev_slot = slot;
        }
        // Deterministic per id, but different ids de-synchronize.
        assert_eq!(retry_after_ms(3, 7), retry_after_ms(3, 7));
        let distinct: std::collections::BTreeSet<u64> =
            (0..16).map(|id| retry_after_ms(6, id)).collect();
        assert!(distinct.len() > 1, "jitter must spread the fleet");
    }

    #[test]
    fn responses_render_as_json_lines() {
        let ok = Response::Ok {
            id: 0,
            model: "mlp".to_string(),
            operators: 2,
            estimated_us: 12.5,
            compile_ms: 3.25,
            disk_hits: 1,
            recorded: 0,
            degraded: false,
            queue_wait_ms: 1.75,
        };
        let line = ok.to_json();
        let v = t10_trace::json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(v.get("queue_wait_ms").and_then(|q| q.as_f64()), Some(1.75));
        assert_eq!(v.get("degraded").and_then(|d| d.as_bool()), Some(false));
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("disk_hits"))
                .and_then(|h| h.as_f64()),
            Some(1.0)
        );
        let rej = Response::Rejected {
            id: 4,
            retry_after_ms: 62,
        };
        let v = t10_trace::json::parse(&rej.to_json()).unwrap();
        assert_eq!(v.get("reason").and_then(|s| s.as_str()), Some("queue-full"));
        let err = Response::Error {
            id: 9,
            code: 5,
            message: "deadline \"exceeded\"".to_string(),
            queue_wait_ms: 0.5,
            degraded: true,
        };
        let v = t10_trace::json::parse(&err.to_json()).unwrap();
        assert_eq!(v.get("code").and_then(|c| c.as_f64()), Some(5.0));
        assert_eq!(v.get("queue_wait_ms").and_then(|q| q.as_f64()), Some(0.5));
        assert_eq!(v.get("degraded").and_then(|d| d.as_bool()), Some(true));
    }

    #[test]
    fn queue_pressure_flags_degraded_admissions() {
        let q = JobQueue::new();
        let req = |id| Request {
            id,
            target: "x".to_string(),
            batch: 1,
            cores: None,
            faults: None,
            deadline_ms: None,
        };
        // Capacity 4: admissions 1 and 2 are healthy, 3 and 4 are under
        // pressure (≥ 3/4 full), 5 is rejected. The second slot reports the
        // post-push depth for the gauges.
        assert_eq!(q.try_push(req(0), 4, 0), Ok((false, 1)));
        assert_eq!(q.try_push(req(1), 4, 1), Ok((false, 2)));
        assert_eq!(q.try_push(req(2), 4, 2), Ok((true, 3)));
        assert_eq!(q.try_push(req(3), 4, 3), Ok((true, 4)));
        assert_eq!(q.try_push(req(4), 4, 4), Err(4));
        // Jobs pop in admission order with their arrival stamps intact.
        let (job, remaining) = q.pop().unwrap();
        assert_eq!(job.req.id, 0);
        assert_eq!(job.arrival_us, 0);
        assert!(!job.degraded);
        assert_eq!(remaining, 3);
        // A single-slot queue never degrades (it rejects instead).
        let q1 = JobQueue::new();
        assert_eq!(q1.try_push(req(0), 1, 0), Ok((false, 1)));
        assert_eq!(q1.try_push(req(1), 1, 1), Err(1));
    }
}
