//! `t10 stats` — summarize a `t10.metrics.v1` snapshot as an SLO table.
//!
//! Reads a snapshot written by `t10 serve --metrics-flush` (or scraped
//! from `/metrics.json`), renders the latency histograms (count, mean,
//! exact p50/p90/p99 under the log2 bucketing), and evaluates the SLO
//! suite: availability (non-rejected fraction of admission decisions) and
//! latency objectives, each with its error-budget burn rate. Exit 0 when
//! every objective is met, 1 otherwise — so a smoke-test script can gate
//! on the service's health directly.

use t10_bench::Table;
use t10_metrics::slo::{self, LatencyObjective};
use t10_metrics::{names, SloConfig, Snapshot};

use crate::CliError;

/// `t10 stats` options.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsOptions {
    /// Snapshot file path.
    pub file: String,
    /// Availability objective override, percent (default 99).
    pub slo_availability: Option<f64>,
    /// End-to-end latency threshold override, milliseconds.
    pub slo_latency_ms: Option<u64>,
    /// Latency objective override, percent of requests within the
    /// threshold (default 99).
    pub slo_latency_pct: Option<f64>,
}

fn fmt_us(us: u64) -> String {
    if us == u64::MAX {
        "+Inf".to_string()
    } else if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

fn fmt_quantile(q: Option<u64>) -> String {
    q.map_or_else(|| "-".to_string(), fmt_us)
}

/// Builds the SLO suite from the CLI overrides.
pub fn slo_config(o: &StatsOptions) -> SloConfig {
    let mut config = SloConfig::default();
    if let Some(pct) = o.slo_availability {
        config.availability_objective = (pct / 100.0).clamp(0.0, 1.0);
    }
    let objective_pct = o.slo_latency_pct.unwrap_or(99.0);
    if let Some(ms) = o.slo_latency_ms {
        config.latency = vec![LatencyObjective {
            histogram: names::SERVE_E2E_US.to_string(),
            threshold_us: ms.saturating_mul(1_000),
            objective: (objective_pct / 100.0).clamp(0.0, 1.0),
        }];
    } else if o.slo_latency_pct.is_some() {
        for obj in &mut config.latency {
            obj.objective = (objective_pct / 100.0).clamp(0.0, 1.0);
        }
    }
    config
}

/// The `t10 stats` command.
pub fn stats(o: &StatsOptions) -> Result<i32, CliError> {
    let src = crate::read_file(&o.file)?;
    let snap = Snapshot::parse(&src)
        .map_err(|e| CliError::from(format!("{}: not a t10.metrics.v1 snapshot: {e}", o.file)))?;

    println!("metrics snapshot: {} (clock: {})", o.file, snap.clock);
    let admissions = snap.counter_sum(names::SERVE_ADMISSION_TOTAL);
    if admissions > 0 {
        let degraded = snap
            .counter(
                names::SERVE_ADMISSION_TOTAL,
                &[("outcome", "accepted-degraded")],
            )
            .unwrap_or(0);
        let rejected = snap
            .counter(
                names::SERVE_ADMISSION_TOTAL,
                &[("outcome", "rejected-queue-full")],
            )
            .unwrap_or(0);
        println!(
            "admissions: {admissions} ({degraded} degraded, {rejected} rejected); \
             peak queue depth {}",
            snap.gauge(names::SERVE_QUEUE_DEPTH_PEAK, &[]).unwrap_or(0)
        );
    }

    // Histograms: one row per (name, label-set) series, then the SLO table.
    if !snap.histograms.is_empty() {
        let mut t = Table::new(vec!["histogram", "count", "mean", "p50", "p90", "p99"]);
        for (key, h) in &snap.histograms {
            t.row(vec![
                key.render(),
                h.count.to_string(),
                if h.count == 0 {
                    "-".to_string()
                } else {
                    fmt_us(h.mean() as u64)
                },
                fmt_quantile(h.p50()),
                fmt_quantile(h.p90()),
                fmt_quantile(h.p99()),
            ]);
        }
        t.print();
    }

    let report = slo::evaluate(&snap, &slo_config(o));
    let mut t = Table::new(vec![
        "objective",
        "target",
        "attained",
        "events",
        "bad",
        "burn rate",
        "status",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.name.clone(),
            format!("{:.2}%", row.objective * 100.0),
            row.attained
                .map_or_else(|| "-".to_string(), |a| format!("{:.2}%", a * 100.0)),
            row.events.to_string(),
            row.bad.to_string(),
            row.burn_rate
                .map_or_else(|| "-".to_string(), |b| format!("{b:.2}x")),
            if row.met { "met" } else { "MISSED" }.to_string(),
        ]);
    }
    t.print();

    if report.all_met() {
        println!("slo: all objectives met");
        Ok(0)
    } else {
        println!("slo: objectives missed");
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_metrics::Registry;

    fn write_snapshot(tag: &str, build: impl Fn(&Registry)) -> String {
        let r = Registry::logical();
        build(&r);
        let path =
            std::env::temp_dir().join(format!("t10-stats-{tag}-{}.json", std::process::id()));
        std::fs::write(&path, r.snapshot().to_json()).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn opts(file: String) -> StatsOptions {
        StatsOptions {
            file,
            slo_availability: None,
            slo_latency_ms: None,
            slo_latency_pct: None,
        }
    }

    #[test]
    fn healthy_snapshot_exits_zero() {
        let file = write_snapshot("healthy", |r| {
            r.counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
                .add(100);
            let h = r.histogram(names::SERVE_E2E_US, &[]);
            for _ in 0..100 {
                h.observe(800);
            }
        });
        assert_eq!(stats(&opts(file)).unwrap(), 0);
    }

    #[test]
    fn missed_availability_exits_one() {
        let file = write_snapshot("missed", |r| {
            r.counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
                .add(90);
            r.counter(
                names::SERVE_ADMISSION_TOTAL,
                &[("outcome", "rejected-queue-full")],
            )
            .add(10);
        });
        assert_eq!(stats(&opts(file)).unwrap(), 1);
    }

    #[test]
    fn slo_overrides_change_the_verdict() {
        let file = write_snapshot("override", |r| {
            r.counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
                .add(9);
            r.counter(
                names::SERVE_ADMISSION_TOTAL,
                &[("outcome", "rejected-queue-full")],
            )
            .add(1);
            let h = r.histogram(names::SERVE_E2E_US, &[]);
            for _ in 0..9 {
                h.observe(5_000); // 5ms
            }
        });
        // 90% availability misses the default 99% objective...
        assert_eq!(stats(&opts(file.clone())).unwrap(), 1);
        // ...but meets a relaxed 85% one with a 10ms latency threshold.
        let mut o = opts(file);
        o.slo_availability = Some(85.0);
        o.slo_latency_ms = Some(10);
        o.slo_latency_pct = Some(90.0);
        assert_eq!(stats(&o).unwrap(), 0);
    }

    #[test]
    fn rejects_non_snapshot_files() {
        let path =
            std::env::temp_dir().join(format!("t10-stats-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "{\"schema\": \"t10.bench.compile.v1\"}").unwrap();
        let err = stats(&opts(path.to_string_lossy().into_owned())).unwrap_err();
        assert!(err.message.contains("not a t10.metrics.v1 snapshot"));
    }
}
