//! `t10` — command-line front end for the T10 compiler and simulator.
//!
//! ```text
//! t10 zoo                               list the built-in models
//! t10 compile <model|file.t10> [opts]   compile and simulate with T10
//! t10 run     <model|file.t10> [opts]   execute under a mid-run fault timeline
//! t10 check   <model|file.t10|all> [opts]  statically verify compiled artifacts
//! t10 bench   <model|file.t10> [opts]   compare T10 / Roller / Ansor / PopART
//! t10 serve   [opts]                    long-lived compile service (requests
//!                                       from --requests FILE or stdin)
//! t10 compilebench [targets] [opts]     cold/warm compile latency + cache
//!                                       hit rate + parallel-search speedup
//! t10 explore <M> <K> <N> [opts]        Pareto frontier of one MatMul
//! t10 trace   <trace.json>              summarize a recorded trace file
//! t10 chaos   [opts]                    adversarial fault-injection campaign
//!
//! options: --batch N (default 1)  --cores N (default 1472)  --fuse
//!          --faults SPEC  --deadline-ms N  --fault-timeline SPEC
//!          --checkpoint-every N  --max-retries K
//!          --cache DIR  --jobs N  --requests FILE  --workers N  --queue N
//!          --out FILE  --trace-out FILE  --metrics-out FILE
//!          --trace-clock wall|logical  --trace-cores N  --json FILE
//!          --campaign-seed N  --count N  --profile NAME  --shrink
//!          --report-json FILE  --bench-json FILE  --corpus DIR  --mutate NAME
//!
//! Exit codes distinguish failure classes: 1 generic, 2 usage, 3 infeasible
//! plan, 4 out of memory, 5 deadline exceeded, 6 worker panicked,
//! 7 device/IR fault, 8 run recovered from mid-run faults, 9 unrecoverable,
//! 10 static verification refuted the artifact, 11 chaos campaign found
//! oracle violations, 12 file read/write failed, 13 serve finished with
//! rejected or failed requests.
//! ```

use t10_cli::{run, Cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", t10_cli::USAGE);
            std::process::exit(2);
        }
    };
    match run(&cli) {
        Ok(0) => {}
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
