//! Library half of the `t10` CLI: argument parsing and command execution,
//! kept in a library so tests can drive it without spawning processes.

use std::time::Duration;

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_core::recovery::{RecoveryController, RecoveryPolicy, RecoveryUnit};
use t10_core::search::{search_operator, SearchConfig};
use t10_core::{viz, CompileError, CompileOptions, Compiler};
use t10_device::ChipSpec;
use t10_ir::Graph;
use t10_models::{all_models, textfmt};
use t10_sim::{FaultPlan, FaultTimeline, Simulator, SimulatorMode};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  t10 zoo
  t10 compile <model|file.t10> [--batch N] [--cores N] [--fuse]
              [--faults SPEC] [--deadline-ms N]
  t10 run     <model|file.t10> [--batch N] [--cores N] [--fuse]
              [--faults SPEC] [--fault-timeline SPEC]
              [--checkpoint-every N] [--max-retries K]
  t10 bench   <model|file.t10> [--batch N] [--cores N]
  t10 explore <M> <K> <N> [--cores N]

fault spec: comma-separated entries, e.g. seed=7,degrade=0.1@0.5,shrink=3@0.5
  seed=N  degrade=FRAC@MULT  lose=FRAC  slow=FRAC@MULT
  link=CORE@MULT  core=CORE@MULT  shrink=CORE@FRAC

fault timeline: events fired at superstep boundaries during `t10 run`, e.g.
  seed=7,drop=3@1,down=8@2,random=4@32
  drop=STEP@CORE (transient link)  stall=STEP@CORE (transient core)
  down=STEP@CORE (link dies)       kill=STEP@CORE (core dies)
  degrade=STEP@CORE@MULT  slow=STEP@CORE@MULT  random=COUNT@MAXSTEP

exit codes: 1 generic, 2 usage, 3 infeasible plan, 4 out of memory,
  5 deadline exceeded, 6 worker panicked, 7 device/IR fault,
  8 run completed after recovering from mid-run faults, 9 unrecoverable";

/// A CLI failure: a message plus the process exit code to report.
///
/// Compile errors map to distinct codes so scripts (and the fault-injection
/// harness) can react to *why* a compile failed without parsing stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, code: 1 }
    }
}

impl From<CompileError> for CliError {
    fn from(e: CompileError) -> Self {
        Self {
            message: e.to_string(),
            code: compile_exit_code(&e),
        }
    }
}

/// The exit code for one compile-error variant.
pub fn compile_exit_code(e: &CompileError) -> i32 {
    match e {
        CompileError::PlanInfeasible { .. } => 3,
        CompileError::OutOfMemory { .. } => 4,
        CompileError::DeadlineExceeded { .. } => 5,
        CompileError::WorkerPanicked { .. } => 6,
        CompileError::Device(_) | CompileError::Ir(_) => 7,
        CompileError::Unrecoverable { .. } => 9,
        CompileError::Internal { .. } => 1,
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// List the built-in models.
    Zoo,
    /// Compile one model with T10 and simulate it.
    Compile {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
        /// Fault specification (see [`FaultPlan::parse`]), if any.
        faults: Option<String>,
        /// Compile deadline in milliseconds (anytime search), if any.
        deadline_ms: Option<u64>,
    },
    /// Compile one model, then execute it under a mid-run fault timeline
    /// with checkpoint-based recovery.
    Run {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
        /// Static fault specification (see [`FaultPlan::parse`]), if any.
        faults: Option<String>,
        /// Mid-run fault timeline (see [`FaultTimeline::parse`]), if any.
        fault_timeline: Option<String>,
        /// Checkpoint interval in supersteps (0 = policy default).
        checkpoint_every: Option<usize>,
        /// Recovery budget: retries + re-plans before giving up.
        max_retries: Option<usize>,
    },
    /// Compare T10 against the VGM baselines.
    Bench {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
    },
    /// Explore one MatMul's Pareto frontier.
    Explore {
        /// Row count.
        m: usize,
        /// Reduction length.
        k: usize,
        /// Column count.
        n: usize,
        /// Core count.
        cores: usize,
    },
}

impl Cli {
    /// Parses a command line (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pos: Vec<&str> = Vec::new();
        let mut batch = 1usize;
        let mut cores = 1472usize;
        let mut fuse = false;
        let mut faults: Option<String> = None;
        let mut deadline_ms: Option<u64> = None;
        let mut fault_timeline: Option<String> = None;
        let mut checkpoint_every: Option<usize> = None;
        let mut max_retries: Option<usize> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--batch" => {
                    batch = it
                        .next()
                        .ok_or("--batch needs a value")?
                        .parse()
                        .map_err(|_| "bad --batch value")?;
                }
                "--cores" => {
                    cores = it
                        .next()
                        .ok_or("--cores needs a value")?
                        .parse()
                        .map_err(|_| "bad --cores value")?;
                }
                "--fuse" => fuse = true,
                "--faults" => {
                    faults = Some(it.next().ok_or("--faults needs a value")?.clone());
                }
                "--deadline-ms" => {
                    deadline_ms = Some(
                        it.next()
                            .ok_or("--deadline-ms needs a value")?
                            .parse()
                            .map_err(|_| "bad --deadline-ms value")?,
                    );
                }
                "--fault-timeline" => {
                    fault_timeline =
                        Some(it.next().ok_or("--fault-timeline needs a value")?.clone());
                }
                "--checkpoint-every" => {
                    checkpoint_every = Some(
                        it.next()
                            .ok_or("--checkpoint-every needs a value")?
                            .parse()
                            .map_err(|_| "bad --checkpoint-every value")?,
                    );
                }
                "--max-retries" => {
                    max_retries = Some(
                        it.next()
                            .ok_or("--max-retries needs a value")?
                            .parse()
                            .map_err(|_| "bad --max-retries value")?,
                    );
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                p => pos.push(p),
            }
        }
        let sub = pos.first().copied();
        if faults.is_some() && sub != Some("compile") && sub != Some("run") {
            return Err("--faults only applies to `compile` and `run`".into());
        }
        if deadline_ms.is_some() && sub != Some("compile") {
            return Err("--deadline-ms only applies to `compile`".into());
        }
        if (fault_timeline.is_some() || checkpoint_every.is_some() || max_retries.is_some())
            && sub != Some("run")
        {
            return Err(
                "--fault-timeline, --checkpoint-every and --max-retries only apply to `run`".into(),
            );
        }
        match pos.as_slice() {
            ["zoo"] => Ok(Cli::Zoo),
            ["compile", target] => Ok(Cli::Compile {
                target: target.to_string(),
                batch,
                cores,
                fuse,
                faults,
                deadline_ms,
            }),
            ["run", target] => Ok(Cli::Run {
                target: target.to_string(),
                batch,
                cores,
                fuse,
                faults,
                fault_timeline,
                checkpoint_every,
                max_retries,
            }),
            ["bench", target] => Ok(Cli::Bench {
                target: target.to_string(),
                batch,
                cores,
            }),
            ["explore", m, k, n] => Ok(Cli::Explore {
                m: m.parse().map_err(|_| "bad M")?,
                k: k.parse().map_err(|_| "bad K")?,
                n: n.parse().map_err(|_| "bad N")?,
                cores,
            }),
            [] => Err("missing command".to_string()),
            other => Err(format!("unrecognized command {other:?}")),
        }
    }
}

/// Resolves a target to a graph: a zoo name or a `.t10` model file.
pub fn resolve_model(target: &str, batch: usize) -> Result<Graph, String> {
    if let Some(spec) = all_models()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(target))
    {
        return (spec.build)(batch).map_err(|e| e.to_string());
    }
    if target.ends_with(".t10") {
        let src = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        return textfmt::parse(&src).map_err(|e| e.to_string());
    }
    Err(format!(
        "unknown model `{target}` (try `t10 zoo`, or pass a .t10 file)"
    ))
}

fn chip(cores: usize) -> ChipSpec {
    if cores == 1472 {
        ChipSpec::ipu_mk2()
    } else {
        ChipSpec::ipu_with_cores(cores)
    }
}

/// Executes a parsed command, returning the process exit code on success.
///
/// Most commands return 0. `t10 run` returns 8 when the run completed but
/// needed at least one recovery (retry or re-plan) along the way, so scripts
/// can distinguish "clean" from "healed" without parsing stdout.
pub fn run(cli: &Cli) -> Result<i32, CliError> {
    match cli {
        Cli::Zoo => {
            let mut t = Table::new(vec!["name", "description", "params"]);
            for m in all_models() {
                t.row(vec![m.name, m.description, m.params]);
            }
            for (name, cfg, layers) in t10_models::zoo::llm_models() {
                t.row(vec![
                    name.to_string(),
                    format!("LLM decode, {layers} layer(s)/chip"),
                    format!("{:.1}B-class", cfg.layer_params() as f64 * 24.0 / 1e9),
                ]);
            }
            t.print();
            Ok(0)
        }
        Cli::Compile {
            target,
            batch,
            cores,
            fuse,
            faults,
            deadline_ms,
        } => {
            let mut g = resolve_model(target, *batch)?;
            if *fuse {
                let before = g.nodes().len();
                g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
                println!("fusion: {before} -> {} operators", g.nodes().len());
            }
            let spec = chip(*cores);
            let fault_plan = match faults {
                Some(s) => Some(FaultPlan::parse(s, spec.num_cores).map_err(CliError::usage)?),
                None => None,
            };
            let opts = CompileOptions {
                deadline: deadline_ms.map(Duration::from_millis),
                faults: fault_plan.clone(),
                warm_start: None,
            };
            let platform = Platform::new(spec.clone());
            let compiled = platform
                .compiler(bench_search_config())
                .compile_graph_with(&g, &opts)?;
            println!(
                "{}: {} operators, {:.2} M params, compiled in {:.2} s",
                g.name(),
                g.nodes().len(),
                g.parameter_count() as f64 / 1e6,
                compiled.compile_seconds
            );
            let mut sim = Simulator::new(spec, SimulatorMode::Timing);
            if let Some(plan) = fault_plan {
                sim = sim.with_fault_plan(plan).map_err(|e| e.to_string())?;
            }
            let r = sim.run(&compiled.program).map_err(|e| e.to_string())?;
            println!(
                "latency {}  ({:.0}% transfer, {} idle/core, peak {}/core)",
                fmt_time(r.total_time),
                r.transfer_fraction() * 100.0,
                fmt_bytes(compiled.reconciled.idle_mem),
                fmt_bytes(r.peak_core_bytes),
            );
            if let Some(f) = &r.faults {
                println!(
                    "faults: {} degraded / {} lost links, {} slow cores, {} shrunk cores \
                     -> +{} overhead ({} compute, {} exchange)",
                    f.degraded_links,
                    f.lost_links,
                    f.slowed_cores,
                    f.shrunk_cores,
                    fmt_time(r.fault_overhead()),
                    fmt_time(r.fault_compute_overhead),
                    fmt_time(r.fault_exchange_overhead),
                );
            }
            Ok(0)
        }
        Cli::Run {
            target,
            batch,
            cores,
            fuse,
            faults,
            fault_timeline,
            checkpoint_every,
            max_retries,
        } => {
            let mut g = resolve_model(target, *batch)?;
            if *fuse {
                g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
            }
            let spec = chip(*cores);
            let fault_plan = match faults {
                Some(s) => FaultPlan::parse(s, spec.num_cores).map_err(CliError::usage)?,
                None => FaultPlan::new(spec.num_cores),
            };
            let timeline = match fault_timeline {
                Some(s) => Some(FaultTimeline::parse(s, spec.num_cores).map_err(CliError::usage)?),
                None => None,
            };
            let mut policy = RecoveryPolicy::default();
            if let Some(n) = checkpoint_every {
                policy.checkpoint_every = (*n).max(1);
            }
            if let Some(k) = max_retries {
                policy.max_retries = *k;
            }
            let controller = RecoveryController::new(SimulatorMode::Timing, policy);
            let graph = g.clone();
            let cfg = bench_search_config();
            let recovered =
                controller.execute(&spec, fault_plan, timeline, 0, &[], |spec, faults, warm| {
                    let opts = CompileOptions {
                        deadline: None,
                        faults: Some(faults.clone()),
                        warm_start: warm.map(<[_]>::to_vec),
                    };
                    let compiled = Compiler::new(spec.clone(), cfg.clone())
                        .compile_graph_with(&graph, &opts)?;
                    Ok(RecoveryUnit {
                        program: compiled.program,
                        pareto: compiled.node_pareto,
                        input_buffers: vec![],
                        output_buffers: vec![],
                    })
                })?;
            let r = &recovered.report;
            println!(
                "{}: latency {} over {} supersteps ({:.0}% transfer, peak {}/core)",
                g.name(),
                fmt_time(r.total_time),
                r.steps,
                r.transfer_fraction() * 100.0,
                fmt_bytes(r.peak_core_bytes),
            );
            println!(
                "checkpoints: {} taken ({} staged, {} staging/core, {} overhead)",
                r.checkpoints_taken,
                fmt_bytes(r.checkpoint_bytes as usize),
                fmt_bytes(r.checkpoint_staging_bytes),
                fmt_time(r.checkpoint_time),
            );
            let healed = match &r.recovery {
                Some(rec) if rec.recoveries() > 0 => {
                    println!(
                        "recovery: {} transient retr{}, {} re-plan(s), {} superstep(s) lost, \
                         {} migrated, {} backoff",
                        rec.transient_retries,
                        if rec.transient_retries == 1 {
                            "y"
                        } else {
                            "ies"
                        },
                        rec.recompiles,
                        rec.supersteps_lost,
                        fmt_bytes(rec.migrated_bytes as usize),
                        fmt_time(rec.backoff_time),
                    );
                    for ev in &rec.events {
                        println!("  healed: {ev}");
                    }
                    true
                }
                _ => {
                    if r.timeline_events > 0 {
                        println!(
                            "absorbed {} non-fatal timeline event(s) without replay",
                            r.timeline_events
                        );
                    }
                    false
                }
            };
            Ok(if healed { 8 } else { 0 })
        }
        Cli::Bench {
            target,
            batch,
            cores,
        } => {
            let g = resolve_model(target, *batch)?;
            let platform = Platform::new(chip(*cores));
            let mut t = Table::new(vec!["system", "latency", "transfer %", "compile (s)"]);
            for o in [
                platform.popart(&g),
                platform.ansor(&g),
                platform.roller(&g),
                platform.t10(&g, bench_search_config()),
            ] {
                let pct = o
                    .report
                    .as_ref()
                    .map(|r| format!("{:.0}%", r.transfer_fraction() * 100.0))
                    .unwrap_or_default();
                t.row(vec![
                    o.system.to_string(),
                    fmt_time(o.latency),
                    pct,
                    format!("{:.2}", o.compile_seconds),
                ]);
            }
            t.print();
            Ok(0)
        }
        Cli::Explore { m, k, n, cores } => {
            let platform = Platform::new(chip(*cores));
            let op = t10_ir::builders::matmul(0, 1, 2, *m, *k, *n).map_err(|e| e.to_string())?;
            let mut cfg = SearchConfig::strict();
            cfg.threads = std::thread::available_parallelism()
                .map(|x| x.get())
                .unwrap_or(1);
            let (pareto, stats) = search_operator(&op, &[2, 2], 2, platform.cost_model(), &cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "filtered {} plans -> {} Pareto-optimal",
                stats.filtered_space,
                pareto.len()
            );
            print!("{}", viz::pareto_scatter(&pareto, 56, 14));
            if let Some(lean) = pareto.min_memory() {
                for level in 0..lean.plan.rotations.len() {
                    print!("{}", viz::rotation_schedule(&op, &lean.plan, level));
                }
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_zoo() {
        assert_eq!(Cli::parse(&s(&["zoo"])).unwrap(), Cli::Zoo);
    }

    #[test]
    fn parses_compile_with_flags() {
        let c = Cli::parse(&s(&[
            "compile", "ResNet", "--batch", "4", "--cores", "64", "--fuse",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Compile {
                target: "ResNet".to_string(),
                batch: 4,
                cores: 64,
                fuse: true,
                faults: None,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn parses_fault_and_deadline_flags() {
        let c = Cli::parse(&s(&[
            "compile",
            "ResNet",
            "--faults",
            "seed=7,degrade=0.1@0.5",
            "--deadline-ms",
            "50",
        ]))
        .unwrap();
        match c {
            Cli::Compile {
                faults,
                deadline_ms,
                ..
            } => {
                assert_eq!(faults.as_deref(), Some("seed=7,degrade=0.1@0.5"));
                assert_eq!(deadline_ms, Some(50));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        assert!(Cli::parse(&s(&["compile", "x", "--faults"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--deadline-ms", "soon"])).is_err());
        // Fault flags on other subcommands are rejected, not silently
        // dropped (a "faulted" bench would otherwise report healthy numbers).
        assert!(Cli::parse(&s(&["bench", "x", "--faults", "lose=0.5"])).is_err());
        assert!(Cli::parse(&s(&["explore", "8", "8", "8", "--deadline-ms", "9"])).is_err());
    }

    #[test]
    fn parses_run_with_recovery_flags() {
        let c = Cli::parse(&s(&[
            "run",
            "ResNet",
            "--cores",
            "16",
            "--faults",
            "seed=3",
            "--fault-timeline",
            "seed=7,drop=2@1",
            "--checkpoint-every",
            "2",
            "--max-retries",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Run {
                target: "ResNet".to_string(),
                batch: 1,
                cores: 16,
                fuse: false,
                faults: Some("seed=3".to_string()),
                fault_timeline: Some("seed=7,drop=2@1".to_string()),
                checkpoint_every: Some(2),
                max_retries: Some(5),
            }
        );
        // Timeline flags only make sense for `run`.
        assert!(Cli::parse(&s(&["compile", "x", "--fault-timeline", "drop=1@0"])).is_err());
        assert!(Cli::parse(&s(&["bench", "x", "--checkpoint-every", "4"])).is_err());
        assert!(Cli::parse(&s(&["zoo", "--max-retries", "2"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--deadline-ms", "50"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--checkpoint-every", "soon"])).is_err());
    }

    #[test]
    fn compile_errors_map_to_distinct_exit_codes() {
        use t10_device::iface::DeviceError;
        let cases = [
            (CompileError::infeasible("x"), 3),
            (CompileError::out_of_memory(None, 2, 1, "x"), 4),
            (CompileError::deadline(50, "x"), 5),
            (CompileError::worker_panicked("x"), 6),
            (CompileError::from(DeviceError::fault("link dark")), 7),
            (CompileError::unrecoverable("budget spent"), 9),
            (CompileError::internal("x"), 1),
        ];
        let mut seen = std::collections::HashSet::new();
        for (e, want) in cases {
            assert_eq!(compile_exit_code(&e), want, "{e}");
            seen.insert(want);
        }
        // Codes 1, 3..=7 and 9; 2 is reserved for usage, 8 for healed runs.
        assert_eq!(seen.len(), 7);
        let cli: CliError = CompileError::deadline(10, "late").into();
        assert_eq!(cli.code, 5);
        let usage = CliError::usage("bad spec");
        assert_eq!(usage.code, 2);
    }

    #[test]
    fn bad_fault_spec_is_a_usage_error() {
        let err = run(&Cli::Compile {
            target: "resnet".to_string(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: Some("bogus=1".to_string()),
            deadline_ms: None,
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("fault spec"));
    }

    #[test]
    fn parses_explore() {
        let c = Cli::parse(&s(&["explore", "128", "256", "512"])).unwrap();
        assert_eq!(
            c,
            Cli::Explore {
                m: 128,
                k: 256,
                n: 512,
                cores: 1472
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&s(&[])).is_err());
        assert!(Cli::parse(&s(&["frob"])).is_err());
        assert!(Cli::parse(&s(&["compile"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--batch"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--warp", "9"])).is_err());
        assert!(Cli::parse(&s(&["explore", "a", "2", "3"])).is_err());
    }

    #[test]
    fn resolves_zoo_models_case_insensitively() {
        assert!(resolve_model("resnet", 1).is_ok());
        assert!(resolve_model("NERF", 1).is_ok());
        assert!(resolve_model("nope", 1).is_err());
    }

    #[test]
    fn zoo_command_runs() {
        run(&Cli::Zoo).unwrap();
    }

    #[test]
    fn compile_command_runs_on_small_chip() {
        // A tiny custom model through the full path, with fusion.
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.t10");
        std::fs::write(
            &path,
            "model cli-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        run(&Cli::Compile {
            target: path.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: true,
            faults: None,
            deadline_ms: None,
        })
        .unwrap();
    }

    #[test]
    fn compile_command_runs_under_faults_and_deadline() {
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulty.t10");
        std::fs::write(
            &path,
            "model cli-fault-test\ninput x 64 64\nlinear a x 64 relu\noutput a\n",
        )
        .unwrap();
        run(&Cli::Compile {
            target: path.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: Some("seed=3,degrade=0.2@0.5,shrink=1@0.5".to_string()),
            deadline_ms: Some(10_000),
        })
        .unwrap();
    }

    fn write_run_model() -> String {
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover.t10");
        std::fs::write(
            &path,
            "model cli-run-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        path.to_string_lossy().to_string()
    }

    #[test]
    fn run_command_without_faults_exits_clean() {
        let code = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: None,
            checkpoint_every: Some(2),
            max_retries: None,
        })
        .unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn run_command_heals_a_mid_run_link_loss_and_exits_8() {
        let code = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("down=1@2".to_string()),
            checkpoint_every: Some(1),
            max_retries: Some(3),
        })
        .unwrap();
        assert_eq!(code, 8);
    }

    #[test]
    fn run_command_with_exhausted_budget_is_unrecoverable() {
        let err = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("drop=1@2".to_string()),
            checkpoint_every: Some(1),
            max_retries: Some(0),
        })
        .unwrap_err();
        assert_eq!(err.code, 9);
        assert!(err.message.contains("unrecoverable"));
    }

    #[test]
    fn bad_timeline_spec_is_a_usage_error() {
        let err = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("frob=1@2".to_string()),
            checkpoint_every: None,
            max_retries: None,
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("fault timeline"));
    }
}
