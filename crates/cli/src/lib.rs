//! Library half of the `t10` CLI: argument parsing and command execution,
//! kept in a library so tests can drive it without spawning processes.

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_core::search::{search_operator, SearchConfig};
use t10_core::viz;
use t10_device::ChipSpec;
use t10_ir::Graph;
use t10_models::{all_models, textfmt};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  t10 zoo
  t10 compile <model|file.t10> [--batch N] [--cores N] [--fuse]
  t10 bench   <model|file.t10> [--batch N] [--cores N]
  t10 explore <M> <K> <N> [--cores N]";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// List the built-in models.
    Zoo,
    /// Compile one model with T10 and simulate it.
    Compile {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
    },
    /// Compare T10 against the VGM baselines.
    Bench {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
    },
    /// Explore one MatMul's Pareto frontier.
    Explore {
        /// Row count.
        m: usize,
        /// Reduction length.
        k: usize,
        /// Column count.
        n: usize,
        /// Core count.
        cores: usize,
    },
}

impl Cli {
    /// Parses a command line (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pos: Vec<&str> = Vec::new();
        let mut batch = 1usize;
        let mut cores = 1472usize;
        let mut fuse = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--batch" => {
                    batch = it
                        .next()
                        .ok_or("--batch needs a value")?
                        .parse()
                        .map_err(|_| "bad --batch value")?;
                }
                "--cores" => {
                    cores = it
                        .next()
                        .ok_or("--cores needs a value")?
                        .parse()
                        .map_err(|_| "bad --cores value")?;
                }
                "--fuse" => fuse = true,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                p => pos.push(p),
            }
        }
        match pos.as_slice() {
            ["zoo"] => Ok(Cli::Zoo),
            ["compile", target] => Ok(Cli::Compile {
                target: target.to_string(),
                batch,
                cores,
                fuse,
            }),
            ["bench", target] => Ok(Cli::Bench {
                target: target.to_string(),
                batch,
                cores,
            }),
            ["explore", m, k, n] => Ok(Cli::Explore {
                m: m.parse().map_err(|_| "bad M")?,
                k: k.parse().map_err(|_| "bad K")?,
                n: n.parse().map_err(|_| "bad N")?,
                cores,
            }),
            [] => Err("missing command".to_string()),
            other => Err(format!("unrecognized command {other:?}")),
        }
    }
}

/// Resolves a target to a graph: a zoo name or a `.t10` model file.
pub fn resolve_model(target: &str, batch: usize) -> Result<Graph, String> {
    if let Some(spec) = all_models().into_iter().find(|m| m.name.eq_ignore_ascii_case(target)) {
        return (spec.build)(batch).map_err(|e| e.to_string());
    }
    if target.ends_with(".t10") {
        let src = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        return textfmt::parse(&src).map_err(|e| e.to_string());
    }
    Err(format!(
        "unknown model `{target}` (try `t10 zoo`, or pass a .t10 file)"
    ))
}

fn chip(cores: usize) -> ChipSpec {
    if cores == 1472 {
        ChipSpec::ipu_mk2()
    } else {
        ChipSpec::ipu_with_cores(cores)
    }
}

/// Executes a parsed command.
pub fn run(cli: &Cli) -> Result<(), String> {
    match cli {
        Cli::Zoo => {
            let mut t = Table::new(vec!["name", "description", "params"]);
            for m in all_models() {
                t.row(vec![m.name, m.description, m.params]);
            }
            for (name, cfg, layers) in t10_models::zoo::llm_models() {
                t.row(vec![
                    name.to_string(),
                    format!("LLM decode, {layers} layer(s)/chip"),
                    format!("{:.1}B-class", cfg.layer_params() as f64 * 24.0 / 1e9),
                ]);
            }
            t.print();
            Ok(())
        }
        Cli::Compile {
            target,
            batch,
            cores,
            fuse,
        } => {
            let mut g = resolve_model(target, *batch)?;
            if *fuse {
                let before = g.nodes().len();
                g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
                println!("fusion: {before} -> {} operators", g.nodes().len());
            }
            let platform = Platform::new(chip(*cores));
            let Some((compiled, outcome)) = platform.t10_full(&g, bench_search_config()) else {
                return Err("model does not fit on the chip".to_string());
            };
            println!(
                "{}: {} operators, {:.2} M params, compiled in {:.2} s",
                g.name(),
                g.nodes().len(),
                g.parameter_count() as f64 / 1e6,
                outcome.compile_seconds
            );
            let r = outcome.report.expect("report");
            println!(
                "latency {}  ({:.0}% transfer, {} idle/core, peak {}/core)",
                fmt_time(r.total_time),
                r.transfer_fraction() * 100.0,
                fmt_bytes(compiled.reconciled.idle_mem),
                fmt_bytes(r.peak_core_bytes),
            );
            Ok(())
        }
        Cli::Bench {
            target,
            batch,
            cores,
        } => {
            let g = resolve_model(target, *batch)?;
            let platform = Platform::new(chip(*cores));
            let mut t = Table::new(vec!["system", "latency", "transfer %", "compile (s)"]);
            for o in [
                platform.popart(&g),
                platform.ansor(&g),
                platform.roller(&g),
                platform.t10(&g, bench_search_config()),
            ] {
                let pct = o
                    .report
                    .as_ref()
                    .map(|r| format!("{:.0}%", r.transfer_fraction() * 100.0))
                    .unwrap_or_default();
                t.row(vec![
                    o.system.to_string(),
                    fmt_time(o.latency),
                    pct,
                    format!("{:.2}", o.compile_seconds),
                ]);
            }
            t.print();
            Ok(())
        }
        Cli::Explore { m, k, n, cores } => {
            let platform = Platform::new(chip(*cores));
            let op =
                t10_ir::builders::matmul(0, 1, 2, *m, *k, *n).map_err(|e| e.to_string())?;
            let mut cfg = SearchConfig::strict();
            cfg.threads = std::thread::available_parallelism()
                .map(|x| x.get())
                .unwrap_or(1);
            let (pareto, stats) = search_operator(&op, &[2, 2], 2, platform.cost_model(), &cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "filtered {} plans -> {} Pareto-optimal",
                stats.filtered_space,
                pareto.len()
            );
            print!("{}", viz::pareto_scatter(&pareto, 56, 14));
            if let Some(lean) = pareto.min_memory() {
                for level in 0..lean.plan.rotations.len() {
                    print!("{}", viz::rotation_schedule(&op, &lean.plan, level));
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_zoo() {
        assert_eq!(Cli::parse(&s(&["zoo"])).unwrap(), Cli::Zoo);
    }

    #[test]
    fn parses_compile_with_flags() {
        let c = Cli::parse(&s(&["compile", "ResNet", "--batch", "4", "--cores", "64", "--fuse"]))
            .unwrap();
        assert_eq!(
            c,
            Cli::Compile {
                target: "ResNet".to_string(),
                batch: 4,
                cores: 64,
                fuse: true
            }
        );
    }

    #[test]
    fn parses_explore() {
        let c = Cli::parse(&s(&["explore", "128", "256", "512"])).unwrap();
        assert_eq!(
            c,
            Cli::Explore {
                m: 128,
                k: 256,
                n: 512,
                cores: 1472
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&s(&[])).is_err());
        assert!(Cli::parse(&s(&["frob"])).is_err());
        assert!(Cli::parse(&s(&["compile"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--batch"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--warp", "9"])).is_err());
        assert!(Cli::parse(&s(&["explore", "a", "2", "3"])).is_err());
    }

    #[test]
    fn resolves_zoo_models_case_insensitively() {
        assert!(resolve_model("resnet", 1).is_ok());
        assert!(resolve_model("NERF", 1).is_ok());
        assert!(resolve_model("nope", 1).is_err());
    }

    #[test]
    fn zoo_command_runs() {
        run(&Cli::Zoo).unwrap();
    }

    #[test]
    fn compile_command_runs_on_small_chip() {
        // A tiny custom model through the full path, with fusion.
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.t10");
        std::fs::write(
            &path,
            "model cli-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        run(&Cli::Compile {
            target: path.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: true,
        })
        .unwrap();
    }
}
