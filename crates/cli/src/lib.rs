//! Library half of the `t10` CLI: argument parsing and command execution,
//! kept in a library so tests can drive it without spawning processes.

// Argument vectors are length-checked before positional access. The
// analysis crates (`t10-verify`, `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod benchdiff;
pub mod metrics_http;
pub mod serve;
pub mod stats;

use std::sync::Arc;
use std::time::Duration;

use t10_bench::harness::{bench_search_config, Platform};
use t10_bench::table::{fmt_bytes, fmt_time};
use t10_bench::Table;
use t10_core::compiler::emit_accuracy_events;
use t10_core::recovery::{RecoveryController, RecoveryMutation, RecoveryPolicy, RecoveryUnit};
use t10_core::search::{search_operator, SearchConfig};
use t10_core::{
    prove_plan, viz, CompileError, CompileOptions, CompiledGraph, Compiler, PlanCache, ProveOutcome,
};
use t10_device::ChipSpec;
use t10_ir::Graph;
use t10_models::{all_models, textfmt};
use t10_sim::{FaultPlan, FaultTimeline, RunReport, Simulator, SimulatorMode};
use t10_trace::{parse_chrome_trace, render_summary, write_chrome_trace, Metrics, Trace};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  t10 zoo
  t10 compile <model|file.t10> [--batch N] [--cores N] [--fuse]
              [--faults SPEC] [--deadline-ms N] [--prove]
              [--cache DIR] [--jobs N] [trace opts]
  t10 run     <model|file.t10> [--batch N] [--cores N] [--fuse]
              [--faults SPEC] [--fault-timeline SPEC]
              [--checkpoint-every N] [--max-retries K] [trace opts]
  t10 check   <model|file.t10|all> [--batch N] [--cores N] [--fuse]
              [--faults SPEC] [--json FILE] [--prove] [--prove-cert FILE]
              [--graph] [--symbolic]
  t10 serve   [--requests FILE] [--cache DIR] [--workers N] [--jobs N]
              [--queue N] [--cores N] [--deadline-ms N]
              [--metrics-addr HOST:PORT] [--metrics-flush FILE]
              [--metrics-clock wall|logical] [--metrics-linger-ms N]
  t10 stats   <snapshot.json> [--slo-availability PCT]
              [--slo-latency-ms N] [--slo-latency-pct PCT]
  t10 bench-diff <baseline.json> <current.json> [--threshold-pct PCT]
  t10 bench   <model|file.t10> [--batch N] [--cores N]
  t10 compilebench [model|file.t10 ...] [--out FILE] [--cores N]
              [--jobs N] [--cache DIR] [--cross-shape]
  t10 explore <M> <K> <N> [--cores N]
  t10 trace   <trace.json>
  t10 chaos   [--campaign-seed N] [--count N] [--profile NAME] [--cores N]
              [--checkpoint-every N] [--max-retries K] [--shrink]
              [--report-json FILE] [--bench-json FILE] [--corpus DIR]
              [--mutate NAME] [--trace-out FILE] [--trace-clock wall|logical]

trace opts (`compile` and `run`):
  --trace-out FILE    write a Chrome trace-event JSON (load in Perfetto,
                      or summarize with `t10 trace FILE`)
  --metrics-out FILE  write a flat metrics JSON (sorted keys, diffable)
  --trace-clock wall|logical
                      compiler-span timestamps: wall microseconds
                      (default) or a deterministic logical counter —
                      `logical` makes same-seed traces byte-identical
  --trace-cores N     record per-core spans for cores 0..N (default 16)

fault spec: comma-separated entries, e.g. seed=7,degrade=0.1@0.5,shrink=3@0.5
  seed=N  degrade=FRAC@MULT  lose=FRAC  slow=FRAC@MULT
  link=CORE@MULT  core=CORE@MULT  shrink=CORE@FRAC

fault timeline: events fired at superstep boundaries during `t10 run`, e.g.
  seed=7,drop=3@1,down=8@2,random=4@32
  drop=STEP@CORE (transient link)  stall=STEP@CORE (transient core)
  down=STEP@CORE (link dies)       kill=STEP@CORE (core dies)
  degrade=STEP@CORE@MULT  slow=STEP@CORE@MULT  random=COUNT@MAXSTEP

`check` compiles each target and statically verifies the artifact: capacity
proofs, rotation-ring consistency, BSP deadlock/race freedom, cost sanity.
`--json FILE` writes the machine-readable diagnostics (the file is written
on failures too); `all` checks the zoo. `--prove` additionally runs the
translation validator over every node's functional lowering — exactly-once
coverage, rotation provenance, reduction flow, dataflow lints — and
`--prove-cert FILE` writes the machine-readable proof certificates.
`compile --prove` runs the same validator as an opt-in compile post-pass.
`--symbolic` additionally derives each node's shape-parametric family
certificate (`t10.cert.symbolic.v1`): a validity region over named symbolic
dimensions, the symbolic SRAM high-water and ring-pace expressions, and the
closed/residual rule split. The certificate is validated (SYM01-07), the
compiled shape is checked against the region, and violations carry the
violated region in the JSON diagnostics; any SYM error exits 10 like every
other refutation.

`chaos` runs a seeded adversarial fault-injection campaign against the
recovery stack: each case generates a randomized fault timeline under a
profile (uniform, barrier-storm, migration-cross, degraded-target,
recovery-storm, mixed — the default), executes it through the full
compile/run/recover path, and judges the result with a differential oracle
(output equivalence, certified recompiles, recovery invariants). The
`cache-fault` profile instead attacks the persistent plan store: each case
populates an on-disk cache, injects one corruption (truncation, bit flip,
garbage header, version skew, stale key, torn temp file, deletion), then
reopens the store as a restarted service and demands a byte-identical warm
plan plus exact quarantine accounting.
`--shrink` minimizes violating timelines to replayable `--fault-timeline`
reproducers; `--corpus DIR` first replays saved `.timeline` reproducers so
past findings stay fixed; `--report-json` writes the deterministic campaign
summary (byte-identical across same-seed reruns), `--bench-json` the
wall-clock perf baseline. `--mutate corrupt-salvage|uncap-retries|
skip-verification` injects a known recovery bug to demonstrate the oracle.

`serve` is the long-lived compile service: it reads one compile request per
line (`compile <model> [--batch N] [--cores N] [--faults SPEC]
[--deadline-ms N]`) from `--requests FILE` or stdin, pushes them through a
bounded admission queue (`--queue`, rejected requests get a typed JSON
response with a capped-jittered `retry_after_ms` backoff hint), and drains
the queue with `--workers` threads, each compile fanning its per-operator
searches across `--jobs` threads. When the queue is ≥ 3/4 full, new
admissions degrade to the fast search preset (flagged in the response;
degraded plans use distinct cache keys). `--cache DIR` persists Pareto
frontiers in the crash-safe on-disk plan store: corrupt or torn entries are
quarantined and recompiled, never served. `compilebench` measures cold-vs-
warm compile latency, cache hit rate, and the parallel-search speedup;
`--cross-shape` additionally re-resolves each target at batch 4 and
measures the family-cache warm start (exact keys all miss; the symbolic
certificates recorded at batch 1 cover the new shape) against a cold
batch-4 compile, plus the standalone symbolic-check latency.

`serve` telemetry: `--metrics-addr` exposes the live registry over HTTP
(`/metrics` Prometheus text 0.0.4, `/metrics.json` the `t10.metrics.v1`
document; `--metrics-linger-ms` keeps the endpoint up after the batch
drains). `--metrics-flush FILE` writes periodic snapshots plus a final
authoritative one. `--metrics-clock logical` swaps wall microseconds for a
deterministic counter: same-seed runs produce byte-identical snapshots
(and serve drains single-threaded to keep ordering fixed). `t10 stats`
renders a snapshot as histogram and SLO tables — availability is the
non-rejected admission fraction, latency objectives come with error-budget
burn rates — and exits 1 when an objective is missed. `t10 bench-diff`
compares a fresh `t10.bench.compile.v1`/`t10.bench.recovery.v1` document
against a committed baseline and exits 14 when a tracked metric regressed
beyond `--threshold-pct` (default 25).

exit codes: 1 generic, 2 usage, 3 infeasible plan, 4 out of memory,
  5 deadline exceeded, 6 worker panicked, 7 device/IR fault,
  8 run completed after recovering from mid-run faults, 9 unrecoverable,
  10 static verification refuted the artifact,
  11 chaos campaign found oracle violations,
  12 file read/write failed, 13 serve finished with rejected/failed requests,
  14 bench-diff found a regression beyond threshold";

/// A CLI failure: a message plus the process exit code to report.
///
/// Compile errors map to distinct codes so scripts (and the fault-injection
/// harness) can react to *why* a compile failed without parsing stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    /// An internal invariant failure (exit code 1).
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }

    /// A file read/write failure on a user-supplied path (exit code 12),
    /// distinct from generic failures so scripts can tell "the model is
    /// infeasible" from "the path was wrong".
    pub fn file_io(path: &str, detail: &str) -> Self {
        Self {
            message: format!("{path}: {detail}"),
            code: 12,
        }
    }

    /// A file-system failure whose message already names the path (exit
    /// code 12) — the store's typed errors arrive pre-formatted.
    pub fn file_io_msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 12,
        }
    }
}

/// Reads a file, mapping failure to the typed file-I/O exit code (12).
pub fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::file_io(path, &e.to_string()))
}

/// Writes a file, mapping failure to the typed file-I/O exit code (12).
pub fn write_file(path: &str, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|e| CliError::file_io(path, &e.to_string()))
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, code: 1 }
    }
}

impl From<CompileError> for CliError {
    fn from(e: CompileError) -> Self {
        Self {
            message: e.to_string(),
            code: compile_exit_code(&e),
        }
    }
}

/// The exit code for one compile-error variant.
pub fn compile_exit_code(e: &CompileError) -> i32 {
    match e {
        CompileError::PlanInfeasible { .. } => 3,
        CompileError::OutOfMemory { .. } => 4,
        CompileError::DeadlineExceeded { .. } => 5,
        CompileError::WorkerPanicked { .. } => 6,
        CompileError::Device(_) | CompileError::Ir(_) => 7,
        CompileError::Unrecoverable { .. } => 9,
        CompileError::Verification { .. } => 10,
        CompileError::Internal { .. } => 1,
    }
}

/// Structured-event options shared by `compile` and `run`.
///
/// Tracing stays disabled (a no-op sink, no allocation on the simulator's
/// hot path) unless at least one output path is requested.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceArgs {
    /// Chrome trace-event JSON output path, if any.
    pub trace_out: Option<String>,
    /// Flat metrics JSON output path, if any.
    pub metrics_out: Option<String>,
    /// Use the deterministic logical clock for compiler-side timestamps.
    pub logical_clock: bool,
    /// Per-core track cap override.
    pub trace_cores: Option<usize>,
}

impl TraceArgs {
    /// Whether any trace output was requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Builds the recording handle: disabled when no output is requested,
    /// otherwise wall- or logical-clocked per `--trace-clock`.
    pub fn make_trace(&self) -> Trace {
        if !self.active() {
            Trace::disabled()
        } else if self.logical_clock {
            Trace::logical()
        } else {
            Trace::wall()
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// List the built-in models.
    Zoo,
    /// Compile one model with T10 and simulate it.
    Compile {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
        /// Fault specification (see [`FaultPlan::parse`]), if any.
        faults: Option<String>,
        /// Compile deadline in milliseconds (anytime search), if any.
        deadline_ms: Option<u64>,
        /// Run the translation-validation post-pass (`t10-prove`) on every
        /// node's functional lowering before releasing the artifact.
        prove: bool,
        /// Persistent plan-cache directory (`--cache`), if any. Hits skip
        /// the per-operator search; corrupt entries are quarantined and
        /// recompiled.
        cache: Option<String>,
        /// Per-operator search parallelism (`--jobs`); 0/1 = sequential.
        jobs: usize,
        /// Structured-event outputs.
        trace: TraceArgs,
    },
    /// Compile one model, then execute it under a mid-run fault timeline
    /// with checkpoint-based recovery.
    Run {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
        /// Static fault specification (see [`FaultPlan::parse`]), if any.
        faults: Option<String>,
        /// Mid-run fault timeline (see [`FaultTimeline::parse`]), if any.
        fault_timeline: Option<String>,
        /// Checkpoint interval in supersteps (0 = policy default).
        checkpoint_every: Option<usize>,
        /// Recovery budget: retries + re-plans before giving up.
        max_retries: Option<usize>,
        /// Structured-event outputs.
        trace: TraceArgs,
    },
    /// Compile one target (or the whole zoo) and statically verify the
    /// artifact without simulating it.
    Check {
        /// Zoo model name, `.t10` file path, or `all` for the whole zoo.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
        /// Apply the unary-fusion pass first.
        fuse: bool,
        /// Fault specification (see [`FaultPlan::parse`]), if any: the
        /// verifier proves capacity against the *degraded* chip.
        faults: Option<String>,
        /// Write machine-readable diagnostics JSON to this path. The file
        /// is always written — also when verification refutes a target or
        /// a compile fails — so CI can archive it unconditionally.
        json: Option<String>,
        /// Also run the symbolic dataflow prover (`t10-prove`) over every
        /// node's functional lowering.
        prove: bool,
        /// Write the machine-readable proof certificates to this path
        /// (requires `--prove`).
        prove_cert: Option<String>,
        /// Also run the graph-level analysis standalone and report it:
        /// per-boundary contract table (GRAPH01-08) plus the advisory FUSE
        /// fusion-candidate lints folded into the diagnostics.
        graph: bool,
        /// Also run the shape-parametric symbolic pass: derive each node's
        /// family certificate from the released frontier, validate it
        /// (SYM01-07), check region coverage, and fold the concrete verdict
        /// through the closed/residual classification.
        symbolic: bool,
    },
    /// Compare T10 against the VGM baselines.
    Bench {
        /// Zoo model name or `.t10` file path.
        target: String,
        /// Batch size.
        batch: usize,
        /// Core count.
        cores: usize,
    },
    /// Explore one MatMul's Pareto frontier.
    Explore {
        /// Row count.
        m: usize,
        /// Reduction length.
        k: usize,
        /// Column count.
        n: usize,
        /// Core count.
        cores: usize,
    },
    /// Run the long-lived compile service over a batch of request lines.
    Serve {
        /// Requests file (`-` or absent = stdin), one request per line.
        requests: Option<String>,
        /// Persistent plan-cache directory, if any.
        cache: Option<String>,
        /// Worker threads draining the admission queue.
        workers: usize,
        /// Per-compile operator-search parallelism.
        jobs: usize,
        /// Admission-queue capacity; requests beyond it are rejected with
        /// a typed backoff hint.
        queue: usize,
        /// Default chip size for requests without `--cores`.
        cores: usize,
        /// Default per-request compile deadline, milliseconds.
        deadline_ms: Option<u64>,
        /// Bind a live metrics HTTP endpoint here (`/metrics`,
        /// `/metrics.json`).
        metrics_addr: Option<String>,
        /// Write periodic + final `t10.metrics.v1` snapshots here.
        metrics_flush: Option<String>,
        /// Use the deterministic logical metrics clock instead of wall
        /// microseconds (forces single-threaded draining).
        metrics_logical: bool,
        /// Keep the metrics endpoint alive this long after the batch
        /// drains, for scrapers.
        metrics_linger_ms: u64,
    },
    /// Summarize a metrics snapshot as histogram + SLO tables.
    Stats {
        /// Snapshot file (`t10.metrics.v1`).
        file: String,
        /// Availability objective override, percent.
        slo_availability: Option<f64>,
        /// End-to-end latency threshold override, milliseconds.
        slo_latency_ms: Option<u64>,
        /// Latency objective override, percent within threshold.
        slo_latency_pct: Option<f64>,
    },
    /// Compare a fresh bench document against a committed baseline and
    /// fail (exit 14) on regression beyond the threshold.
    BenchDiff {
        /// Baseline document path.
        baseline: String,
        /// Current document path.
        current: String,
        /// Allowed relative movement in the bad direction, percent.
        threshold_pct: f64,
    },
    /// Benchmark cold-vs-warm compile latency, cache hit rate, and the
    /// parallel-search speedup.
    CompileBench {
        /// Targets (zoo names or `.t10` files); empty = the whole zoo.
        targets: Vec<String>,
        /// Output JSON path (schema `t10.bench.compile.v1`).
        out: Option<String>,
        /// Core count.
        cores: usize,
        /// Parallel-search thread count for the speedup measurement.
        jobs: usize,
        /// Cache directory override (a unique temp directory when absent).
        cache: Option<String>,
        /// Also measure cross-shape family reuse (batch 1 -> batch 4 via
        /// symbolic certificates) and the standalone symbolic-check
        /// latency.
        cross_shape: bool,
    },
    /// Summarize a previously recorded Chrome trace file.
    Trace {
        /// Path to a `--trace-out` JSON file.
        file: String,
    },
    /// Run a seeded adversarial fault-injection campaign against the
    /// recovery stack, judged by the differential oracle.
    Chaos {
        /// Master campaign seed; case `i` derives its timeline seed from it.
        campaign_seed: u64,
        /// Number of campaign cases.
        count: usize,
        /// Fault-space profile name (`uniform`, `barrier-storm`,
        /// `migration-cross`, `degraded-target`, `recovery-storm`, `mixed`),
        /// or `cache-fault` for the plan-store corruption campaign.
        profile: String,
        /// Cores on the healthy chip. The chaos default is 8, not the chip
        /// default 1472: a campaign runs hundreds of compiles.
        cores: usize,
        /// Recovery budget override (retries + re-plans per operator).
        max_retries: Option<usize>,
        /// Checkpoint interval override, in supersteps.
        checkpoint_every: Option<usize>,
        /// Write the deterministic campaign summary JSON here. Written
        /// before the exit verdict, so CI can archive it on failure too.
        report_json: Option<String>,
        /// Write the wall-clock perf-trajectory baseline JSON here.
        bench_json: Option<String>,
        /// Replay saved `.timeline` reproducers from this directory first.
        corpus: Option<String>,
        /// Shrink violating timelines to minimal reproducers.
        shrink: bool,
        /// Inject an intentionally-buggy recovery behavior
        /// (`corrupt-salvage`, `uncap-retries`, `skip-verification`) to
        /// demonstrate the oracle and the shrinker.
        mutate: Option<String>,
        /// Structured-event outputs (`--trace-out`/`--trace-clock` only).
        trace: TraceArgs,
    },
}

impl Cli {
    /// Parses a command line (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pos: Vec<&str> = Vec::new();
        let mut batch = 1usize;
        let mut cores: Option<usize> = None;
        let mut fuse = false;
        let mut faults: Option<String> = None;
        let mut deadline_ms: Option<u64> = None;
        let mut fault_timeline: Option<String> = None;
        let mut checkpoint_every: Option<usize> = None;
        let mut max_retries: Option<usize> = None;
        let mut json: Option<String> = None;
        let mut prove = false;
        let mut graph_check = false;
        let mut symbolic = false;
        let mut cross_shape = false;
        let mut prove_cert: Option<String> = None;
        let mut trace = TraceArgs::default();
        let mut campaign_seed: Option<u64> = None;
        let mut count: Option<usize> = None;
        let mut profile: Option<String> = None;
        let mut report_json: Option<String> = None;
        let mut bench_json: Option<String> = None;
        let mut corpus: Option<String> = None;
        let mut shrink = false;
        let mut mutate: Option<String> = None;
        let mut cache: Option<String> = None;
        let mut jobs: Option<usize> = None;
        let mut requests: Option<String> = None;
        let mut workers: Option<usize> = None;
        let mut queue: Option<usize> = None;
        let mut out: Option<String> = None;
        let mut metrics_addr: Option<String> = None;
        let mut metrics_flush: Option<String> = None;
        let mut metrics_logical = false;
        let mut metrics_clock_set = false;
        let mut metrics_linger_ms: Option<u64> = None;
        let mut slo_availability: Option<f64> = None;
        let mut slo_latency_ms: Option<u64> = None;
        let mut slo_latency_pct: Option<f64> = None;
        let mut threshold_pct: Option<f64> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--batch" => {
                    batch = it
                        .next()
                        .ok_or("--batch needs a value")?
                        .parse()
                        .map_err(|_| "bad --batch value")?;
                }
                "--cores" => {
                    cores = Some(
                        it.next()
                            .ok_or("--cores needs a value")?
                            .parse()
                            .map_err(|_| "bad --cores value")?,
                    );
                }
                "--fuse" => fuse = true,
                "--faults" => {
                    faults = Some(it.next().ok_or("--faults needs a value")?.clone());
                }
                "--deadline-ms" => {
                    deadline_ms = Some(
                        it.next()
                            .ok_or("--deadline-ms needs a value")?
                            .parse()
                            .map_err(|_| "bad --deadline-ms value")?,
                    );
                }
                "--fault-timeline" => {
                    fault_timeline =
                        Some(it.next().ok_or("--fault-timeline needs a value")?.clone());
                }
                "--checkpoint-every" => {
                    checkpoint_every = Some(
                        it.next()
                            .ok_or("--checkpoint-every needs a value")?
                            .parse()
                            .map_err(|_| "bad --checkpoint-every value")?,
                    );
                }
                "--max-retries" => {
                    max_retries = Some(
                        it.next()
                            .ok_or("--max-retries needs a value")?
                            .parse()
                            .map_err(|_| "bad --max-retries value")?,
                    );
                }
                "--json" => {
                    json = Some(it.next().ok_or("--json needs a path")?.clone());
                }
                "--prove" => prove = true,
                "--graph" => graph_check = true,
                "--symbolic" => symbolic = true,
                "--cross-shape" => cross_shape = true,
                "--prove-cert" => {
                    prove_cert = Some(it.next().ok_or("--prove-cert needs a path")?.clone());
                }
                "--trace-out" => {
                    trace.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
                }
                "--metrics-out" => {
                    trace.metrics_out =
                        Some(it.next().ok_or("--metrics-out needs a path")?.clone());
                }
                "--trace-clock" => match it.next().ok_or("--trace-clock needs a value")?.as_str() {
                    "wall" => trace.logical_clock = false,
                    "logical" => trace.logical_clock = true,
                    other => return Err(format!("bad --trace-clock value `{other}`")),
                },
                "--trace-cores" => {
                    trace.trace_cores = Some(
                        it.next()
                            .ok_or("--trace-cores needs a value")?
                            .parse()
                            .map_err(|_| "bad --trace-cores value")?,
                    );
                }
                "--campaign-seed" => {
                    campaign_seed = Some(
                        it.next()
                            .ok_or("--campaign-seed needs a value")?
                            .parse()
                            .map_err(|_| "bad --campaign-seed value")?,
                    );
                }
                "--count" => {
                    count = Some(
                        it.next()
                            .ok_or("--count needs a value")?
                            .parse()
                            .map_err(|_| "bad --count value")?,
                    );
                }
                "--profile" => {
                    profile = Some(it.next().ok_or("--profile needs a value")?.clone());
                }
                "--report-json" => {
                    report_json = Some(it.next().ok_or("--report-json needs a path")?.clone());
                }
                "--bench-json" => {
                    bench_json = Some(it.next().ok_or("--bench-json needs a path")?.clone());
                }
                "--corpus" => {
                    corpus = Some(it.next().ok_or("--corpus needs a directory")?.clone());
                }
                "--shrink" => shrink = true,
                "--mutate" => {
                    mutate = Some(it.next().ok_or("--mutate needs a value")?.clone());
                }
                "--cache" => {
                    cache = Some(it.next().ok_or("--cache needs a directory")?.clone());
                }
                "--jobs" => {
                    jobs = Some(
                        it.next()
                            .ok_or("--jobs needs a value")?
                            .parse()
                            .map_err(|_| "bad --jobs value")?,
                    );
                }
                "--requests" => {
                    requests = Some(it.next().ok_or("--requests needs a path")?.clone());
                }
                "--workers" => {
                    workers = Some(
                        it.next()
                            .ok_or("--workers needs a value")?
                            .parse()
                            .map_err(|_| "bad --workers value")?,
                    );
                }
                "--queue" => {
                    queue = Some(
                        it.next()
                            .ok_or("--queue needs a value")?
                            .parse()
                            .map_err(|_| "bad --queue value")?,
                    );
                }
                "--out" => {
                    out = Some(it.next().ok_or("--out needs a path")?.clone());
                }
                "--metrics-addr" => {
                    metrics_addr = Some(it.next().ok_or("--metrics-addr needs HOST:PORT")?.clone());
                }
                "--metrics-flush" => {
                    metrics_flush = Some(it.next().ok_or("--metrics-flush needs a path")?.clone());
                }
                "--metrics-clock" => {
                    metrics_clock_set = true;
                    match it.next().ok_or("--metrics-clock needs a value")?.as_str() {
                        "wall" => metrics_logical = false,
                        "logical" => metrics_logical = true,
                        other => return Err(format!("bad --metrics-clock value `{other}`")),
                    }
                }
                "--metrics-linger-ms" => {
                    metrics_linger_ms = Some(
                        it.next()
                            .ok_or("--metrics-linger-ms needs a value")?
                            .parse()
                            .map_err(|_| "bad --metrics-linger-ms value")?,
                    );
                }
                "--slo-availability" => {
                    slo_availability = Some(
                        it.next()
                            .ok_or("--slo-availability needs a percentage")?
                            .parse()
                            .map_err(|_| "bad --slo-availability value")?,
                    );
                }
                "--slo-latency-ms" => {
                    slo_latency_ms = Some(
                        it.next()
                            .ok_or("--slo-latency-ms needs a value")?
                            .parse()
                            .map_err(|_| "bad --slo-latency-ms value")?,
                    );
                }
                "--slo-latency-pct" => {
                    slo_latency_pct = Some(
                        it.next()
                            .ok_or("--slo-latency-pct needs a percentage")?
                            .parse()
                            .map_err(|_| "bad --slo-latency-pct value")?,
                    );
                }
                "--threshold-pct" => {
                    threshold_pct = Some(
                        it.next()
                            .ok_or("--threshold-pct needs a percentage")?
                            .parse()
                            .map_err(|_| "bad --threshold-pct value")?,
                    );
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                p => pos.push(p),
            }
        }
        let sub = pos.first().copied();
        if faults.is_some() && sub != Some("compile") && sub != Some("run") && sub != Some("check")
        {
            return Err("--faults only applies to `compile`, `run` and `check`".into());
        }
        if json.is_some() && sub != Some("check") {
            return Err("--json only applies to `check`".into());
        }
        if prove && sub != Some("check") && sub != Some("compile") {
            return Err("--prove only applies to `check` and `compile`".into());
        }
        if prove_cert.is_some() && (sub != Some("check") || !prove) {
            return Err("--prove-cert requires `check --prove`".into());
        }
        if graph_check && sub != Some("check") {
            return Err("--graph only applies to `check`".into());
        }
        if symbolic && sub != Some("check") {
            return Err("--symbolic only applies to `check`".into());
        }
        if cross_shape && sub != Some("compilebench") {
            return Err("--cross-shape only applies to `compilebench`".into());
        }
        if deadline_ms.is_some() && sub != Some("compile") && sub != Some("serve") {
            return Err("--deadline-ms only applies to `compile` and `serve`".into());
        }
        let takes_cache =
            sub == Some("compile") || sub == Some("serve") || sub == Some("compilebench");
        if cache.is_some() && !takes_cache {
            return Err("--cache only applies to `compile`, `serve` and `compilebench`".into());
        }
        if jobs.is_some() && !takes_cache {
            return Err("--jobs only applies to `compile`, `serve` and `compilebench`".into());
        }
        if (requests.is_some() || workers.is_some() || queue.is_some()) && sub != Some("serve") {
            return Err("--requests, --workers and --queue only apply to `serve`".into());
        }
        if out.is_some() && sub != Some("compilebench") {
            return Err("--out only applies to `compilebench`".into());
        }
        if (metrics_addr.is_some()
            || metrics_flush.is_some()
            || metrics_clock_set
            || metrics_linger_ms.is_some())
            && sub != Some("serve")
        {
            return Err("--metrics-addr, --metrics-flush, --metrics-clock and \
                        --metrics-linger-ms only apply to `serve`"
                .into());
        }
        if (slo_availability.is_some() || slo_latency_ms.is_some() || slo_latency_pct.is_some())
            && sub != Some("stats")
        {
            return Err(
                "--slo-availability, --slo-latency-ms and --slo-latency-pct only \
                        apply to `stats`"
                    .into(),
            );
        }
        if threshold_pct.is_some() && sub != Some("bench-diff") {
            return Err("--threshold-pct only applies to `bench-diff`".into());
        }
        if fault_timeline.is_some() && sub != Some("run") {
            return Err("--fault-timeline only applies to `run`".into());
        }
        if (checkpoint_every.is_some() || max_retries.is_some())
            && sub != Some("run")
            && sub != Some("chaos")
        {
            return Err(
                "--checkpoint-every and --max-retries only apply to `run` and `chaos`".into(),
            );
        }
        if (trace != TraceArgs::default())
            && sub != Some("compile")
            && sub != Some("run")
            && sub != Some("chaos")
        {
            return Err("trace options only apply to `compile`, `run` and `chaos`".into());
        }
        if sub == Some("chaos") && (trace.metrics_out.is_some() || trace.trace_cores.is_some()) {
            return Err("`chaos` supports only --trace-out and --trace-clock".into());
        }
        let chaos_only = campaign_seed.is_some()
            || count.is_some()
            || profile.is_some()
            || report_json.is_some()
            || bench_json.is_some()
            || corpus.is_some()
            || shrink
            || mutate.is_some();
        if chaos_only && sub != Some("chaos") {
            return Err(
                "campaign flags (--campaign-seed, --count, --profile, --report-json, \
                        --bench-json, --corpus, --shrink, --mutate) only apply to `chaos`"
                    .into(),
            );
        }
        // `chaos` runs hundreds of compiles per campaign; its default chip
        // is small. Every other command defaults to the full IPU Mk2.
        let cores = cores.unwrap_or(if sub == Some("chaos") { 8 } else { 1472 });
        match pos.as_slice() {
            ["zoo"] => Ok(Cli::Zoo),
            ["compile", target] => Ok(Cli::Compile {
                target: target.to_string(),
                batch,
                cores,
                fuse,
                faults,
                deadline_ms,
                prove,
                cache,
                jobs: jobs.unwrap_or(1),
                trace,
            }),
            ["serve"] => Ok(Cli::Serve {
                requests,
                cache,
                workers: workers.unwrap_or(2),
                jobs: jobs.unwrap_or(1),
                queue: queue.unwrap_or(16),
                cores,
                deadline_ms,
                metrics_addr,
                metrics_flush,
                metrics_logical,
                metrics_linger_ms: metrics_linger_ms.unwrap_or(0),
            }),
            ["stats", file] => Ok(Cli::Stats {
                file: file.to_string(),
                slo_availability,
                slo_latency_ms,
                slo_latency_pct,
            }),
            ["bench-diff", baseline, current] => Ok(Cli::BenchDiff {
                baseline: baseline.to_string(),
                current: current.to_string(),
                threshold_pct: threshold_pct.unwrap_or(25.0),
            }),
            ["compilebench", targets @ ..] => Ok(Cli::CompileBench {
                targets: targets.iter().map(|t| t.to_string()).collect(),
                out,
                cores,
                jobs: jobs.unwrap_or(1),
                cache,
                cross_shape,
            }),
            ["run", target] => Ok(Cli::Run {
                target: target.to_string(),
                batch,
                cores,
                fuse,
                faults,
                fault_timeline,
                checkpoint_every,
                max_retries,
                trace,
            }),
            ["check", target] => Ok(Cli::Check {
                target: target.to_string(),
                batch,
                cores,
                fuse,
                faults,
                json,
                prove,
                prove_cert,
                graph: graph_check,
                symbolic,
            }),
            ["trace", file] => Ok(Cli::Trace {
                file: file.to_string(),
            }),
            ["chaos"] => Ok(Cli::Chaos {
                campaign_seed: campaign_seed.unwrap_or(0),
                count: count.unwrap_or(20),
                profile: profile.unwrap_or_else(|| "mixed".to_string()),
                cores,
                max_retries,
                checkpoint_every,
                report_json,
                bench_json,
                corpus,
                shrink,
                mutate,
                trace,
            }),
            ["bench", target] => Ok(Cli::Bench {
                target: target.to_string(),
                batch,
                cores,
            }),
            ["explore", m, k, n] => Ok(Cli::Explore {
                m: m.parse().map_err(|_| "bad M")?,
                k: k.parse().map_err(|_| "bad K")?,
                n: n.parse().map_err(|_| "bad N")?,
                cores,
            }),
            [] => Err("missing command".to_string()),
            other => Err(format!("unrecognized command {other:?}")),
        }
    }
}

/// Resolves a target to a graph: a zoo name or a `.t10` model file.
///
/// Errors are typed: an unreadable file is exit 12 (file I/O), an unknown
/// name is exit 2 (usage), a malformed model is exit 1.
pub fn resolve_model(target: &str, batch: usize) -> Result<Graph, CliError> {
    if let Some(spec) = all_models()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(target))
    {
        return (spec.build)(batch).map_err(|e| CliError::from(e.to_string()));
    }
    if target.ends_with(".t10") {
        let src = read_file(target)?;
        return textfmt::parse(&src).map_err(|e| CliError::from(e.to_string()));
    }
    Err(CliError::usage(format!(
        "unknown model `{target}` (try `t10 zoo`, or pass a .t10 file)"
    )))
}

pub(crate) fn chip(cores: usize) -> ChipSpec {
    if cores == 1472 {
        ChipSpec::ipu_mk2()
    } else {
        ChipSpec::ipu_with_cores(cores)
    }
}

/// Flat metrics document for one simulated run: report totals, recovery
/// counts, and the aggregate cost-model accuracy when available.
///
/// `include_wall` gates wall-clock values (compile seconds): they are
/// dropped under `--trace-clock logical` so same-seed metrics files are
/// byte-identical, like the traces.
fn run_metrics(
    graph: &Graph,
    compiled: Option<&CompiledGraph>,
    r: &RunReport,
    include_wall: bool,
) -> Metrics {
    let mut m = Metrics::new();
    m.set_str("model.name", graph.name());
    m.set_u64("model.operators", graph.nodes().len() as u64);
    m.set_f64("sim.total_time_us", r.total_time * 1e6);
    m.set_u64("sim.supersteps", r.steps as u64);
    m.set_f64("sim.compute_time_us", r.compute_time * 1e6);
    m.set_f64("sim.exchange_time_us", r.exchange_time * 1e6);
    m.set_f64("sim.transfer_fraction", r.transfer_fraction());
    m.set_u64("sim.total_shift_bytes", r.total_shift_bytes);
    m.set_u64("sim.peak_core_bytes", r.peak_core_bytes as u64);
    m.set_u64("checkpoint.taken", r.checkpoints_taken as u64);
    m.set_f64("checkpoint.time_us", r.checkpoint_time * 1e6);
    if let Some(rec) = &r.recovery {
        m.set_u64("recovery.transient_retries", rec.transient_retries as u64);
        m.set_u64("recovery.recompiles", rec.recompiles as u64);
        m.set_u64("recovery.supersteps_lost", rec.supersteps_lost as u64);
        m.set_u64("recovery.migrated_bytes", rec.migrated_bytes);
        m.set_f64("recovery.backoff_time_us", rec.backoff_time * 1e6);
    }
    if let Some(compiled) = compiled {
        m.set_f64("compiler.estimated_time_us", compiled.estimated_time * 1e6);
        if include_wall {
            m.set_f64("compiler.compile_seconds", compiled.compile_seconds);
        }
        m.set_u64(
            "compiler.idle_mem_per_core",
            compiled.reconciled.idle_mem as u64,
        );
        let samples = t10_core::compiler::accuracy_samples(graph, compiled, r);
        let acc = t10_trace::AccuracyReport::from_samples(&samples);
        m.set_u64("accuracy.operators", acc.count as u64);
        m.set_f64("accuracy.mape", acc.mape);
        if let Some(s) = acc.spearman {
            m.set_f64("accuracy.spearman", s);
        }
    }
    m
}

/// Writes the requested `--trace-out` / `--metrics-out` files. Trace files
/// are validated by round-trip (parse what was written, byte-compare the
/// re-emission) so a malformed export fails loudly here, not in the viewer.
fn write_trace_outputs(
    trace: &Trace,
    targs: &TraceArgs,
    graph: &Graph,
    compiled: Option<&CompiledGraph>,
    r: &RunReport,
) -> Result<(), CliError> {
    if let Some(path) = &targs.trace_out {
        let json = write_chrome_trace(&trace.snapshot());
        let parsed = parse_chrome_trace(&json)
            .map_err(|e| format!("internal: emitted trace does not parse: {e}"))?;
        if write_chrome_trace(&parsed) != json {
            return Err("internal: trace round-trip mismatch".to_string().into());
        }
        write_file(path, &json)?;
        println!("trace: {} events -> {path}", trace.len());
    }
    if let Some(path) = &targs.metrics_out {
        let m = run_metrics(graph, compiled, r, !targs.logical_clock);
        write_file(path, &m.to_json())?;
        println!("metrics: {} values -> {path}", m.len());
    }
    Ok(())
}

/// Statically verifies a compiled graph end to end: the assembled device
/// program (capacity, rings, BSP safety, cost sanity) plus every node's
/// active plan (plan-level footprint and rotating-pace rules), against the
/// optionally fault-degraded chip. This re-proves, standalone, exactly what
/// the compiler's mandatory post-pass proved before releasing the artifact.
pub fn check_compiled(
    spec: &ChipSpec,
    faults: Option<&FaultPlan>,
    graph: &Graph,
    compiled: &CompiledGraph,
) -> t10_verify::Report {
    let mut verifier = t10_verify::Verifier::new(spec);
    if let Some(f) = faults {
        verifier = verifier.with_faults(f);
    }
    // The compiler plans against the most constrained core (an injected SRAM
    // fault lowers the memory cap chip-wide); prove against the same bound.
    let capacity = verifier.capacities().iter().copied().min().unwrap_or(0);
    let mut report = verifier.verify_program(&compiled.program);
    for (i, node) in graph.nodes().iter().enumerate() {
        let active = compiled
            .reconciled
            .choices
            .get(i)
            .and_then(|c| compiled.node_pareto.get(i)?.plans().get(c.active));
        if let Some(active) = active {
            report.merge(
                t10_core::verify_plan(&node.op, &active.plan, capacity, spec.num_cores).tag_node(i),
            );
        }
    }
    report
}

/// One proved (or skipped) graph node's certificate, for `--prove-cert`.
#[derive(Debug)]
pub struct NodeCert {
    /// Graph node index.
    pub node: usize,
    /// Operator family label.
    pub kind: String,
    /// The certificate JSON, when the plan was actually interpreted.
    pub cert: Option<String>,
    /// Why the prover declined, when it did (padded partitions).
    pub skipped: Option<String>,
}

/// What `t10 check` learned about one target: a verification report, or the
/// error that prevented one from existing.
#[derive(Debug)]
pub enum CheckOutcome {
    /// The target compiled; the report may still carry violations.
    Checked {
        /// Target (graph) name.
        name: String,
        /// Merged structural + semantic report.
        report: t10_verify::Report,
        /// Per-node proof certificates (`--prove` only).
        certs: Vec<NodeCert>,
    },
    /// The target never produced an artifact to verify.
    Failed {
        /// Target name as given.
        name: String,
        /// The compile (or resolve) error.
        error: CliError,
    },
}

impl CheckOutcome {
    /// A verified target.
    pub fn checked(name: String, report: t10_verify::Report, certs: Vec<NodeCert>) -> Self {
        CheckOutcome::Checked {
            name,
            report,
            certs,
        }
    }

    /// A target that failed before verification.
    pub fn failed(name: String, error: CliError) -> Self {
        CheckOutcome::Failed { name, error }
    }

    /// Whether this target is fully clean.
    pub fn is_ok(&self) -> bool {
        match self {
            CheckOutcome::Checked { report, .. } => report.is_ok(),
            CheckOutcome::Failed { .. } => false,
        }
    }
}

/// Renders the `t10 check --json` document. Emitted unconditionally — an
/// all-clean run produces `"ok":true` with an empty `violations` array, so
/// CI artifact steps never 404 on success.
pub fn check_diagnostics_json(outcomes: &[CheckOutcome]) -> String {
    let all_ok = outcomes.iter().all(CheckOutcome::is_ok);
    let mut violations: Vec<&'static str> = outcomes
        .iter()
        .filter_map(|o| match o {
            CheckOutcome::Checked { report, .. } => Some(report.violated_rules()),
            CheckOutcome::Failed { .. } => None,
        })
        .flatten()
        .collect();
    violations.sort_unstable();
    violations.dedup();
    let mut out = String::from("{\"ok\":");
    out.push_str(if all_ok { "true" } else { "false" });
    out.push_str(",\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(v);
        out.push('"');
    }
    out.push_str("],\"targets\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        match o {
            CheckOutcome::Checked { name, report, .. } => {
                t10_trace::json::escape_into(&mut out, name);
                out.push_str("\",\"report\":");
                out.push_str(&report.to_json());
            }
            CheckOutcome::Failed { name, error } => {
                t10_trace::json::escape_into(&mut out, name);
                out.push_str("\",\"error\":{\"code\":");
                out.push_str(&error.code.to_string());
                out.push_str(",\"message\":\"");
                t10_trace::json::escape_into(&mut out, &error.message);
                out.push_str("\"}");
            }
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Renders the `t10 check --prove-cert` document: per target, per graph
/// node, the proof certificate (or the skip reason).
pub fn check_certificates_json(outcomes: &[CheckOutcome]) -> String {
    let mut out = String::from("{\"targets\":[");
    let mut first = true;
    for o in outcomes {
        let CheckOutcome::Checked { name, certs, .. } = o else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        t10_trace::json::escape_into(&mut out, name);
        out.push_str("\",\"nodes\":[");
        for (i, c) in certs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{},\"op\":\"", c.node));
            t10_trace::json::escape_into(&mut out, &c.kind);
            out.push('"');
            if let Some(cert) = &c.cert {
                out.push_str(",\"cert\":");
                out.push_str(cert);
            }
            if let Some(reason) = &c.skipped {
                out.push_str(",\"skipped\":\"");
                t10_trace::json::escape_into(&mut out, reason);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// The final exit verdict of a `check` invocation, after the diagnostics
/// and certificate files are on disk: verification findings exit 10; a
/// target that failed to compile propagates its own exit code (a refuted
/// mandatory post-pass is already 10); a clean sweep exits 0.
pub fn check_verdict(outcomes: &[CheckOutcome]) -> Result<i32, Box<CliError>> {
    for o in outcomes {
        match o {
            CheckOutcome::Checked { name, report, .. } if !report.is_ok() => {
                let msg = match report.diagnostics.first() {
                    Some(d) => format!("{name}: {}", d.render()),
                    None => name.clone(),
                };
                return Err(Box::new(CliError {
                    message: format!("static verification failed: {msg}"),
                    code: 10,
                }));
            }
            CheckOutcome::Failed { name, error } => {
                return Err(Box::new(CliError {
                    message: format!("{name}: {}", error.message),
                    code: error.code,
                }));
            }
            CheckOutcome::Checked { .. } => {}
        }
    }
    Ok(0)
}

/// Executes a parsed command, returning the process exit code on success.
///
/// Most commands return 0. `t10 run` returns 8 when the run completed but
/// needed at least one recovery (retry or re-plan) along the way, so scripts
/// can distinguish "clean" from "healed" without parsing stdout.
pub fn run(cli: &Cli) -> Result<i32, CliError> {
    match cli {
        Cli::Zoo => {
            let mut t = Table::new(vec!["name", "description", "params"]);
            for m in all_models() {
                t.row(vec![m.name, m.description, m.params]);
            }
            for (name, cfg, layers) in t10_models::zoo::llm_models() {
                t.row(vec![
                    name.to_string(),
                    format!("LLM decode, {layers} layer(s)/chip"),
                    format!("{:.1}B-class", cfg.layer_params() as f64 * 24.0 / 1e9),
                ]);
            }
            t.print();
            Ok(0)
        }
        Cli::Compile {
            target,
            batch,
            cores,
            fuse,
            faults,
            deadline_ms,
            prove,
            cache,
            jobs,
            trace: targs,
        } => {
            let mut g = resolve_model(target, *batch)?;
            if *fuse {
                let before = g.nodes().len();
                g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
                println!("fusion: {before} -> {} operators", g.nodes().len());
            }
            let spec = chip(*cores);
            let fault_plan = match faults {
                Some(s) => Some(FaultPlan::parse(s, spec.num_cores).map_err(CliError::usage)?),
                None => None,
            };
            let store = match cache {
                Some(dir) => Some(Arc::new(
                    t10_store::DiskPlanCache::open(dir)
                        .map_err(|e| CliError::file_io_msg(e.to_string()))?,
                )),
                None => None,
            };
            let trace = targs.make_trace();
            let opts = CompileOptions {
                deadline: deadline_ms.map(Duration::from_millis),
                faults: fault_plan.clone(),
                warm_start: None,
                trace: trace.clone(),
                prove: *prove,
                cache: store.clone().map(|s| s as Arc<dyn PlanCache>),
                op_parallelism: *jobs,
                metrics: t10_metrics::Registry::disabled(),
            };
            let platform = Platform::new(spec.clone());
            let compiled = platform
                .compiler(bench_search_config())
                .compile_graph_with(&g, &opts)?;
            println!(
                "{}: {} operators, {:.2} M params, compiled in {:.2} s",
                g.name(),
                g.nodes().len(),
                g.parameter_count() as f64 / 1e6,
                compiled.compile_seconds
            );
            if let Some(store) = &store {
                let cs = &compiled.cache_stats;
                println!(
                    "cache: {} disk hit(s), {} recorded, {} stale, {} quarantined",
                    cs.disk_hits,
                    cs.recorded,
                    cs.stale_entries,
                    store.counters().quarantined,
                );
            }
            let mut sim = Simulator::new(spec, SimulatorMode::Timing).with_trace(trace.clone());
            if let Some(cap) = targs.trace_cores {
                sim = sim.with_trace_cores(cap);
            }
            if let Some(plan) = fault_plan {
                sim = sim.with_fault_plan(plan).map_err(|e| e.to_string())?;
            }
            let r = sim.run(&compiled.program).map_err(|e| e.to_string())?;
            emit_accuracy_events(&trace, &g, &compiled, &r);
            write_trace_outputs(&trace, targs, &g, Some(&compiled), &r)?;
            println!(
                "latency {}  ({:.0}% transfer, {} idle/core, peak {}/core)",
                fmt_time(r.total_time),
                r.transfer_fraction() * 100.0,
                fmt_bytes(compiled.reconciled.idle_mem),
                fmt_bytes(r.peak_core_bytes),
            );
            if let Some(f) = &r.faults {
                println!(
                    "faults: {} degraded / {} lost links, {} slow cores, {} shrunk cores \
                     -> +{} overhead ({} compute, {} exchange)",
                    f.degraded_links,
                    f.lost_links,
                    f.slowed_cores,
                    f.shrunk_cores,
                    fmt_time(r.fault_overhead()),
                    fmt_time(r.fault_compute_overhead),
                    fmt_time(r.fault_exchange_overhead),
                );
            }
            Ok(0)
        }
        Cli::Run {
            target,
            batch,
            cores,
            fuse,
            faults,
            fault_timeline,
            checkpoint_every,
            max_retries,
            trace: targs,
        } => {
            let mut g = resolve_model(target, *batch)?;
            if *fuse {
                g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
            }
            let spec = chip(*cores);
            let fault_plan = match faults {
                Some(s) => FaultPlan::parse(s, spec.num_cores).map_err(CliError::usage)?,
                None => FaultPlan::new(spec.num_cores),
            };
            let timeline = match fault_timeline {
                Some(s) => Some(
                    FaultTimeline::parse(s, spec.num_cores)
                        .map_err(|e| CliError::usage(e.to_string()))?,
                ),
                None => None,
            };
            let mut policy = RecoveryPolicy::default();
            if let Some(n) = checkpoint_every {
                policy.checkpoint_every = (*n).max(1);
            }
            if let Some(k) = max_retries {
                policy.max_retries = *k;
            }
            let trace = targs.make_trace();
            let mut controller =
                RecoveryController::new(SimulatorMode::Timing, policy).with_trace(trace.clone());
            if let Some(cap) = targs.trace_cores {
                controller = controller.with_trace_cores(cap);
            }
            let graph = g.clone();
            let cfg = bench_search_config();
            // The last unit to run is the one the final report describes;
            // keep it for the predicted-vs-simulated accuracy pairing.
            let mut last_compiled: Option<CompiledGraph> = None;
            let recovered =
                controller.execute(&spec, fault_plan, timeline, 0, &[], |spec, faults, warm| {
                    let opts = CompileOptions {
                        deadline: None,
                        faults: Some(faults.clone()),
                        warm_start: warm.map(<[_]>::to_vec),
                        trace: trace.clone(),
                        prove: false,
                        cache: None,
                        op_parallelism: 0,
                        metrics: t10_metrics::Registry::disabled(),
                    };
                    let compiled = Compiler::new(spec.clone(), cfg.clone())
                        .compile_graph_with(&graph, &opts)?;
                    let unit = RecoveryUnit {
                        program: compiled.program.clone(),
                        pareto: compiled.node_pareto.clone(),
                        input_buffers: vec![],
                        output_buffers: vec![],
                        graph_edges: compiled.graph_edges.clone(),
                        boundaries: compiled.boundaries.clone(),
                    };
                    last_compiled = Some(compiled);
                    Ok(unit)
                })?;
            let r = &recovered.report;
            if let Some(compiled) = &last_compiled {
                emit_accuracy_events(&trace, &graph, compiled, r);
            }
            write_trace_outputs(&trace, targs, &graph, last_compiled.as_ref(), r)?;
            println!(
                "{}: latency {} over {} supersteps ({:.0}% transfer, peak {}/core)",
                g.name(),
                fmt_time(r.total_time),
                r.steps,
                r.transfer_fraction() * 100.0,
                fmt_bytes(r.peak_core_bytes),
            );
            println!(
                "checkpoints: {} taken ({} staged, {} staging/core, {} overhead)",
                r.checkpoints_taken,
                fmt_bytes(r.checkpoint_bytes as usize),
                fmt_bytes(r.checkpoint_staging_bytes),
                fmt_time(r.checkpoint_time),
            );
            let healed = match &r.recovery {
                Some(rec) if rec.recoveries() > 0 => {
                    println!(
                        "recovery: {} transient retr{}, {} re-plan(s), {} superstep(s) lost, \
                         {} migrated, {} backoff",
                        rec.transient_retries,
                        if rec.transient_retries == 1 {
                            "y"
                        } else {
                            "ies"
                        },
                        rec.recompiles,
                        rec.supersteps_lost,
                        fmt_bytes(rec.migrated_bytes as usize),
                        fmt_time(rec.backoff_time),
                    );
                    for ev in &rec.events {
                        println!("  healed: {ev}");
                    }
                    true
                }
                _ => {
                    if r.timeline_events > 0 {
                        println!(
                            "absorbed {} non-fatal timeline event(s) without replay",
                            r.timeline_events
                        );
                    }
                    false
                }
            };
            Ok(if healed { 8 } else { 0 })
        }
        Cli::Check {
            target,
            batch,
            cores,
            fuse,
            faults,
            json,
            prove,
            prove_cert,
            graph,
            symbolic,
        } => {
            let spec = chip(*cores);
            let fault_plan = match faults {
                Some(s) => Some(FaultPlan::parse(s, spec.num_cores).map_err(CliError::usage)?),
                None => None,
            };
            let names: Vec<String> = if target == "all" {
                all_models()
                    .into_iter()
                    .map(|m| m.name.to_string())
                    .collect()
            } else {
                vec![target.clone()]
            };
            let mut t = Table::new(vec![
                "model",
                "steps",
                "buffers",
                "shifts",
                "peak/core",
                "errors",
                "proved",
                "verify (\u{b5}s)",
                "status",
            ]);
            let mut outcomes: Vec<CheckOutcome> = Vec::new();
            let mut total_verify = Duration::ZERO;
            let mut edge_table = Table::new(vec![
                "model", "edge", "value", "bytes", "step", "mode", "status",
            ]);
            let mut edge_count = 0usize;
            for name in &names {
                let compiled: Result<(Graph, CompiledGraph), CliError> = (|| {
                    let mut g = resolve_model(name, *batch)?;
                    if *fuse {
                        g = t10_ir::transform::fuse_unary(&g).map_err(|e| e.to_string())?;
                    }
                    let opts = CompileOptions {
                        deadline: None,
                        faults: fault_plan.clone(),
                        warm_start: None,
                        trace: Trace::disabled(),
                        prove: false,
                        cache: None,
                        op_parallelism: 0,
                        metrics: t10_metrics::Registry::disabled(),
                    };
                    // The compile itself runs the mandatory structural
                    // post-pass; a refuted artifact surfaces here as
                    // CompileError::Verification (exit 10). The prover runs
                    // standalone below so its certificates are collected.
                    let compiled = Compiler::new(spec.clone(), bench_search_config())
                        .compile_graph_with(&g, &opts)?;
                    Ok((g, compiled))
                })();
                let (g, compiled) = match compiled {
                    Ok(pair) => pair,
                    Err(e) => {
                        // A target that will not even compile still lands in
                        // the table and the diagnostics file.
                        t.row(vec![
                            name.clone(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            format!("FAIL (exit {})", e.code),
                        ]);
                        println!("{name}: {}", e.message);
                        outcomes.push(CheckOutcome::failed(name.clone(), e));
                        continue;
                    }
                };
                // Re-prove standalone, on the released artifact, and report.
                let t0 = std::time::Instant::now();
                let mut report = check_compiled(&spec, fault_plan.as_ref(), &g, &compiled);
                let mut proved_col = "-".to_string();
                let mut certs: Vec<NodeCert> = Vec::new();
                if *prove {
                    let (mut proved, mut skipped) = (0usize, 0usize);
                    for (i, node) in g.nodes().iter().enumerate() {
                        let active = compiled
                            .reconciled
                            .choices
                            .get(i)
                            .and_then(|c| compiled.node_pareto.get(i)?.plans().get(c.active));
                        let Some(active) = active else { continue };
                        match prove_plan(&node.op, &active.plan, &Trace::disabled()) {
                            ProveOutcome::Checked(p) => {
                                if p.proved() {
                                    proved += 1;
                                }
                                certs.push(NodeCert {
                                    node: i,
                                    kind: format!("{:?}", node.op.kind),
                                    cert: Some(p.cert.to_json()),
                                    skipped: None,
                                });
                                report.merge(p.report.tag_node(i));
                            }
                            ProveOutcome::Skipped { reason } => {
                                skipped += 1;
                                certs.push(NodeCert {
                                    node: i,
                                    kind: format!("{:?}", node.op.kind),
                                    cert: None,
                                    skipped: Some(reason),
                                });
                            }
                        }
                    }
                    proved_col = format!("{proved}/{}", g.nodes().len());
                    if skipped > 0 {
                        proved_col.push_str(&format!(" ({skipped} skipped)"));
                    }
                    // Structural + semantic passes together; the graph and
                    // symbolic families are counted by their own passes.
                    report.stats.rules_checked = t10_verify::RuleId::ALL.len()
                        - t10_verify::RuleId::GRAPH.len()
                        - t10_verify::RuleId::SYMBOLIC.len();
                }
                // Graph-level pass, standalone on the released artifact:
                // every boundary contract re-proved (GRAPH01-08), and the
                // advisory FUSE fusion lints folded into the diagnostics.
                if *graph {
                    let verifier = match fault_plan.as_ref() {
                        Some(f) => t10_verify::Verifier::new(&spec).with_faults(f),
                        None => t10_verify::Verifier::new(&spec),
                    };
                    let analysis = t10_verify::graph::check(
                        &verifier,
                        &compiled.program,
                        &compiled.graph_edges,
                        &compiled.boundaries,
                    );
                    for c in &compiled.boundaries {
                        let bad = analysis
                            .report
                            .diagnostics
                            .iter()
                            .any(|d| d.location.edge == Some(c.edge()));
                        edge_count += 1;
                        edge_table.row(vec![
                            g.name().to_string(),
                            format!("{}->{}", c.producer, c.consumer),
                            c.value.to_string(),
                            fmt_bytes(c.transition_bytes as usize),
                            c.transition_step.to_string(),
                            if c.piggybacked {
                                "piggyback".into()
                            } else {
                                "dedicated".into()
                            },
                            if bad { "FAIL".into() } else { "ok".into() },
                        ]);
                    }
                    for cand in &analysis.candidates {
                        println!(
                            "{name}: fusion candidate {}: ~{} and {} superstep(s) saved{}",
                            cand.chain
                                .iter()
                                .map(|n| n.to_string())
                                .collect::<Vec<_>>()
                                .join("->"),
                            fmt_bytes(cand.bytes_saved as usize),
                            cand.steps_saved,
                            if cand.pace_compatible {
                                " (pace-compatible rings)"
                            } else {
                                ""
                            },
                        );
                    }
                    let fuse_diags = analysis.fuse_diagnostics();
                    let mut graph_report = analysis.report;
                    graph_report.diagnostics.extend(fuse_diags);
                    report.merge(graph_report);
                    report.stats.rules_checked += t10_verify::RuleId::GRAPH.len();
                }
                // Shape-parametric pass (`--symbolic`): derive each node's
                // family certificate from the released frontier, validate
                // it, check the compiled shape against the validity region,
                // and fold the active plan's concrete verdict through the
                // closed/residual classification. Only SYM-family findings
                // are merged — the concrete diagnostics already sit in the
                // report, so on a clean artifact `--symbolic` adds rules,
                // never duplicate noise. SYM errors exit 10 like any other
                // refutation, with the violated region in the JSON.
                if *symbolic {
                    let capacity = match fault_plan.as_ref() {
                        Some(f) => f.min_capacity(spec.sram_per_core, spec.shift_buffer),
                        None => spec.sram_per_core.saturating_sub(spec.shift_buffer),
                    } as u64;
                    let mut families = 0usize;
                    let mut sample_region = String::new();
                    for (i, node) in g.nodes().iter().enumerate() {
                        let Some(pareto) = compiled.node_pareto.get(i) else {
                            continue;
                        };
                        let configs: Vec<_> = pareto
                            .plans()
                            .iter()
                            .map(|sp| sp.plan.config.clone())
                            .collect();
                        if configs.is_empty() {
                            continue;
                        }
                        let (dtypes, out_dtype) = t10_core::compiler::node_dtypes(&g, &node.op);
                        let mut sym = t10_verify::Report::new();
                        match t10_core::symbolic::derive_cert(
                            &node.op, &dtypes, out_dtype, &configs, capacity,
                        ) {
                            Ok(cert) => {
                                families += 1;
                                if sample_region.is_empty() {
                                    sample_region = cert.region.render();
                                }
                                sym.merge(t10_core::symbolic::validate_cert(
                                    &cert, &node.op, &dtypes, out_dtype, &configs, capacity,
                                ));
                                sym.merge(t10_core::symbolic::check_coverage(&cert, &node.op));
                                let active = compiled
                                    .reconciled
                                    .choices
                                    .get(i)
                                    .and_then(|c| pareto.plans().get(c.active));
                                if let Some(active) = active {
                                    let concrete = t10_core::verify_plan(
                                        &node.op,
                                        &active.plan,
                                        capacity as usize,
                                        spec.num_cores,
                                    );
                                    let folded =
                                        t10_core::symbolic::fold_concrete_report(&cert, concrete);
                                    sym.diagnostics
                                        .extend(folded.diagnostics.into_iter().filter(|d| {
                                            d.rule.family() == t10_verify::RuleFamily::Symbolic
                                        }));
                                }
                            }
                            Err(e) => sym.push(e.diagnostic()),
                        }
                        report.merge(sym.tag_node(i));
                    }
                    report.stats.rules_checked += t10_verify::RuleId::SYMBOLIC.len();
                    if sample_region.is_empty() {
                        println!("{name}: symbolic: no family certificate derivable");
                    } else {
                        println!(
                            "{name}: symbolic: {families} family certificate(s), \
                             e.g. {sample_region}"
                        );
                    }
                }
                let dt = t0.elapsed();
                total_verify += dt;
                let status = if report.is_ok() {
                    "ok".to_string()
                } else {
                    format!("FAIL ({})", report.violated_rules().join(","))
                };
                for d in &report.diagnostics {
                    println!("{name}: {}", d.render());
                }
                t.row(vec![
                    g.name().to_string(),
                    report.stats.steps.to_string(),
                    report.stats.buffers.to_string(),
                    report.stats.shifts.to_string(),
                    fmt_bytes(report.stats.peak_core_bytes),
                    report.error_count().to_string(),
                    proved_col,
                    format!("{:.0}", dt.as_secs_f64() * 1e6),
                    status,
                ]);
                outcomes.push(CheckOutcome::checked(g.name().to_string(), report, certs));
            }
            t.print();
            if *graph && edge_count > 0 {
                println!("boundary contracts ({edge_count} edge(s)):");
                edge_table.print();
            }
            let all_ok = outcomes.iter().all(CheckOutcome::is_ok);
            println!(
                "checked {} target(s) in {:.1} ms total verify time: {}",
                names.len(),
                total_verify.as_secs_f64() * 1e3,
                if all_ok { "all ok" } else { "VIOLATIONS FOUND" },
            );
            if let Some(path) = json {
                write_file(path, &check_diagnostics_json(&outcomes))?;
                println!("diagnostics: {} target(s) -> {path}", outcomes.len());
            }
            if let Some(path) = prove_cert {
                write_file(path, &check_certificates_json(&outcomes))?;
                println!("certificates: {} target(s) -> {path}", outcomes.len());
            }
            check_verdict(&outcomes).map_err(|e| *e)
        }
        Cli::Bench {
            target,
            batch,
            cores,
        } => {
            let g = resolve_model(target, *batch)?;
            let platform = Platform::new(chip(*cores));
            let mut t = Table::new(vec!["system", "latency", "transfer %", "compile (s)"]);
            for o in [
                platform.popart(&g),
                platform.ansor(&g),
                platform.roller(&g),
                platform.t10(&g, bench_search_config()),
            ] {
                let pct = o
                    .report
                    .as_ref()
                    .map(|r| format!("{:.0}%", r.transfer_fraction() * 100.0))
                    .unwrap_or_default();
                t.row(vec![
                    o.system.to_string(),
                    fmt_time(o.latency),
                    pct,
                    format!("{:.2}", o.compile_seconds),
                ]);
            }
            t.print();
            Ok(0)
        }
        Cli::Serve {
            requests,
            cache,
            workers,
            jobs,
            queue,
            cores,
            deadline_ms,
            metrics_addr,
            metrics_flush,
            metrics_logical,
            metrics_linger_ms,
        } => serve::serve(&serve::ServeOptions {
            requests: requests.clone(),
            cache: cache.clone(),
            workers: *workers,
            jobs: *jobs,
            queue: *queue,
            cores: *cores,
            deadline_ms: *deadline_ms,
            metrics_addr: metrics_addr.clone(),
            metrics_flush: metrics_flush.clone(),
            metrics_logical: *metrics_logical,
            metrics_linger_ms: *metrics_linger_ms,
        }),
        Cli::Stats {
            file,
            slo_availability,
            slo_latency_ms,
            slo_latency_pct,
        } => stats::stats(&stats::StatsOptions {
            file: file.clone(),
            slo_availability: *slo_availability,
            slo_latency_ms: *slo_latency_ms,
            slo_latency_pct: *slo_latency_pct,
        }),
        Cli::BenchDiff {
            baseline,
            current,
            threshold_pct,
        } => benchdiff::bench_diff(&benchdiff::BenchDiffOptions {
            baseline: baseline.clone(),
            current: current.clone(),
            threshold_pct: *threshold_pct,
        }),
        Cli::CompileBench {
            targets,
            out,
            cores,
            jobs,
            cache,
            cross_shape,
        } => serve::compile_bench(&serve::CompileBenchOptions {
            targets: targets.clone(),
            out: out.clone(),
            cores: *cores,
            jobs: *jobs,
            cache: cache.clone(),
            cross_shape: *cross_shape,
        }),
        Cli::Trace { file } => {
            let src = read_file(file)?;
            let events =
                parse_chrome_trace(&src).map_err(|e| CliError::usage(format!("{file}: {e}")))?;
            print!("{}", render_summary(&events));
            Ok(0)
        }
        Cli::Explore { m, k, n, cores } => {
            let platform = Platform::new(chip(*cores));
            let op = t10_ir::builders::matmul(0, 1, 2, *m, *k, *n).map_err(|e| e.to_string())?;
            let mut cfg = SearchConfig::strict();
            cfg.threads = std::thread::available_parallelism()
                .map(|x| x.get())
                .unwrap_or(1);
            let (pareto, stats) = search_operator(&op, &[2, 2], 2, platform.cost_model(), &cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "filtered {} plans -> {} Pareto-optimal",
                stats.filtered_space,
                pareto.len()
            );
            print!("{}", viz::pareto_scatter(&pareto, 56, 14));
            if let Some(lean) = pareto.min_memory() {
                for level in 0..lean.plan.rotations.len() {
                    print!("{}", viz::rotation_schedule(&op, &lean.plan, level));
                }
            }
            Ok(0)
        }
        Cli::Chaos {
            campaign_seed,
            count,
            profile,
            cores,
            max_retries,
            checkpoint_every,
            report_json,
            bench_json,
            corpus,
            shrink,
            mutate,
            trace: targs,
        } => {
            // The cache-fault profile attacks the persistent plan store
            // instead of fault timelines; it shares the campaign knobs
            // (--campaign-seed/--count/--cores/--report-json) but none of
            // the timeline machinery, so intercept it before Profile::parse.
            if profile == "cache-fault" {
                if *shrink
                    || mutate.is_some()
                    || corpus.is_some()
                    || bench_json.is_some()
                    || checkpoint_every.is_some()
                    || max_retries.is_some()
                    || targs.trace_out.is_some()
                {
                    return Err(CliError::usage(
                        "--profile cache-fault corrupts the plan store, not timelines; \
                         drop --shrink/--mutate/--corpus/--bench-json/--checkpoint-every/\
                         --max-retries/--trace-out",
                    ));
                }
                let cfg = t10_chaos::CacheCampaignConfig {
                    seed: *campaign_seed,
                    count: *count,
                    cores: *cores,
                };
                let report = t10_chaos::run_cache_campaign(&cfg)?;
                println!(
                    "cache campaign: seed {} cores {}: {} case(s) -> {} violation(s)",
                    report.seed, report.cores, report.count, report.violations,
                );
                for c in &report.cases {
                    for v in &c.violations {
                        println!(
                            "case {} ({}): CACHE-VIOLATION {} under {} \
                             ({} entries, {} quarantined, {} warm hit(s))",
                            c.index,
                            c.chain,
                            v.label(),
                            c.fault.label(),
                            c.entries,
                            c.quarantined,
                            c.disk_hits,
                        );
                    }
                }
                if let Some(path) = report_json {
                    write_file(path, &t10_chaos::cache_campaign_json(&report))?;
                    println!("cache campaign report -> {path}");
                }
                if report.violations > 0 {
                    return Err(CliError {
                        message: format!("chaos: {} cache oracle violation(s)", report.violations),
                        code: 11,
                    });
                }
                return Ok(0);
            }
            let profile = t10_chaos::Profile::parse(profile).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown profile `{profile}` (try uniform, barrier-storm, \
                     migration-cross, degraded-target, recovery-storm, \
                     cache-fault, mixed)"
                ))
            })?;
            let mutation = match mutate.as_deref() {
                None => RecoveryMutation::None,
                Some("corrupt-salvage") => RecoveryMutation::CorruptSalvage,
                Some("uncap-retries") => RecoveryMutation::UncapRetries,
                Some("skip-verification") => RecoveryMutation::SkipVerification,
                Some(other) => {
                    return Err(CliError::usage(format!(
                        "unknown mutation `{other}` (try corrupt-salvage, \
                         uncap-retries, skip-verification)"
                    )))
                }
            };
            let trace = targs.make_trace();
            let mut run_cfg = t10_chaos::RunConfig {
                cores: *cores,
                mutation,
                trace: trace.clone(),
                ..t10_chaos::RunConfig::default()
            };
            if let Some(n) = checkpoint_every {
                run_cfg.policy.checkpoint_every = (*n).max(1);
            }
            if let Some(k) = max_retries {
                run_cfg.policy.max_retries = *k;
            }

            // Replay the pinned corpus first: a regression on a past
            // minimized reproducer is the cheapest possible finding.
            let mut corpus_violations = 0usize;
            if let Some(dir) = corpus {
                let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                    .map_err(|e| CliError::file_io(dir, &e.to_string()))?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "timeline"))
                    .collect();
                paths.sort();
                let mut timelines = Vec::new();
                for path in &paths {
                    let text = read_file(&path.to_string_lossy())?;
                    timelines.extend(
                        t10_chaos::parse_corpus(&text, run_cfg.cores)
                            .map_err(|e| CliError::usage(format!("{}: {e}", path.display())))?,
                    );
                }
                let outcomes = t10_chaos::replay(&timelines, &run_cfg)?;
                for o in &outcomes {
                    if let t10_chaos::Outcome::Violation(kind) = &o.outcome {
                        corpus_violations += 1;
                        println!(
                            "corpus: REGRESSION {} on {}: {}",
                            o.spec,
                            o.chain,
                            kind.label()
                        );
                    }
                }
                println!(
                    "corpus: {} reproducer(s) x {} chain(s) replayed, {} regression(s)",
                    timelines.len(),
                    if timelines.is_empty() {
                        0
                    } else {
                        outcomes.len() / timelines.len()
                    },
                    corpus_violations,
                );
            }

            let cfg = t10_chaos::CampaignConfig {
                seed: *campaign_seed,
                count: *count,
                profile,
                run: run_cfg,
                shrink_violations: *shrink,
            };
            let report = t10_chaos::run_campaign(&cfg)?;
            println!(
                "campaign: seed {} profile {} cores {}: {} case(s) -> \
                 {} healed, {} degraded-ok, {} unrecoverable-expected, {} violation(s)",
                report.seed,
                report.profile,
                report.cores,
                report.count,
                report.healed,
                report.degraded_ok,
                report.unrecoverable_expected,
                report.violations,
            );
            println!(
                "recovery overhead: p50 {:.1}%  p90 {:.1}%  p99 {:.1}%  \
                 (checkpoint cost {:.2}% of run time)",
                report.overhead_p50,
                report.overhead_p90,
                report.overhead_p99,
                report.checkpoint_cost_pct,
            );
            for c in &report.cases {
                let t10_chaos::Outcome::Violation(kind) = &c.outcome else {
                    continue;
                };
                println!(
                    "case {} ({}): ORACLE-VIOLATION {} -- replay with --fault-timeline '{}'",
                    c.index,
                    c.chain,
                    kind.label(),
                    c.spec,
                );
                if let Some(sh) = &c.shrunk {
                    println!(
                        "  shrunk to {} event(s) in {} attempt(s): '{}'",
                        sh.events, sh.attempts, sh.spec,
                    );
                }
            }
            // Reports are written before the exit verdict so CI can archive
            // them on failure too.
            if let Some(path) = report_json {
                write_file(path, &t10_chaos::campaign_json(&report))?;
                println!("campaign report -> {path}");
            }
            if let Some(path) = bench_json {
                write_file(path, &t10_chaos::bench_json(&report))?;
                println!("recovery perf baseline -> {path}");
            }
            if let Some(path) = &targs.trace_out {
                let json = write_chrome_trace(&trace.snapshot());
                let parsed = parse_chrome_trace(&json)
                    .map_err(|e| format!("internal: emitted trace does not parse: {e}"))?;
                if write_chrome_trace(&parsed) != json {
                    return Err("internal: trace round-trip mismatch".to_string().into());
                }
                write_file(path, &json)?;
                println!("trace: {} events -> {path}", trace.len());
            }
            let total_violations = report.violations + corpus_violations;
            if total_violations > 0 {
                return Err(CliError {
                    message: format!("chaos: {total_violations} oracle violation(s)"),
                    code: 11,
                });
            }
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_zoo() {
        assert_eq!(Cli::parse(&s(&["zoo"])).unwrap(), Cli::Zoo);
    }

    #[test]
    fn parses_compile_with_flags() {
        let c = Cli::parse(&s(&[
            "compile", "ResNet", "--batch", "4", "--cores", "64", "--fuse",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Compile {
                target: "ResNet".to_string(),
                batch: 4,
                cores: 64,
                fuse: true,
                faults: None,
                deadline_ms: None,
                prove: false,
                cache: None,
                jobs: 1,
                trace: TraceArgs::default(),
            }
        );
    }

    #[test]
    fn parses_fault_and_deadline_flags() {
        let c = Cli::parse(&s(&[
            "compile",
            "ResNet",
            "--faults",
            "seed=7,degrade=0.1@0.5",
            "--deadline-ms",
            "50",
        ]))
        .unwrap();
        match c {
            Cli::Compile {
                faults,
                deadline_ms,
                ..
            } => {
                assert_eq!(faults.as_deref(), Some("seed=7,degrade=0.1@0.5"));
                assert_eq!(deadline_ms, Some(50));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        assert!(Cli::parse(&s(&["compile", "x", "--faults"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--deadline-ms", "soon"])).is_err());
        // Fault flags on other subcommands are rejected, not silently
        // dropped (a "faulted" bench would otherwise report healthy numbers).
        assert!(Cli::parse(&s(&["bench", "x", "--faults", "lose=0.5"])).is_err());
        assert!(Cli::parse(&s(&["explore", "8", "8", "8", "--deadline-ms", "9"])).is_err());
    }

    #[test]
    fn parses_run_with_recovery_flags() {
        let c = Cli::parse(&s(&[
            "run",
            "ResNet",
            "--cores",
            "16",
            "--faults",
            "seed=3",
            "--fault-timeline",
            "seed=7,drop=2@1",
            "--checkpoint-every",
            "2",
            "--max-retries",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Run {
                target: "ResNet".to_string(),
                batch: 1,
                cores: 16,
                fuse: false,
                faults: Some("seed=3".to_string()),
                fault_timeline: Some("seed=7,drop=2@1".to_string()),
                checkpoint_every: Some(2),
                max_retries: Some(5),
                trace: TraceArgs::default(),
            }
        );
        // Timeline flags only make sense for `run`.
        assert!(Cli::parse(&s(&["compile", "x", "--fault-timeline", "drop=1@0"])).is_err());
        assert!(Cli::parse(&s(&["bench", "x", "--checkpoint-every", "4"])).is_err());
        assert!(Cli::parse(&s(&["zoo", "--max-retries", "2"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--deadline-ms", "50"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--checkpoint-every", "soon"])).is_err());
    }

    #[test]
    fn compile_errors_map_to_distinct_exit_codes() {
        use t10_device::iface::DeviceError;
        let cases = [
            (CompileError::infeasible("x"), 3),
            (CompileError::out_of_memory(None, 2, 1, "x"), 4),
            (CompileError::deadline(50, "x"), 5),
            (CompileError::worker_panicked("x"), 6),
            (CompileError::from(DeviceError::fault("link dark")), 7),
            (CompileError::unrecoverable("budget spent"), 9),
            (
                CompileError::verification(vec![t10_verify::Diagnostic::error(
                    t10_verify::RuleId::SramOverflow,
                    "core 0 over budget",
                )]),
                10,
            ),
            (CompileError::internal("x"), 1),
        ];
        let mut seen = std::collections::HashSet::new();
        for (e, want) in cases {
            assert_eq!(compile_exit_code(&e), want, "{e}");
            seen.insert(want);
        }
        // Codes 1, 3..=7, 9 and 10; 2 is reserved for usage, 8 for healed
        // runs.
        assert_eq!(seen.len(), 8);
        let cli: CliError = CompileError::deadline(10, "late").into();
        assert_eq!(cli.code, 5);
        let usage = CliError::usage("bad spec");
        assert_eq!(usage.code, 2);
    }

    #[test]
    fn bad_fault_spec_is_a_usage_error() {
        let err = run(&Cli::Compile {
            target: "resnet".to_string(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: Some("bogus=1".to_string()),
            deadline_ms: None,
            prove: false,
            cache: None,
            jobs: 1,
            trace: TraceArgs::default(),
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("fault spec"));
    }

    #[test]
    fn parses_check_with_flags() {
        let c = Cli::parse(&s(&[
            "check",
            "all",
            "--cores",
            "64",
            "--faults",
            "seed=1,shrink=0@0.5",
            "--json",
            "diag.json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Check {
                target: "all".to_string(),
                batch: 1,
                cores: 64,
                fuse: false,
                faults: Some("seed=1,shrink=0@0.5".to_string()),
                json: Some("diag.json".to_string()),
                prove: false,
                prove_cert: None,
                graph: false,
                symbolic: false,
            }
        );
        // --json is check-only; trace flags don't apply to check.
        assert!(Cli::parse(&s(&["compile", "x", "--json", "d.json"])).is_err());
        assert!(Cli::parse(&s(&["check", "x", "--trace-out", "t.json"])).is_err());
        assert!(Cli::parse(&s(&["check", "x", "--json"])).is_err());
        // --prove applies to check and compile; --prove-cert needs --prove.
        let c = Cli::parse(&s(&["check", "x", "--prove", "--prove-cert", "c.json"])).unwrap();
        assert!(matches!(
            c,
            Cli::Check {
                prove: true,
                ref prove_cert,
                ..
            } if prove_cert.as_deref() == Some("c.json")
        ));
        assert!(matches!(
            Cli::parse(&s(&["compile", "x", "--prove"])).unwrap(),
            Cli::Compile { prove: true, .. }
        ));
        assert!(Cli::parse(&s(&["run", "x", "--prove"])).is_err());
        assert!(Cli::parse(&s(&["check", "x", "--prove-cert", "c.json"])).is_err());
        assert!(Cli::parse(&s(&["check", "x", "--prove-cert"])).is_err());
        // --graph is check-only.
        assert!(matches!(
            Cli::parse(&s(&["check", "x", "--graph"])).unwrap(),
            Cli::Check { graph: true, .. }
        ));
        assert!(Cli::parse(&s(&["compile", "x", "--graph"])).is_err());
        // --symbolic is check-only.
        assert!(matches!(
            Cli::parse(&s(&["check", "x", "--symbolic"])).unwrap(),
            Cli::Check { symbolic: true, .. }
        ));
        assert!(Cli::parse(&s(&["compile", "x", "--symbolic"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--symbolic"])).is_err());
    }

    #[test]
    fn check_command_passes_a_clean_model_and_writes_json() {
        let dir = std::env::temp_dir().join("t10_cli_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("chk.t10");
        std::fs::write(
            &model,
            "model cli-check-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        let json_path = dir.join("diag.json");
        let cert_path = dir.join("certs.json");
        let code = run(&Cli::Check {
            target: model.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: true,
            faults: None,
            json: Some(json_path.to_string_lossy().to_string()),
            prove: true,
            prove_cert: Some(cert_path.to_string_lossy().to_string()),
            // With --prove, --graph and --symbolic together the full rule
            // inventory is exercised, which the rules_checked assertion
            // below pins.
            graph: true,
            symbolic: true,
        })
        .unwrap();
        assert_eq!(code, 0);
        // The clean run still writes the diagnostics file, with an empty
        // violations array — CI archives it unconditionally.
        let doc = std::fs::read_to_string(&json_path).unwrap();
        let v = t10_trace::json::parse(&doc).unwrap();
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true));
        assert_eq!(
            v.get("violations").and_then(|a| a.as_arr()).map(<[_]>::len),
            Some(0)
        );
        let targets = v.get("targets").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(targets.len(), 1);
        let report = targets[0].get("report").unwrap();
        assert_eq!(report.get("ok").and_then(|o| o.as_bool()), Some(true));
        assert_eq!(
            report
                .get("stats")
                .and_then(|s| s.get("rules_checked"))
                .and_then(|r| r.as_f64()),
            Some(t10_verify::RuleId::ALL.len() as f64)
        );
        // And the proof certificates.
        let certs = std::fs::read_to_string(&cert_path).unwrap();
        let c = t10_trace::json::parse(&certs).unwrap();
        let nodes = c
            .get("targets")
            .and_then(|t| t.as_arr())
            .and_then(|t| t.first())
            .and_then(|t| t.get("nodes"))
            .and_then(|n| n.as_arr())
            .unwrap();
        assert!(!nodes.is_empty());
        assert!(nodes.iter().all(|n| {
            n.get("cert")
                .and_then(|c| c.get("status"))
                .and_then(|s| s.as_str())
                .map(|s| s == "proved" || s == "vacuous")
                .unwrap_or(false)
                || n.get("skipped").is_some()
        }));
    }

    #[test]
    fn check_verdict_surfaces_violations_as_exit_10_with_json_on_disk() {
        // A refuted target must exit 10 — and the diagnostics document is
        // rendered (and written by `run`) regardless of the verdict.
        let mut report = t10_verify::Report::new();
        report.push(t10_verify::Diagnostic::error(
            t10_verify::RuleId::ProveCoverageMissing,
            "iteration point [0, 1] is never computed",
        ));
        let outcomes = vec![
            CheckOutcome::checked("clean".to_string(), t10_verify::Report::new(), vec![]),
            CheckOutcome::checked("broken".to_string(), report, vec![]),
        ];
        let err = check_verdict(&outcomes).unwrap_err();
        assert_eq!(err.code, 10);
        assert!(err.message.contains("broken"));
        let doc = check_diagnostics_json(&outcomes);
        let v = t10_trace::json::parse(&doc).unwrap();
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false));
        let viols = v.get("violations").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(viols.len(), 1);
        assert_eq!(viols[0].as_str(), Some("PROVE01"));
        // A compile failure also lands in the document, with its exit code.
        let outcomes = vec![CheckOutcome::failed(
            "wedged".to_string(),
            CliError {
                message: "no feasible plan".to_string(),
                code: 3,
            },
        )];
        let err = check_verdict(&outcomes).unwrap_err();
        assert_eq!(err.code, 3);
        let v = t10_trace::json::parse(&check_diagnostics_json(&outcomes)).unwrap();
        let target = v
            .get("targets")
            .and_then(|t| t.as_arr())
            .and_then(|t| t.first())
            .unwrap();
        assert_eq!(
            target
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn check_command_survives_fault_degraded_chips() {
        let dir = std::env::temp_dir().join("t10_cli_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("chk_faulty.t10");
        std::fs::write(
            &model,
            "model cli-check-fault\ninput x 64 64\nlinear a x 64\noutput a\n",
        )
        .unwrap();
        // The compiler plans against the shrunk capacity, so the artifact it
        // releases still proves out on the degraded chip.
        let code = run(&Cli::Check {
            target: model.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: Some("seed=3,shrink=1@0.5".to_string()),
            json: None,
            prove: false,
            prove_cert: None,
            graph: false,
            // The symbolic pass derives against the same degraded capacity
            // the compiler planned for, so the certificate proves out too.
            symbolic: true,
        })
        .unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn parses_explore() {
        let c = Cli::parse(&s(&["explore", "128", "256", "512"])).unwrap();
        assert_eq!(
            c,
            Cli::Explore {
                m: 128,
                k: 256,
                n: 512,
                cores: 1472
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&s(&[])).is_err());
        assert!(Cli::parse(&s(&["frob"])).is_err());
        assert!(Cli::parse(&s(&["compile"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--batch"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--warp", "9"])).is_err());
        assert!(Cli::parse(&s(&["explore", "a", "2", "3"])).is_err());
    }

    #[test]
    fn resolves_zoo_models_case_insensitively() {
        assert!(resolve_model("resnet", 1).is_ok());
        assert!(resolve_model("NERF", 1).is_ok());
        assert!(resolve_model("nope", 1).is_err());
    }

    #[test]
    fn zoo_command_runs() {
        run(&Cli::Zoo).unwrap();
    }

    #[test]
    fn compile_command_runs_on_small_chip() {
        // A tiny custom model through the full path, with fusion.
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.t10");
        std::fs::write(
            &path,
            "model cli-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        run(&Cli::Compile {
            target: path.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: true,
            faults: None,
            deadline_ms: None,
            prove: true,
            cache: None,
            jobs: 1,
            trace: TraceArgs::default(),
        })
        .unwrap();
    }

    #[test]
    fn compile_command_runs_under_faults_and_deadline() {
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulty.t10");
        std::fs::write(
            &path,
            "model cli-fault-test\ninput x 64 64\nlinear a x 64 relu\noutput a\n",
        )
        .unwrap();
        run(&Cli::Compile {
            target: path.to_string_lossy().to_string(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: Some("seed=3,degrade=0.2@0.5,shrink=1@0.5".to_string()),
            deadline_ms: Some(10_000),
            prove: false,
            cache: None,
            jobs: 1,
            trace: TraceArgs::default(),
        })
        .unwrap();
    }

    fn write_run_model() -> String {
        let dir = std::env::temp_dir().join("t10_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover.t10");
        std::fs::write(
            &path,
            "model cli-run-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        path.to_string_lossy().to_string()
    }

    #[test]
    fn run_command_without_faults_exits_clean() {
        let code = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: None,
            checkpoint_every: Some(2),
            max_retries: None,
            trace: TraceArgs::default(),
        })
        .unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn run_command_heals_a_mid_run_link_loss_and_exits_8() {
        let code = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("down=1@2".to_string()),
            checkpoint_every: Some(1),
            max_retries: Some(3),
            trace: TraceArgs::default(),
        })
        .unwrap();
        assert_eq!(code, 8);
    }

    #[test]
    fn run_command_with_exhausted_budget_is_unrecoverable() {
        let err = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("drop=1@2".to_string()),
            checkpoint_every: Some(1),
            max_retries: Some(0),
            trace: TraceArgs::default(),
        })
        .unwrap_err();
        assert_eq!(err.code, 9);
        assert!(err.message.contains("unrecoverable"));
    }

    #[test]
    fn parses_trace_flags() {
        let c = Cli::parse(&s(&[
            "run",
            "ResNet",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.json",
            "--trace-clock",
            "logical",
            "--trace-cores",
            "8",
        ]))
        .unwrap();
        match c {
            Cli::Run { trace, .. } => {
                assert_eq!(trace.trace_out.as_deref(), Some("t.json"));
                assert_eq!(trace.metrics_out.as_deref(), Some("m.json"));
                assert!(trace.logical_clock);
                assert_eq!(trace.trace_cores, Some(8));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        assert_eq!(
            Cli::parse(&s(&["trace", "t.json"])).unwrap(),
            Cli::Trace {
                file: "t.json".to_string()
            }
        );
        // Trace flags only make sense where a run happens.
        assert!(Cli::parse(&s(&["bench", "x", "--trace-out", "t.json"])).is_err());
        assert!(Cli::parse(&s(&["zoo", "--metrics-out", "m.json"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--trace-clock", "sundial"])).is_err());
        assert!(Cli::parse(&s(&["run", "x", "--trace-cores"])).is_err());
    }

    #[test]
    fn run_with_trace_out_writes_a_loadable_deterministic_trace() {
        let dir = std::env::temp_dir().join("t10_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = write_run_model();
        let run_once = |tag: &str| {
            let trace_path = dir.join(format!("t_{tag}.json"));
            let metrics_path = dir.join(format!("m_{tag}.json"));
            let code = run(&Cli::Run {
                target: model.clone(),
                batch: 1,
                cores: 16,
                fuse: false,
                faults: None,
                fault_timeline: Some("seed=5,drop=1@2".to_string()),
                checkpoint_every: Some(1),
                max_retries: Some(3),
                trace: TraceArgs {
                    trace_out: Some(trace_path.to_string_lossy().to_string()),
                    metrics_out: Some(metrics_path.to_string_lossy().to_string()),
                    logical_clock: true,
                    trace_cores: Some(4),
                },
            })
            .unwrap();
            assert_eq!(code, 8, "the drop forces one healed retry");
            (
                std::fs::read_to_string(&trace_path).unwrap(),
                std::fs::read_to_string(&metrics_path).unwrap(),
                trace_path,
            )
        };

        let (trace_json, metrics_json, trace_path) = run_once("a");

        // The trace file parses and carries per-core sim spans, compiler
        // search spans, recovery instants, and accuracy samples.
        let events = parse_chrome_trace(&trace_json).unwrap();
        let has = |name: &str| events.iter().any(|e| e.name == name);
        // (`idle` spans appear only when cores are imbalanced; this uniform
        // SPMD model keeps every core busy, so compute + shift is the check.)
        assert!(has("compute") && has("shift"), "core spans");
        assert!(
            events.iter().any(|e| e.name == "process_name"
                && e.pid == t10_trace::PID_SIM
                && e.arg_str("name") == Some("t10 chip (sim time)")),
            "sim track metadata"
        );
        assert!(
            events.iter().any(|e| e.name.starts_with("search:")),
            "compiler spans"
        );
        assert!(has("retry") && has("rollback"), "recovery instants");
        assert!(
            events.iter().any(|e| e.cat == "accuracy"),
            "accuracy samples"
        );
        // The per-core track cap is respected (tid < 4 or the chip track).
        assert!(events
            .iter()
            .filter(|e| e.pid == t10_trace::PID_SIM)
            .all(|e| e.tid < 4 || e.tid == t10_trace::CHIP_TID));

        // The metrics file parses and records the run + accuracy aggregate.
        let m = Metrics::parse(&metrics_json).unwrap();
        assert!(m.get_f64("sim.total_time_us").unwrap() > 0.0);
        assert!(m.get_f64("recovery.transient_retries").unwrap() >= 1.0);
        assert!(m.get_f64("accuracy.operators").unwrap() >= 1.0);

        // `t10 trace` renders the file.
        assert_eq!(
            run(&Cli::Trace {
                file: trace_path.to_string_lossy().to_string()
            })
            .unwrap(),
            0
        );

        // Same seed + logical clock => byte-identical outputs.
        let (trace_b, metrics_b, _) = run_once("b");
        assert_eq!(trace_json, trace_b, "trace files are byte-identical");
        assert_eq!(metrics_json, metrics_b, "metrics files are byte-identical");
    }

    #[test]
    fn trace_command_rejects_garbage() {
        let dir = std::env::temp_dir().join("t10_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{\"traceEvents\": 42}").unwrap();
        let err = run(&Cli::Trace {
            file: path.to_string_lossy().to_string(),
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn bad_timeline_spec_is_a_usage_error() {
        let err = run(&Cli::Run {
            target: write_run_model(),
            batch: 1,
            cores: 16,
            fuse: false,
            faults: None,
            fault_timeline: Some("frob=1@2".to_string()),
            checkpoint_every: None,
            max_retries: None,
            trace: TraceArgs::default(),
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("fault timeline"));
    }

    #[test]
    fn parses_chaos_with_flags() {
        let c = Cli::parse(&s(&[
            "chaos",
            "--campaign-seed",
            "42",
            "--count",
            "50",
            "--profile",
            "barrier-storm",
            "--shrink",
            "--report-json",
            "r.json",
            "--bench-json",
            "b.json",
            "--corpus",
            "corpus/",
            "--max-retries",
            "6",
            "--checkpoint-every",
            "2",
            "--mutate",
            "uncap-retries",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Chaos {
                campaign_seed: 42,
                count: 50,
                profile: "barrier-storm".to_string(),
                cores: 8,
                max_retries: Some(6),
                checkpoint_every: Some(2),
                report_json: Some("r.json".to_string()),
                bench_json: Some("b.json".to_string()),
                corpus: Some("corpus/".to_string()),
                shrink: true,
                mutate: Some("uncap-retries".to_string()),
                trace: TraceArgs::default(),
            }
        );
        // Defaults: seed 0, 20 cases, mixed profile, a small 8-core chip.
        match Cli::parse(&s(&["chaos"])).unwrap() {
            Cli::Chaos {
                campaign_seed,
                count,
                profile,
                cores,
                shrink,
                ..
            } => {
                assert_eq!(campaign_seed, 0);
                assert_eq!(count, 20);
                assert_eq!(profile, "mixed");
                assert_eq!(cores, 8);
                assert!(!shrink);
            }
            other => panic!("unexpected parse {other:?}"),
        }
        // Campaign flags are rejected elsewhere, not silently dropped.
        assert!(Cli::parse(&s(&["run", "x", "--campaign-seed", "3"])).is_err());
        assert!(Cli::parse(&s(&["bench", "x", "--count", "5"])).is_err());
        assert!(Cli::parse(&s(&["zoo", "--shrink"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--report-json", "r.json"])).is_err());
        // Chaos takes no positional target, and only a trace-out sink.
        assert!(Cli::parse(&s(&["chaos", "ResNet"])).is_err());
        assert!(Cli::parse(&s(&["chaos", "--metrics-out", "m.json"])).is_err());
        assert!(Cli::parse(&s(&["chaos", "--trace-cores", "4"])).is_err());
        assert!(Cli::parse(&s(&["chaos", "--count", "many"])).is_err());
    }

    struct ChaosArgs {
        count: usize,
        profile: &'static str,
        report_json: Option<String>,
        bench_json: Option<String>,
        corpus: Option<String>,
        shrink: bool,
        mutate: Option<&'static str>,
    }

    impl ChaosArgs {
        fn new(count: usize) -> Self {
            Self {
                count,
                profile: "mixed",
                report_json: None,
                bench_json: None,
                corpus: None,
                shrink: false,
                mutate: None,
            }
        }

        fn cli(self) -> Cli {
            Cli::Chaos {
                campaign_seed: 7,
                count: self.count,
                profile: self.profile.to_string(),
                cores: 8,
                max_retries: None,
                checkpoint_every: None,
                report_json: self.report_json,
                bench_json: self.bench_json,
                corpus: self.corpus,
                shrink: self.shrink,
                mutate: self.mutate.map(str::to_string),
                trace: TraceArgs::default(),
            }
        }
    }

    #[test]
    fn chaos_command_runs_a_clean_campaign_and_writes_reports() {
        let dir = std::env::temp_dir().join("t10_cli_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("campaign.json");
        let bench_path = dir.join("bench.json");
        let corpus_dir = dir.join("corpus");
        std::fs::create_dir_all(&corpus_dir).unwrap();
        std::fs::write(
            corpus_dir.join("seed.timeline"),
            "# pinned reproducer corpus (test)\nseed=7,drop=2@1\n",
        )
        .unwrap();
        let mut args = ChaosArgs::new(4);
        args.report_json = Some(report_path.to_string_lossy().to_string());
        args.bench_json = Some(bench_path.to_string_lossy().to_string());
        args.corpus = Some(corpus_dir.to_string_lossy().to_string());
        let code = run(&args.cli()).unwrap();
        assert_eq!(code, 0, "a healthy stack has no oracle violations");
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"schema\": \"t10.chaos.campaign.v1\""));
        assert!(report.contains("\"violations\": 0"));
        let bench = std::fs::read_to_string(&bench_path).unwrap();
        assert!(bench.contains("\"schema\": \"t10.bench.recovery.v1\""));
    }

    #[test]
    fn chaos_command_with_buggy_mutation_exits_11() {
        // `migration-cross` always schedules a persistent fault, so the
        // corrupted salvage is guaranteed to reach the recompiled unit.
        let mut args = ChaosArgs::new(2);
        args.profile = "migration-cross";
        args.shrink = true;
        args.mutate = Some("corrupt-salvage");
        let err = run(&args.cli()).unwrap_err();
        assert_eq!(err.code, 11);
        assert!(err.message.contains("oracle violation"));
        // An unknown mutation name is a usage error, not a campaign run.
        let mut bad = ChaosArgs::new(1);
        bad.mutate = Some("frobnicate");
        assert_eq!(run(&bad.cli()).unwrap_err().code, 2);
        // So is an unknown profile.
        let mut bad = ChaosArgs::new(1);
        bad.profile = "bogus";
        assert_eq!(run(&bad.cli()).unwrap_err().code, 2);
    }

    #[test]
    fn chaos_cache_fault_profile_runs_and_rejects_timeline_flags() {
        let dir = std::env::temp_dir().join("t10_cli_chaos_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("cache_campaign.json");
        let mut args = ChaosArgs::new(4);
        args.profile = "cache-fault";
        args.report_json = Some(report_path.to_string_lossy().to_string());
        let code = run(&args.cli()).unwrap();
        assert_eq!(code, 0, "a healthy store survives every injected fault");
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"schema\": \"t10.chaos.cache.v1\""));
        assert!(report.contains("\"violations\": 0"));
        // Timeline-only machinery does not combine with the store campaign.
        let mut bad = ChaosArgs::new(1);
        bad.profile = "cache-fault";
        bad.shrink = true;
        assert_eq!(run(&bad.cli()).unwrap_err().code, 2);
        let mut bad = ChaosArgs::new(1);
        bad.profile = "cache-fault";
        bad.mutate = Some("corrupt-salvage");
        assert_eq!(run(&bad.cli()).unwrap_err().code, 2);
    }

    #[test]
    fn parses_serve_and_compilebench_with_flags() {
        let c = Cli::parse(&s(&[
            "serve",
            "--requests",
            "reqs.txt",
            "--cache",
            "plans/",
            "--workers",
            "3",
            "--jobs",
            "2",
            "--queue",
            "5",
            "--cores",
            "64",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::Serve {
                requests: Some("reqs.txt".to_string()),
                cache: Some("plans/".to_string()),
                workers: 3,
                jobs: 2,
                queue: 5,
                cores: 64,
                deadline_ms: Some(250),
                metrics_addr: None,
                metrics_flush: None,
                metrics_logical: false,
                metrics_linger_ms: 0,
            }
        );
        // Defaults: stdin requests, no cache, 2 workers, queue 16.
        assert_eq!(
            Cli::parse(&s(&["serve"])).unwrap(),
            Cli::Serve {
                requests: None,
                cache: None,
                workers: 2,
                jobs: 1,
                queue: 16,
                cores: 1472,
                deadline_ms: None,
                metrics_addr: None,
                metrics_flush: None,
                metrics_logical: false,
                metrics_linger_ms: 0,
            }
        );
        // Telemetry flags parse on serve and are rejected elsewhere.
        match Cli::parse(&s(&[
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-flush",
            "snap.json",
            "--metrics-clock",
            "logical",
            "--metrics-linger-ms",
            "1500",
        ]))
        .unwrap()
        {
            Cli::Serve {
                metrics_addr,
                metrics_flush,
                metrics_logical,
                metrics_linger_ms,
                ..
            } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(metrics_flush.as_deref(), Some("snap.json"));
                assert!(metrics_logical);
                assert_eq!(metrics_linger_ms, 1500);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(Cli::parse(&s(&["serve", "--metrics-clock", "sundial"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--metrics-addr", "127.0.0.1:0"])).is_err());
        assert!(Cli::parse(&s(&["chaos", "--metrics-clock", "wall"])).is_err());
        // stats / bench-diff subcommands and their flag gating.
        assert_eq!(
            Cli::parse(&s(&[
                "stats",
                "snap.json",
                "--slo-availability",
                "99.9",
                "--slo-latency-ms",
                "50",
                "--slo-latency-pct",
                "95",
            ]))
            .unwrap(),
            Cli::Stats {
                file: "snap.json".to_string(),
                slo_availability: Some(99.9),
                slo_latency_ms: Some(50),
                slo_latency_pct: Some(95.0),
            }
        );
        assert_eq!(
            Cli::parse(&s(&["bench-diff", "base.json", "cur.json"])).unwrap(),
            Cli::BenchDiff {
                baseline: "base.json".to_string(),
                current: "cur.json".to_string(),
                threshold_pct: 25.0,
            }
        );
        assert_eq!(
            Cli::parse(&s(&[
                "bench-diff",
                "base.json",
                "cur.json",
                "--threshold-pct",
                "5",
            ]))
            .unwrap(),
            Cli::BenchDiff {
                baseline: "base.json".to_string(),
                current: "cur.json".to_string(),
                threshold_pct: 5.0,
            }
        );
        assert!(Cli::parse(&s(&["stats"])).is_err());
        assert!(Cli::parse(&s(&["bench-diff", "only-one.json"])).is_err());
        assert!(Cli::parse(&s(&["serve", "--slo-availability", "99"])).is_err());
        assert!(Cli::parse(&s(&["stats", "snap.json", "--threshold-pct", "5"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--threshold-pct", "5"])).is_err());
        let c = Cli::parse(&s(&[
            "compilebench",
            "resnet",
            "bert",
            "--out",
            "b.json",
            "--jobs",
            "4",
            "--cache",
            "plans/",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Cli::CompileBench {
                targets: vec!["resnet".to_string(), "bert".to_string()],
                out: Some("b.json".to_string()),
                cores: 1472,
                jobs: 4,
                cache: Some("plans/".to_string()),
                cross_shape: false,
            }
        );
        // --cross-shape is compilebench-only.
        assert!(matches!(
            Cli::parse(&s(&["compilebench", "--cross-shape"])).unwrap(),
            Cli::CompileBench {
                cross_shape: true,
                ..
            }
        ));
        assert!(Cli::parse(&s(&["compile", "x", "--cross-shape"])).is_err());
        // Service/bench flags are rejected elsewhere, not silently dropped.
        assert!(Cli::parse(&s(&["run", "x", "--cache", "plans/"])).is_err());
        assert!(Cli::parse(&s(&["check", "x", "--jobs", "2"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--workers", "2"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--queue", "4"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--requests", "r.txt"])).is_err());
        assert!(Cli::parse(&s(&["compile", "x", "--out", "b.json"])).is_err());
        assert!(Cli::parse(&s(&["serve", "x"])).is_err());
        assert!(Cli::parse(&s(&["serve", "--workers"])).is_err());
        assert!(Cli::parse(&s(&["serve", "--queue", "many"])).is_err());
        // --deadline-ms now also applies to serve, still not to run.
        assert!(Cli::parse(&s(&["run", "x", "--deadline-ms", "50"])).is_err());
    }

    #[test]
    fn unreadable_files_exit_with_the_file_io_code() {
        // A missing .t10 model: exit 12, not a generic failure.
        let err = resolve_model("/nonexistent/nowhere.t10", 1).unwrap_err();
        assert_eq!(err.code, 12);
        // A missing trace file too.
        let err = run(&Cli::Trace {
            file: "/nonexistent/trace.json".to_string(),
        })
        .unwrap_err();
        assert_eq!(err.code, 12);
        // An unknown model name stays a usage error.
        assert_eq!(resolve_model("nope", 1).unwrap_err().code, 2);
        // An unwritable output path: exit 12.
        let err = write_file("/nonexistent/dir/out.json", "x").unwrap_err();
        assert_eq!(err.code, 12);
    }

    fn fresh_cli_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("t10_cli_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn compile_with_cache_warms_across_invocations() {
        let dir = fresh_cli_dir("compile_cache");
        let model = dir.join("cached.t10");
        std::fs::write(
            &model,
            "model cli-cache-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        let cache_dir = dir.join("plans");
        let invoke = || {
            run(&Cli::Compile {
                target: model.to_string_lossy().to_string(),
                batch: 1,
                cores: 16,
                fuse: false,
                faults: None,
                deadline_ms: None,
                prove: false,
                cache: Some(cache_dir.to_string_lossy().to_string()),
                jobs: 2,
                trace: TraceArgs::default(),
            })
            .unwrap()
        };
        assert_eq!(invoke(), 0);
        let entries = std::fs::read_dir(&cache_dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "plan"))
            .count();
        assert!(entries > 0, "cold compile populated the cache");
        // Second invocation (fresh store instance) hits the same entries.
        assert_eq!(invoke(), 0);
    }

    #[test]
    fn serve_answers_every_request_and_isolates_failures() {
        let dir = fresh_cli_dir("serve");
        let model = dir.join("served.t10");
        std::fs::write(
            &model,
            "model cli-serve-test\ninput x 64 64\nlinear a x 64 relu\noutput a\n",
        )
        .unwrap();
        let cache_dir = dir.join("plans");
        let input = format!(
            "# comment lines and blanks are skipped\n\n\
             compile {m} --cores 16\n\
             compile {m} --cores 16 --faults seed=3,shrink=1@0.5\n\
             compile /nonexistent/missing.t10 --cores 16\n\
             compile {m} --cores 16 --warp 9\n\
             frobnicate {m}\n\
             compile {m} --cores 16\n",
            m = model.to_string_lossy()
        );
        // One worker keeps processing strictly in request order: with two,
        // the repeat of request 0 could start before request 0 finished
        // recording its entries, and the disk-hit assertion would race.
        let o = serve::ServeOptions {
            requests: None,
            cache: Some(cache_dir.to_string_lossy().to_string()),
            workers: 1,
            jobs: 1,
            queue: 16,
            cores: 16,
            deadline_ms: Some(60_000),
            metrics_addr: None,
            metrics_flush: None,
            metrics_logical: false,
            metrics_linger_ms: 0,
        };
        let responses =
            serve::serve_requests(&input, &o, &t10_metrics::Registry::disabled()).unwrap();
        assert_eq!(responses.len(), 6);
        // Responses come back in request order, every id answered.
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id(), i);
        }
        // Healthy compiles succeed; the bad path is exit 12; the bad flag
        // and bad verb are usage errors — and none of them killed the rest.
        assert!(matches!(&responses[0], serve::Response::Ok { .. }));
        assert!(matches!(&responses[1], serve::Response::Ok { .. }));
        assert!(
            matches!(&responses[2], serve::Response::Error { code: 12, .. }),
            "{:?}",
            responses[2]
        );
        assert!(matches!(
            &responses[3],
            serve::Response::Error { code: 2, .. }
        ));
        assert!(matches!(
            &responses[4],
            serve::Response::Error { code: 2, .. }
        ));
        assert!(matches!(&responses[5], serve::Response::Ok { .. }));
        // The repeat of request 0 was served from the persistent cache.
        match &responses[5] {
            serve::Response::Ok { disk_hits, .. } => assert!(*disk_hits > 0),
            other => panic!("unexpected {other:?}"),
        }
        // The faulted compile never reused healthy entries.
        match &responses[1] {
            serve::Response::Ok {
                disk_hits,
                recorded,
                ..
            } => {
                assert_eq!(*disk_hits, 0);
                assert!(*recorded > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_overflow_with_backoff_hints_under_a_tiny_queue() {
        let dir = fresh_cli_dir("serve_reject");
        let model = dir.join("storm.t10");
        std::fs::write(
            &model,
            "model cli-storm-test\ninput x 64 64\nlinear a x 64\noutput a\n",
        )
        .unwrap();
        // One worker, one queue slot, a burst of requests: admission control
        // must reject some (how many depends on timing) and every rejection
        // must carry a positive retry hint. Nothing hangs, nothing is lost.
        let input = format!("compile {m} --cores 16\n", m = model.to_string_lossy()).repeat(8);
        let o = serve::ServeOptions {
            requests: None,
            cache: None,
            workers: 1,
            jobs: 1,
            queue: 1,
            cores: 16,
            deadline_ms: None,
            metrics_addr: None,
            metrics_flush: None,
            metrics_logical: false,
            metrics_linger_ms: 0,
        };
        let responses =
            serve::serve_requests(&input, &o, &t10_metrics::Registry::disabled()).unwrap();
        assert_eq!(responses.len(), 8);
        let (mut ok, mut rejected) = (0usize, 0usize);
        for r in &responses {
            match r {
                serve::Response::Ok { .. } => ok += 1,
                serve::Response::Rejected { retry_after_ms, .. } => {
                    rejected += 1;
                    assert!(*retry_after_ms > 0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ok + rejected, 8);
        assert!(ok >= 1, "at least the first admitted request compiles");
    }

    #[test]
    fn compilebench_writes_the_schema_document() {
        let dir = fresh_cli_dir("compilebench");
        let model = dir.join("bench.t10");
        std::fs::write(
            &model,
            "model cli-bench-test\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n",
        )
        .unwrap();
        let out = dir.join("BENCH_compile.json");
        let code = run(&Cli::CompileBench {
            targets: vec![model.to_string_lossy().to_string()],
            out: Some(out.to_string_lossy().to_string()),
            cores: 16,
            jobs: 2,
            cache: None,
            cross_shape: false,
        })
        .unwrap();
        assert_eq!(code, 0);
        let doc = std::fs::read_to_string(&out).unwrap();
        let v = t10_trace::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|x| x.as_str()),
            Some("t10.bench.compile.v1")
        );
        // Without --cross-shape the optional metrics stay absent, so
        // committed baselines that predate them keep diffing cleanly.
        assert!(v.get("symbolic_check_ms").is_none());
        assert!(v.get("cross_shape_hit_rate").is_none());
        assert_eq!(v.get("models").and_then(|x| x.as_f64()), Some(1.0));
        assert!(v.get("cold_ms").and_then(|c| c.get("p50")).is_some());
        assert!(v.get("warm_ms").and_then(|c| c.get("p50")).is_some());
        // Warm compiles resolve every recorded frontier from disk.
        assert_eq!(v.get("warm_hit_rate").and_then(|x| x.as_f64()), Some(1.0));
        let per_model = v.get("per_model").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(per_model.len(), 1);
        assert!(
            per_model[0]
                .get("disk_hits")
                .and_then(|x| x.as_f64())
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn compilebench_cross_shape_warm_starts_from_the_family_cache() {
        // Batch 1 records family certificates; batch 4 misses every exact
        // key but sits inside the widened validity regions, so the second
        // compile warm-starts from the family entries — strictly cheaper
        // than the cold batch-4 compile it is measured against.
        let dir = fresh_cli_dir("compilebench_xshape");
        let out = dir.join("BENCH_compile.json");
        let code = run(&Cli::CompileBench {
            targets: vec!["resnet".to_string()],
            out: Some(out.to_string_lossy().to_string()),
            cores: 64,
            jobs: 1,
            cache: None,
            cross_shape: true,
        })
        .unwrap();
        assert_eq!(code, 0);
        let doc = std::fs::read_to_string(&out).unwrap();
        let v = t10_trace::json::parse(&doc).unwrap();
        assert!(v
            .get("symbolic_check_ms")
            .and_then(|c| c.get("p50"))
            .is_some());
        let rate = v
            .get("cross_shape_hit_rate")
            .and_then(|x| x.as_f64())
            .unwrap();
        assert!(rate > 0.0, "no family hits at batch 4 (rate {rate})");
        let xs = v.get("cross_shape").unwrap();
        let cold = xs.get("cold_ms").and_then(|x| x.as_f64()).unwrap();
        let warm = xs.get("family_warm_ms").and_then(|x| x.as_f64()).unwrap();
        assert!(
            warm < cold,
            "family warm start ({warm:.1} ms) not cheaper than cold ({cold:.1} ms)"
        );
    }

    #[test]
    fn symbolic_instantiation_matches_the_concrete_checker_across_the_zoo() {
        // The differential guarantee behind `--symbolic`: instantiating a
        // family certificate at a concrete shape folds the concrete
        // checker's verdict through *unchanged* — the non-SYM diagnostics
        // are byte-identical to what the plain checker emits, and SYM
        // escalations are only ever added on top. Swept over every zoo
        // model at pinned shapes (each at a core count where it is
        // feasible), both on the healthy capacity (clean reports) and on
        // a starved one (non-empty reports), so the pass-through property
        // is exercised on real refutations, not just on silence.
        use t10_core::compiler::{CompileOptions, Compiler};
        use t10_core::search::SearchConfig;
        use t10_verify::RuleFamily;

        let sweep: [(&str, usize, &[usize]); 4] = [
            ("resnet", 64, &[1, 2, 4]),
            ("nerf", 1472, &[1, 4]),
            ("vit", 1472, &[1]),
            ("bert", 1472, &[1]),
        ];
        let concrete_lines = |r: &t10_verify::Report| {
            r.diagnostics
                .iter()
                .filter(|d| d.rule.family() != RuleFamily::Symbolic)
                .map(t10_verify::Diagnostic::render)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let mut families = 0usize;
        let mut refutations = 0usize;
        for (target, cores, batches) in sweep {
            for &batch in batches {
                let g = resolve_model(target, batch).unwrap();
                let spec = t10_device::ChipSpec::ipu_with_cores(cores);
                let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
                let compiled = compiler
                    .compile_graph_with(&g, &CompileOptions::default())
                    .unwrap();
                let capacity = (spec.sram_per_core - spec.shift_buffer) as u64;
                for (i, node) in g.nodes().iter().enumerate() {
                    let Some(pareto) = compiled.node_pareto.get(i) else {
                        continue;
                    };
                    let configs: Vec<_> = pareto
                        .plans()
                        .iter()
                        .map(|sp| sp.plan.config.clone())
                        .collect();
                    let (dtypes, out_dtype) = t10_core::compiler::node_dtypes(&g, &node.op);
                    let Ok(cert) = t10_core::symbolic::derive_cert(
                        &node.op, &dtypes, out_dtype, &configs, capacity,
                    ) else {
                        continue;
                    };
                    let Some(active) = compiled
                        .reconciled
                        .choices
                        .get(i)
                        .and_then(|c| pareto.plans().get(c.active))
                    else {
                        continue;
                    };
                    families += 1;
                    // Healthy capacity: the concrete checker is clean and
                    // the fold must add nothing but (absent) SYM findings.
                    for cap in [capacity as usize, 1024] {
                        let concrete =
                            t10_core::verify_plan(&node.op, &active.plan, cap, spec.num_cores);
                        if !concrete.is_ok() {
                            refutations += 1;
                        }
                        let folded =
                            t10_core::symbolic::fold_concrete_report(&cert, concrete.clone());
                        assert_eq!(
                            concrete_lines(&folded),
                            concrete_lines(&concrete),
                            "{target} b{batch} node {i}: fold changed concrete diagnostics"
                        );
                    }
                }
            }
        }
        assert!(families > 50, "sweep too thin: {families} certificate(s)");
        assert!(
            refutations > 0,
            "starved capacity never refuted: the pass-through case is vacuous"
        );
    }
}
