//! `t10 bench-diff` — a bench-trajectory regression gate.
//!
//! Compares a fresh benchmark document against a committed baseline and
//! exits 14 when any tracked metric regressed beyond the threshold. Two
//! schemas are understood, dispatched on the `schema` field:
//!
//! * `t10.bench.compile.v1` (`t10 compilebench --json`) — cold/warm
//!   latency percentiles and parallel-search time are higher-is-worse;
//!   `warm_hit_rate` and parallel `speedup` are lower-is-worse;
//! * `t10.bench.recovery.v1` (`t10 chaos --bench-json`) — recovery
//!   overhead and checkpoint-cost percentages plus recompile-latency
//!   percentiles, all higher-is-worse.
//!
//! A metric present in the baseline but absent from the current run (or
//! vice versa) is reported but never fails the gate: schema growth across
//! stacked PRs must not brick CI. Only a *tracked, comparable* metric
//! moving the wrong way by more than `--threshold-pct` does.

use t10_trace::json::{self, Json};

use crate::CliError;

/// `t10 bench-diff` options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiffOptions {
    /// Baseline document path (the committed BENCH_*.json).
    pub baseline: String,
    /// Current document path (the freshly produced run).
    pub current: String,
    /// Allowed relative movement in the bad direction, percent.
    pub threshold_pct: f64,
}

/// Direction in which a metric can regress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Latency / overhead: regression when current exceeds baseline.
    HigherIsWorse,
    /// Hit rates / speedups: regression when current falls below baseline.
    LowerIsWorse,
}

/// One tracked metric: a dotted path into the JSON document.
struct Tracked {
    path: &'static str,
    direction: Direction,
}

const fn up(path: &'static str) -> Tracked {
    Tracked {
        path,
        direction: Direction::HigherIsWorse,
    }
}

const fn down(path: &'static str) -> Tracked {
    Tracked {
        path,
        direction: Direction::LowerIsWorse,
    }
}

fn tracked_metrics(schema: &str) -> Option<Vec<Tracked>> {
    match schema {
        "t10.bench.compile.v1" => Some(vec![
            up("cold_ms.p50"),
            up("cold_ms.p90"),
            up("warm_ms.p50"),
            up("warm_ms.p90"),
            up("graph_check_ms.p50"),
            up("graph_check_ms.p90"),
            up("parallel_search.parallel_ms"),
            up("symbolic_check_ms.p50"),
            up("symbolic_check_ms.p90"),
            down("warm_hit_rate"),
            down("cross_shape_hit_rate"),
            down("parallel_search.speedup"),
        ]),
        "t10.bench.recovery.v1" => Some(vec![
            up("recovery_overhead_pct.p50"),
            up("recovery_overhead_pct.p90"),
            up("recovery_overhead_pct.p99"),
            up("checkpoint_cost_pct"),
            up("compile_latency_us.p50"),
            up("compile_latency_us.p99"),
        ]),
        _ => None,
    }
}

fn lookup(doc: &Json, path: &str) -> Option<f64> {
    let mut node = doc;
    for part in path.split('.') {
        node = node.get(part)?;
    }
    node.as_f64()
}

/// Outcome of comparing one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Dotted path of the metric.
    pub path: String,
    /// Baseline value, when present.
    pub baseline: Option<f64>,
    /// Current value, when present.
    pub current: Option<f64>,
    /// Relative movement in the bad direction, percent (positive = worse).
    pub delta_pct: Option<f64>,
    /// Whether this row fails the gate.
    pub regressed: bool,
}

/// Result of a bench-diff comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// The shared schema of the two documents.
    pub schema: String,
    /// One row per tracked metric.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// True when any tracked metric regressed beyond the threshold.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

/// Compares two parsed bench documents. Errors when the schemas differ,
/// are missing, or are not a known bench schema.
pub fn compare(baseline: &Json, current: &Json, threshold_pct: f64) -> Result<DiffReport, String> {
    let base_schema = baseline
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline document has no schema field")?;
    let cur_schema = current
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("current document has no schema field")?;
    if base_schema != cur_schema {
        return Err(format!(
            "schema mismatch: baseline {base_schema}, current {cur_schema}"
        ));
    }
    let tracked = tracked_metrics(base_schema)
        .ok_or_else(|| format!("unknown bench schema: {base_schema}"))?;

    let rows = tracked
        .iter()
        .map(|t| {
            let base = lookup(baseline, t.path);
            let cur = lookup(current, t.path);
            let (delta_pct, regressed) = match (base, cur) {
                (Some(b), Some(c)) => {
                    // Movement in the bad direction relative to baseline.
                    // A zero baseline regresses only if current is worse at
                    // all (any finite threshold can't scale from zero).
                    let bad = match t.direction {
                        Direction::HigherIsWorse => c - b,
                        Direction::LowerIsWorse => b - c,
                    };
                    let delta = if b.abs() > f64::EPSILON {
                        bad / b.abs() * 100.0
                    } else if bad > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    (Some(delta), delta > threshold_pct)
                }
                _ => (None, false),
            };
            DiffRow {
                path: t.path.to_string(),
                baseline: base,
                current: cur,
                delta_pct,
                regressed,
            }
        })
        .collect();
    Ok(DiffReport {
        schema: base_schema.to_string(),
        rows,
    })
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), json::fmt_f64)
}

/// The `t10 bench-diff` command. Exit 0 when within threshold, 14 on
/// regression.
pub fn bench_diff(o: &BenchDiffOptions) -> Result<i32, CliError> {
    let base_src = crate::read_file(&o.baseline)?;
    let cur_src = crate::read_file(&o.current)?;
    let base =
        json::parse(&base_src).map_err(|e| CliError::from(format!("{}: {e}", o.baseline)))?;
    let cur = json::parse(&cur_src).map_err(|e| CliError::from(format!("{}: {e}", o.current)))?;
    let report = compare(&base, &cur, o.threshold_pct).map_err(CliError::from)?;

    println!(
        "bench-diff: {} vs {} ({}, threshold {}%)",
        o.baseline, o.current, report.schema, o.threshold_pct
    );
    let mut t = t10_bench::Table::new(vec!["metric", "baseline", "current", "delta", "status"]);
    for row in &report.rows {
        t.row(vec![
            row.path.clone(),
            fmt_opt(row.baseline),
            fmt_opt(row.current),
            row.delta_pct.map_or_else(
                || "-".to_string(),
                |d| {
                    if d.is_infinite() {
                        "+inf%".to_string()
                    } else {
                        format!("{d:+.1}%")
                    }
                },
            ),
            match (
                row.regressed,
                row.baseline.is_some() && row.current.is_some(),
            ) {
                (true, _) => "REGRESSED".to_string(),
                (false, true) => "ok".to_string(),
                (false, false) => "skipped".to_string(),
            },
        ]);
    }
    t.print();

    if report.regressed() {
        println!(
            "bench-diff: regression beyond {}% threshold",
            o.threshold_pct
        );
        Ok(14)
    } else {
        println!("bench-diff: within threshold");
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMPILE_BASE: &str = r#"{
        "schema": "t10.bench.compile.v1",
        "cold_ms": {"p50": 100.0, "p90": 200.0},
        "warm_ms": {"p50": 10.0, "p90": 20.0},
        "graph_check_ms": {"p50": 1.0, "p90": 2.0},
        "symbolic_check_ms": {"p50": 0.5, "p90": 0.8},
        "warm_hit_rate": 1.0,
        "cross_shape_hit_rate": 1.0,
        "parallel_search": {"parallel_ms": 150.0, "speedup": 2.0}
    }"#;

    fn parse(src: &str) -> Json {
        json::parse(src).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let doc = parse(COMPILE_BASE);
        let report = compare(&doc, &doc, 25.0).unwrap();
        assert!(!report.regressed());
        assert!(report.rows.iter().all(|r| r.delta_pct == Some(0.0)));
    }

    #[test]
    fn higher_latency_regresses_and_improvement_passes() {
        let base = parse(COMPILE_BASE);
        let slow = parse(&COMPILE_BASE.replace("\"p50\": 100.0", "\"p50\": 140.0"));
        let report = compare(&base, &slow, 25.0).unwrap();
        assert!(report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "cold_ms.p50")
            .unwrap();
        assert!((row.delta_pct.unwrap() - 40.0).abs() < 1e-9);

        // The reverse direction is an improvement, not a regression.
        let report = compare(&slow, &base, 25.0).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn lower_hit_rate_regresses() {
        let base = parse(COMPILE_BASE);
        let worse =
            parse(&COMPILE_BASE.replace("\"warm_hit_rate\": 1.0", "\"warm_hit_rate\": 0.5"));
        let report = compare(&base, &worse, 25.0).unwrap();
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "warm_hit_rate")
            .unwrap();
        assert!(row.regressed);
        // A higher hit rate than baseline never regresses.
        let report = compare(&worse, &base, 25.0).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn threshold_is_respected() {
        let base = parse(COMPILE_BASE);
        let slow = parse(&COMPILE_BASE.replace("\"p50\": 100.0", "\"p50\": 120.0"));
        assert!(compare(&base, &slow, 25.0)
            .unwrap()
            .rows
            .iter()
            .all(|r| !r.regressed));
        assert!(compare(&base, &slow, 10.0).unwrap().regressed());
    }

    #[test]
    fn graph_check_latency_is_tracked() {
        // The whole-graph verification pass is pure analysis; a latency
        // cliff there is a real regression the gate must catch.
        let base = parse(COMPILE_BASE);
        let slow = parse(&COMPILE_BASE.replace("\"p50\": 1.0", "\"p50\": 2.0"));
        let report = compare(&base, &slow, 25.0).unwrap();
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "graph_check_ms.p50")
            .unwrap();
        assert!(row.regressed);
        assert!((row.delta_pct.unwrap() - 100.0).abs() < 1e-9);
        // Absent in an old baseline: skipped, never failed.
        let old =
            parse(r#"{"schema": "t10.bench.compile.v1", "cold_ms": {"p50": 100.0, "p90": 200.0}}"#);
        assert!(!compare(&old, &slow, 25.0).unwrap().regressed());
    }

    #[test]
    fn symbolic_metrics_are_tracked_and_optional() {
        // A symbolic-check latency cliff or a cross-shape hit-rate drop is
        // a regression the gate must catch…
        let base = parse(COMPILE_BASE);
        let slow = parse(&COMPILE_BASE.replace("\"p50\": 0.5", "\"p50\": 1.5"));
        let report = compare(&base, &slow, 25.0).unwrap();
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "symbolic_check_ms.p50")
            .unwrap();
        assert!(row.regressed);

        let worse = parse(&COMPILE_BASE.replace(
            "\"cross_shape_hit_rate\": 1.0",
            "\"cross_shape_hit_rate\": 0.3",
        ));
        let report = compare(&base, &worse, 25.0).unwrap();
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "cross_shape_hit_rate")
            .unwrap();
        assert!(row.regressed);

        // …but a document produced without `--cross-shape` (or an old
        // committed baseline) simply skips both metrics.
        let old =
            parse(r#"{"schema": "t10.bench.compile.v1", "cold_ms": {"p50": 100.0, "p90": 200.0}}"#);
        assert!(!compare(&old, &base, 25.0).unwrap().regressed());
        assert!(!compare(&base, &old, 25.0).unwrap().regressed());
    }

    #[test]
    fn missing_metric_is_skipped_not_failed() {
        let base = parse(COMPILE_BASE);
        let partial =
            parse(r#"{"schema": "t10.bench.compile.v1", "cold_ms": {"p50": 100.0, "p90": 200.0}}"#);
        let report = compare(&base, &partial, 25.0).unwrap();
        assert!(!report.regressed());
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "warm_hit_rate")
            .unwrap();
        assert_eq!(row.current, None);
        assert_eq!(row.delta_pct, None);
    }

    #[test]
    fn recovery_schema_is_tracked() {
        let base = parse(
            r#"{
                "schema": "t10.bench.recovery.v1",
                "recovery_overhead_pct": {"p50": 7.0, "p90": 14.0, "p99": 40.0},
                "checkpoint_cost_pct": 25.0,
                "compile_latency_us": {"p50": 180.0, "p99": 420.0}
            }"#,
        );
        let worse = parse(
            r#"{
                "schema": "t10.bench.recovery.v1",
                "recovery_overhead_pct": {"p50": 7.0, "p90": 14.0, "p99": 80.0},
                "checkpoint_cost_pct": 25.0,
                "compile_latency_us": {"p50": 180.0, "p99": 420.0}
            }"#,
        );
        let report = compare(&base, &worse, 25.0).unwrap();
        assert!(report.regressed());
        assert_eq!(report.schema, "t10.bench.recovery.v1");
    }

    #[test]
    fn schema_mismatch_and_unknown_schema_error() {
        let compile = parse(COMPILE_BASE);
        let recovery = parse(r#"{"schema": "t10.bench.recovery.v1"}"#);
        assert!(compare(&compile, &recovery, 25.0)
            .unwrap_err()
            .contains("schema mismatch"));
        let unknown = parse(r#"{"schema": "t10.bench.other.v9"}"#);
        assert!(compare(&unknown, &unknown, 25.0)
            .unwrap_err()
            .contains("unknown bench schema"));
    }

    #[test]
    fn committed_baselines_pass_against_themselves() {
        // The real committed documents must parse and self-compare clean —
        // the CI gate depends on this.
        for name in ["BENCH_compile.json", "BENCH_recovery.json"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            let src = std::fs::read_to_string(&path).unwrap();
            let doc = json::parse(&src).unwrap();
            let report = compare(&doc, &doc, 25.0).unwrap();
            assert!(!report.regressed(), "{name} regressed against itself");
        }
    }
}
