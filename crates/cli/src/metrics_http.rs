//! Minimal metrics HTTP endpoint for `t10 serve --metrics-addr`.
//!
//! A plain `std::net::TcpListener` loop on a background thread — no HTTP
//! stack, because the surface is two read-only GET routes:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4);
//! * `GET /metrics.json` — the `t10.metrics.v1` snapshot document;
//!
//! anything else answers 404. Every response snapshots the live registry
//! at request time, so a scraper polling during a serve batch watches the
//! histograms fill in. Snapshotting never reads the registry clock, so
//! scraping cannot perturb logical-clock determinism.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use t10_metrics::{prometheus, Registry};

use crate::CliError;

/// A running exposition endpoint. The acceptor thread is detached; it
/// lives until the process exits (the serve command's linger window
/// bounds how long that usefully is).
pub struct MetricsServer {
    /// The actually-bound address (resolves `:0` to the chosen port).
    pub addr: SocketAddr,
}

/// Binds `addr` and serves the registry on a detached background thread.
pub fn spawn(addr: &str, registry: Registry) -> Result<MetricsServer, CliError> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::usage(format!("--metrics-addr {addr}: {e}")))?;
    let bound = listener
        .local_addr()
        .map_err(|e| CliError::internal(format!("metrics listener address: {e}")))?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            // One request per connection, serially: scrape traffic is one
            // client every few seconds, and a serial loop cannot be wedged
            // open by a half-closed socket holding a worker.
            let _ = answer(stream, &registry);
        }
    });
    Ok(MetricsServer { addr: bound })
}

fn answer(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(buf.get(..n).unwrap_or(&[]));
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(&registry.snapshot()),
        ),
        "/metrics.json" => ("200 OK", "application/json", registry.snapshot().to_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /metrics, /metrics.json\n".to_string(),
        ),
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_metrics::names;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_both_formats_and_404() {
        let registry = Registry::logical();
        registry
            .counter(names::SERVE_ADMISSION_TOTAL, &[("outcome", "accepted")])
            .add(3);
        registry.histogram(names::SERVE_E2E_US, &[]).observe(900);
        let server = spawn("127.0.0.1:0", registry.clone()).unwrap();

        let text = get(server.addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("# TYPE t10_serve_admission_total counter"));
        assert!(text.contains("t10_serve_admission_total{outcome=\"accepted\"} 3"));

        let json = get(server.addr, "/metrics.json");
        assert!(json.contains("application/json"));
        let body = json.split("\r\n\r\n").nth(1).unwrap();
        let snap = t10_metrics::Snapshot::parse(body).unwrap();
        assert_eq!(snap.counter_sum(names::SERVE_ADMISSION_TOTAL), 3);
        assert_eq!(snap.histogram_merged(names::SERVE_E2E_US).count, 1);

        // A scrape between observations sees the live state move.
        registry.histogram(names::SERVE_E2E_US, &[]).observe(1);
        let json2 = get(server.addr, "/metrics.json");
        assert!(json2.contains("\"count\": 2"));

        let missing = get(server.addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }
}
