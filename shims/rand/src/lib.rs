//! Offline minimal stand-in for `rand`.
//!
//! The workspace only ever seeds an [`rngs::StdRng`] from a `u64` and draws
//! uniform integers from half-open or inclusive ranges, so this shim provides
//! exactly that surface over a SplitMix64 generator. It is deterministic by
//! construction (every RNG in the workspace is explicitly seeded), which the
//! reproducibility tests rely on.

/// Low-level source of pseudo-random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator: tiny, fast, and statistically adequate for the
    /// calibration sampling and search-space mutation done in this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Integer types the uniform sampler understands (a stand-in for
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

// Signed integers map through an order-preserving bias into u128.
macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                (self as i128 as u128) ^ (1 << 127)
            }
            fn from_u128(v: u128) -> Self {
                (v ^ (1 << 127)) as i128 as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly, mirroring `rand::distr::uniform`.
///
/// These are blanket impls over [`SampleUniform`] (as in real rand) so that
/// unsuffixed integer literals in ranges unify with the surrounding
/// expression's type instead of falling back to `i32`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        assert!(lo < hi, "empty range in random_range");
        T::from_u128(lo + (rng.next_u64() as u128) % (hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "empty range in random_range");
        T::from_u128(lo + (rng.next_u64() as u128) % (hi - lo + 1))
    }
}

/// Convenience sampling methods, mirroring `rand::Rng` / `RngExt`.
pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_sequences_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1_000_000),
                b.random_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&y));
        }
    }
}
