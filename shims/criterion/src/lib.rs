//! Offline minimal stand-in for `criterion`.
//!
//! Provides just enough of the criterion API for `benches/microbench.rs` to
//! compile and run: `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it times a fixed number of iterations and prints the mean —
//! adequate for smoke-running benches in an offline environment.

use std::time::{Duration, Instant};

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_secs_f64() / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench {name}: {:.3} us/iter ({} iters)",
            per_iter * 1e6,
            b.iters
        );
        self
    }

    pub fn final_summary(&self) {}
}

/// Mirrors `criterion::criterion_group!` (both plain and configured forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
