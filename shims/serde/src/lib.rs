//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! but never actually serializes anything, and the build environment has no
//! crates.io access. This shim keeps the annotations compiling: the traits
//! are blanket-implemented markers, and the derives (from the sibling
//! `serde_derive` shim) expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
