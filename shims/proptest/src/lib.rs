//! Offline minimal stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! - the `proptest!` macro (with an optional `#![proptest_config(...)]`
//!   header) expanding each `fn name(arg in strategy, ...) { body }` item
//!   into a `#[test]` that samples the strategies for `config.cases`
//!   iterations;
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assume!`;
//! - integer-range, tuple, and `collection::vec` strategies.
//!
//! Unlike real proptest there is no shrinking and no failure persistence;
//! sampling is deterministic (fixed seed per test), which keeps CI stable.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should not count.
        Reject(String),
        /// A `prop_assert!`-style failure.
        Fail(String),
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier pipeline
            // properties fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(0x7031_0a57),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
            assert!(lo < hi, "empty strategy range");
            T::from_u128(lo + (rng.next_u64() as u128) % (hi - lo))
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
            assert!(lo <= hi, "empty strategy range");
            T::from_u128(lo + (rng.next_u64() as u128) % (hi - lo + 1))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Binds each `name in strategy` pair to a sampled value.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            // Cap total attempts so an over-eager `prop_assume!` cannot spin
            // forever; real proptest errors similarly on too many rejects.
            while accepted < config.cases {
                assert!(
                    attempts < config.cases.saturating_mul(16).max(1024),
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                attempts += 1;
                $crate::__proptest_bind!(rng; $($args)*);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", accepted, stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Entry point mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Assertion that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Rejects the current case (it is re-drawn and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Tuple + vec strategies compose, and assume re-draws.
        #[test]
        fn composite_strategies_work(
            pair in (1usize..4, 10u64..20),
            v in crate::collection::vec((0usize..3, 5usize..9), 1..6),
        ) {
            prop_assume!(pair.0 != 3);
            prop_assert!(pair.0 < 3);
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert_eq!(b.clamp(5, 8), b);
            }
        }
    }
}
