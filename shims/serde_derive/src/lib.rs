//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and the workspace only uses
//! serde's derives as inert annotations (nothing is ever serialized). These
//! derives accept the `#[serde(...)]` helper attribute and expand to nothing;
//! the matching marker traits live in the sibling `serde` shim.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
